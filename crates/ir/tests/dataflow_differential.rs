//! Differential tests of reaching definitions: on straight-line code the
//! unique reaching def must equal the last textual def; across a diamond
//! both arms' defs must meet at the join.

use proptest::prelude::*;
use ssp_ir::cfg::Cfg;
use ssp_ir::dataflow::ReachingDefs;
use ssp_ir::{BlockId, CmpKind, Program, ProgramBuilder, Reg};

/// A straight-line program over registers r10..r10+nregs: each step
/// `dst = src + 1` with dst/src drawn from the pool.
fn straightline(ops: &[(u16, u16)], nregs: u16) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("sl");
    let e = f.entry_block();
    let mut c = f.at(e);
    for &(d, s) in ops {
        c = c.add(Reg(10 + d % nregs), Reg(10 + s % nregs), 1);
    }
    c.halt();
    let main = f.finish();
    pb.finish_with(main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn straightline_reaching_def_is_last_textual_def(
        ops in prop::collection::vec((0u16..6, 0u16..6), 1..40),
        nregs in 2u16..6,
    ) {
        let prog = straightline(&ops, nregs);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let rd = ReachingDefs::new(prog.entry, func, &cfg);
        let b = BlockId(0);
        // Oracle: walk forward remembering the last def index per reg.
        let mut last: std::collections::HashMap<Reg, usize> = Default::default();
        for (i, inst) in func.block(b).insts.iter().enumerate() {
            for u in inst.op.uses() {
                let got = rd.reaching(b, i, u);
                match last.get(&u) {
                    None => prop_assert!(
                        got.is_empty(),
                        "use of {u} at {i} has no def yet, got {got:?}"
                    ),
                    Some(&di) => {
                        prop_assert_eq!(got.len(), 1, "exactly one def reaches");
                        prop_assert_eq!(got[0].at.idx, di, "the latest def");
                        prop_assert_eq!(got[0].reg, u);
                    }
                }
            }
            if let Some(d) = inst.op.def() {
                last.insert(d, i);
            }
        }
    }

    #[test]
    fn diamond_merges_both_arms(
        arm_defs in prop::bool::ANY,
    ) {
        // r20 defined in entry; optionally redefined in one or both arms;
        // at the join the reaching set is exactly the live definitions.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("dia");
        let e = f.entry_block();
        let l = f.new_block();
        let r = f.new_block();
        let j = f.new_block();
        let (x, p) = (Reg(20), Reg(21));
        f.at(e).movi(x, 0).cmp(CmpKind::Lt, p, Reg(0), 1).br_cond(p, l, r);
        f.at(l).movi(x, 1).br(j); // always redefines in the left arm
        if arm_defs {
            f.at(r).movi(x, 2).br(j);
        } else {
            f.at(r).movi(Reg(22), 2).br(j);
        }
        f.at(j).add(Reg(23), x, 1).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let rd = ReachingDefs::new(prog.entry, func, &cfg);
        let got = rd.reaching(j, 0, x);
        let blocks: std::collections::HashSet<BlockId> =
            got.iter().map(|d| d.at.block).collect();
        if arm_defs {
            // Both arms redefine: entry def killed on every path.
            prop_assert_eq!(got.len(), 2);
            prop_assert!(blocks.contains(&l) && blocks.contains(&r));
        } else {
            // Right arm keeps the entry def alive.
            prop_assert_eq!(got.len(), 2);
            prop_assert!(blocks.contains(&l) && blocks.contains(&e));
        }
    }
}
