//! Property-based tests of the CFG analyses over randomly generated
//! structured programs (nested loops and diamonds).

use proptest::prelude::*;
use ssp_ir::cfg::Cfg;
use ssp_ir::dom::{control_deps, DomTree};
use ssp_ir::loops::LoopForest;
use ssp_ir::{CmpKind, FunctionBuilder, Program, ProgramBuilder, Reg};

/// Structure of a generated program region.
#[derive(Clone, Debug)]
enum Shape {
    /// `k` straight-line instructions.
    Straight(u8),
    /// if/else diamond around two sub-shapes.
    Diamond(Box<Shape>, Box<Shape>),
    /// Counted loop around a sub-shape.
    Loop(Box<Shape>, u8),
    /// Sequence.
    Seq(Box<Shape>, Box<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = (1u8..4).prop_map(Shape::Straight);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::Diamond(Box::new(a), Box::new(b))),
            (inner.clone(), 2u8..5).prop_map(|(a, n)| Shape::Loop(Box::new(a), n)),
            (inner.clone(), inner).prop_map(|(a, b)| Shape::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

/// Emit `shape` starting in `cur`; returns the block control flows into
/// afterwards. Fresh registers from a counter to avoid accidental cycles.
fn emit(
    f: &mut FunctionBuilder,
    shape: &Shape,
    cur: ssp_ir::BlockId,
    fresh: &mut u16,
) -> ssp_ir::BlockId {
    let mut reg = || {
        *fresh = (*fresh % 60) + 2; // r2..r61, reused round-robin
        Reg(*fresh)
    };
    match shape {
        Shape::Straight(k) => {
            for i in 0..*k {
                let r = reg();
                f.at(cur).movi(r, i as i64);
            }
            cur
        }
        Shape::Seq(a, b) => {
            let mid = emit(f, a, cur, fresh);
            emit(f, b, mid, fresh)
        }
        Shape::Diamond(a, b) => {
            let then_b = f.new_block();
            let else_b = f.new_block();
            let join = f.new_block();
            let p = reg();
            f.at(cur).cmp(CmpKind::Lt, p, Reg(0), 1).br_cond(p, then_b, else_b);
            let te = emit(f, a, then_b, fresh);
            f.at(te).br(join);
            let ee = emit(f, b, else_b, fresh);
            f.at(ee).br(join);
            join
        }
        Shape::Loop(a, n) => {
            let head = f.new_block();
            let exit = f.new_block();
            let (i, p) = (reg(), reg());
            f.at(cur).movi(i, 0).br(head);
            let be = emit(f, a, head, fresh);
            f.at(be).add(i, i, 1).cmp(CmpKind::Lt, p, i, *n as i64).br_cond(p, head, exit);
            exit
        }
    }
}

fn program_from(shape: &Shape) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("gen");
    let entry = f.entry_block();
    let mut fresh = 1u16;
    let last = emit(&mut f, shape, entry, &mut fresh);
    f.at(last).halt();
    let main = f.finish();
    pb.finish_with(main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_verify(shape in shape_strategy()) {
        let prog = program_from(&shape);
        prop_assert!(ssp_ir::verify::verify(&prog).is_ok());
    }

    #[test]
    fn dominator_tree_invariants(shape in shape_strategy()) {
        let prog = program_from(&shape);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        for &b in cfg.rpo() {
            if b == func.entry {
                prop_assert!(dom.idom(b).is_none());
                continue;
            }
            // Entry dominates every reachable block.
            prop_assert!(dom.dominates(func.entry, b));
            // idom strictly dominates and differs from the block.
            let id = dom.idom(b).expect("reachable non-entry has an idom");
            prop_assert_ne!(id, b);
            prop_assert!(dom.dominates(id, b));
            // idom dominates every predecessor's dominator chain meet:
            // weaker check — it dominates each reachable predecessor.
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) && !dom.dominates(b, p) {
                    prop_assert!(dom.dominates(id, p), "idom({b}) = {id} dominates pred {p}");
                }
            }
        }
    }

    #[test]
    fn loop_forest_invariants(shape in shape_strategy()) {
        let prog = program_from(&shape);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        let loops = LoopForest::new(func, &cfg, &dom);
        for (_, l) in loops.iter() {
            // The header dominates every member.
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b));
            }
            // Latches are members with an edge to the header.
            for &latch in &l.latches {
                prop_assert!(l.contains(latch));
                prop_assert!(cfg.succs(latch).contains(&l.header));
            }
            // Nesting depth consistent with the parent chain.
            let mut d = 1;
            let mut cur = l.parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops.get(p).parent;
            }
            prop_assert_eq!(d, l.depth);
        }
    }

    #[test]
    fn control_dep_sources_are_branches(shape in shape_strategy()) {
        let prog = program_from(&shape);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let deps = control_deps(func, &cfg);
        for (bi, ds) in deps.iter().enumerate() {
            for &c in ds {
                prop_assert!(
                    cfg.succs(c).len() >= 2,
                    "block b{bi} control-depends on b{}, which must branch",
                    c.0
                );
            }
        }
    }

    #[test]
    fn rpo_orders_forward_edges_on_acyclic_parts(shape in shape_strategy()) {
        let prog = program_from(&shape);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                // Either a forward edge (RPO increases) or a back edge
                // (target dominates source).
                let fwd = cfg.rpo_pos(b).unwrap() < cfg.rpo_pos(s).unwrap();
                prop_assert!(fwd || dom.dominates(s, b));
            }
        }
    }
}
