//! Register dataflow over machine code: reaching definitions (giving
//! def-use chains) and liveness.
//!
//! A post-pass tool sees physical registers, so dependences are recovered
//! with classic bit-vector dataflow rather than read off SSA. Call
//! instructions define every scratch register (the convention clobbers of
//! [`crate::reg::conv`]), which is exactly how a binary analyzer must treat
//! them.

use crate::cfg::Cfg;
use crate::program::{BlockId, FuncId, Function, InstRef};
use crate::reg::{Reg, NUM_REGS};
use std::collections::HashMap;

/// A definition site: which instruction, which register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DefSite {
    /// The defining instruction.
    pub at: InstRef,
    /// The register defined.
    pub reg: Reg,
}

/// A plain growable bitset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Insert `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1 << b);
    }

    /// Whether `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterate over set members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| wi * 64 + b)
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Reaching definitions for one function, exposing def-use chains.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites, densely numbered.
    defs: Vec<DefSite>,
    /// Reaching-def set at each instruction's *input*, per block then
    /// instruction index. Only reachable blocks are populated.
    reach_in: HashMap<(BlockId, usize), BitSet>,
    /// Defs of each register, as indices into `defs`.
    defs_of_reg: Vec<Vec<usize>>,
}

impl ReachingDefs {
    /// Run the analysis on `func` (identified by `fid` for [`InstRef`]s).
    pub fn new(fid: FuncId, func: &Function, cfg: &Cfg) -> Self {
        // Enumerate definition sites.
        let mut defs: Vec<DefSite> = Vec::new();
        let mut defs_of_reg: Vec<Vec<usize>> = vec![Vec::new(); NUM_REGS];
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let at = InstRef { func: fid, block: bid, idx: i };
                if let Some(r) = inst.op.def() {
                    defs_of_reg[r.index()].push(defs.len());
                    defs.push(DefSite { at, reg: r });
                }
                for r in inst.op.extra_defs() {
                    defs_of_reg[r.index()].push(defs.len());
                    defs.push(DefSite { at, reg: r });
                }
            }
        }
        let nd = defs.len();
        // Per-block GEN/KILL.
        let nb = func.blocks.len();
        let mut gen = vec![BitSet::new(nd); nb];
        let mut kill = vec![BitSet::new(nd); nb];
        let mut def_idx = 0usize;
        for (bid, block) in func.iter_blocks() {
            for inst in &block.insts {
                let mut regs: Vec<Reg> = Vec::new();
                if let Some(r) = inst.op.def() {
                    regs.push(r);
                }
                regs.extend(inst.op.extra_defs());
                for r in regs {
                    let this = def_idx;
                    def_idx += 1;
                    // Kill all other defs of r; gen this one.
                    for &d in &defs_of_reg[r.index()] {
                        if d != this {
                            kill[bid.index()].insert(d);
                        }
                        gen[bid.index()].remove(d);
                    }
                    gen[bid.index()].insert(this);
                }
            }
        }
        // Iterate to a fixed point over reachable blocks.
        let mut inn = vec![BitSet::new(nd); nb];
        let mut out = vec![BitSet::new(nd); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                let mut new_in = BitSet::new(nd);
                for &p in cfg.preds(b) {
                    new_in.union_with(&out[p.index()]);
                }
                let mut new_out = new_in.clone();
                new_out.subtract(&kill[b.index()]);
                new_out.union_with(&gen[b.index()]);
                if new_in != inn[b.index()] || new_out != out[b.index()] {
                    inn[b.index()] = new_in;
                    out[b.index()] = new_out;
                    changed = true;
                }
            }
        }
        // Per-instruction reaching sets by walking each block.
        let mut reach_in = HashMap::new();
        // Index defs per instruction for the walk.
        let mut defs_at: HashMap<InstRef, Vec<usize>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            defs_at.entry(d.at).or_default().push(i);
        }
        for &bid in cfg.rpo() {
            let mut cur = inn[bid.index()].clone();
            for (i, _inst) in func.block(bid).insts.iter().enumerate() {
                reach_in.insert((bid, i), cur.clone());
                let at = InstRef { func: fid, block: bid, idx: i };
                if let Some(ds) = defs_at.get(&at) {
                    for &d in ds {
                        for &other in &defs_of_reg[defs[d].reg.index()] {
                            cur.remove(other);
                        }
                        cur.insert(d);
                    }
                }
            }
        }
        ReachingDefs { defs, reach_in, defs_of_reg }
    }

    /// The definitions of register `r` that reach the input of the
    /// instruction at `(block, idx)`.
    pub fn reaching(&self, block: BlockId, idx: usize, r: Reg) -> Vec<DefSite> {
        let Some(set) = self.reach_in.get(&(block, idx)) else {
            return Vec::new();
        };
        self.defs_of_reg[r.index()]
            .iter()
            .filter(|&&d| set.contains(d))
            .map(|&d| self.defs[d])
            .collect()
    }

    /// All definition sites in the function.
    pub fn all_defs(&self) -> &[DefSite] {
        &self.defs
    }
}

/// Block-level liveness of registers.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Run liveness on `func`. Registers used by any instruction are
    /// tracked; `Ret` is treated as using the return-value register and
    /// all callee-saved registers (conservative for a binary tool).
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let nb = func.blocks.len();
        let mut use_set = vec![BitSet::new(NUM_REGS); nb];
        let mut def_set = vec![BitSet::new(NUM_REGS); nb];
        let mut uses_buf = Vec::new();
        for (bid, block) in func.iter_blocks() {
            for inst in &block.insts {
                uses_buf.clear();
                inst.op.uses_into(&mut uses_buf);
                if matches!(inst.op, crate::inst::Op::Ret) {
                    uses_buf.push(crate::reg::conv::RV);
                    uses_buf.extend(
                        (0..NUM_REGS as u16)
                            .map(Reg)
                            .filter(|&r| crate::reg::conv::is_callee_saved(r)),
                    );
                }
                for &u in &uses_buf {
                    if !def_set[bid.index()].contains(u.index()) {
                        use_set[bid.index()].insert(u.index());
                    }
                }
                if let Some(d) = inst.op.def() {
                    def_set[bid.index()].insert(d.index());
                }
                for d in inst.op.extra_defs() {
                    def_set[bid.index()].insert(d.index());
                }
            }
        }
        let mut live_in = vec![BitSet::new(NUM_REGS); nb];
        let mut live_out = vec![BitSet::new(NUM_REGS); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().rev() {
                let mut new_out = BitSet::new(NUM_REGS);
                for &s in cfg.succs(b) {
                    new_out.union_with(&live_in[s.index()]);
                }
                let mut new_in = new_out.clone();
                new_in.subtract(&def_set[b.index()]);
                new_in.union_with(&use_set[b.index()]);
                if new_in != live_in[b.index()] || new_out != live_out[b.index()] {
                    live_in[b.index()] = new_in;
                    live_out[b.index()] = new_out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `r` is live at the entry of `b`.
    pub fn live_in(&self, b: BlockId, r: Reg) -> bool {
        self.live_in[b.index()].contains(r.index())
    }

    /// Whether `r` is live at the exit of `b`.
    pub fn live_out(&self, b: BlockId, r: Reg) -> bool {
        self.live_out[b.index()].contains(r.index())
    }
}

/// Registers read before being written on some path from `entry` through
/// `blocks` — the upward-exposed uses of that subgraph.
///
/// This is raw liveness at `entry` restricted to the given block set
/// (successor edges leaving the set are ignored), *without* the
/// [`Liveness`] convention that `Ret` uses the callee-saved registers:
/// the caller gets exactly the registers some instruction reads without
/// a prior in-subgraph definition. The SSP linter uses it to prove a
/// speculative slice reads nothing beyond its live-in buffer slot: the
/// child context starts zeroed, so every upward-exposed register of the
/// slice body must be copied in by the stub, and to find which registers
/// the main thread still reads after a trigger's resume point.
pub fn upward_exposed_uses(func: &Function, entry: BlockId, blocks: &[BlockId]) -> Vec<Reg> {
    let in_sub = {
        let mut v = vec![false; func.blocks.len()];
        for b in blocks {
            v[b.index()] = true;
        }
        v
    };
    if !in_sub[entry.index()] {
        return Vec::new();
    }
    // Per-block upward-exposed uses and definitions.
    let nb = func.blocks.len();
    let mut use_set = vec![BitSet::new(NUM_REGS); nb];
    let mut def_set = vec![BitSet::new(NUM_REGS); nb];
    for &bid in blocks {
        for inst in &func.block(bid).insts {
            for u in inst.op.uses() {
                if !def_set[bid.index()].contains(u.index()) {
                    use_set[bid.index()].insert(u.index());
                }
            }
            if let Some(d) = inst.op.def() {
                def_set[bid.index()].insert(d.index());
            }
            for d in inst.op.extra_defs() {
                def_set[bid.index()].insert(d.index());
            }
        }
    }
    // Backward fixpoint over the subgraph.
    let mut live_in = vec![BitSet::new(NUM_REGS); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in blocks.iter().rev() {
            let mut new_in = BitSet::new(NUM_REGS);
            for t in func.block(b).terminator().branch_targets() {
                if in_sub[t.index()] {
                    new_in.union_with(&live_in[t.index()]);
                }
            }
            new_in.subtract(&def_set[b.index()]);
            new_in.union_with(&use_set[b.index()]);
            if new_in != live_in[b.index()] {
                live_in[b.index()] = new_in;
                changed = true;
            }
        }
    }
    live_in[entry.index()].iter().map(|i| Reg(i as u16)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CmpKind;
    use crate::program::Program;
    use crate::reg::{conv, Reg};

    fn simple_loop() -> Program {
        // b0: r1=0; r2=100        -> b1
        // b1: r1=r1+1; r3=ld[r2]; p=r1<10 -> b1 | b2
        // b2: halt
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.at(b0).movi(Reg(1), 0).movi(Reg(2), 100).br(b1);
        f.at(b1)
            .add(Reg(1), Reg(1), 1)
            .ld(Reg(3), Reg(2), 0)
            .cmp(CmpKind::Lt, Reg(4), Reg(1), 10)
            .br_cond(Reg(4), b1, b2);
        f.at(b2).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
        let mut t = BitSet::new(130);
        t.insert(5);
        assert!(s.union_with(&t));
        assert!(s.contains(5));
        s.subtract(&t);
        assert!(!s.contains(5));
    }

    #[test]
    fn reaching_defs_through_loop() {
        let prog = simple_loop();
        let fid = prog.entry;
        let func = prog.func(fid);
        let cfg = Cfg::new(func);
        let rd = ReachingDefs::new(fid, func, &cfg);
        // At the add in b1 (idx 0), r1 is reached by both the movi in b0
        // and the add itself (loop-carried).
        let reaching = rd.reaching(BlockId(1), 0, Reg(1));
        assert_eq!(reaching.len(), 2);
        let blocks: Vec<BlockId> = reaching.iter().map(|d| d.at.block).collect();
        assert!(blocks.contains(&BlockId(0)));
        assert!(blocks.contains(&BlockId(1)));
        // r2 at the load: only the movi in b0.
        let reaching = rd.reaching(BlockId(1), 1, Reg(2));
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].at.block, BlockId(0));
    }

    #[test]
    fn call_clobbers_are_defs() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let h_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        // r8 = 1; call h; use r8 -> the call's clobber def must reach.
        m.at(e).movi(conv::RV, 1).call(h_id, 0).mov(Reg(20), conv::RV).halt();
        let m = m.finish();
        let mut h = pb.define(h_id, "h");
        let e2 = h.entry_block();
        h.at(e2).ret();
        let h = h.finish();
        pb.install(m);
        pb.install(h);
        let prog = pb.finish(main_id);
        let func = prog.func(main_id);
        let cfg = Cfg::new(func);
        let rd = ReachingDefs::new(main_id, func, &cfg);
        // At the mov (idx 2), only the call (idx 1) reaches for r8.
        let reaching = rd.reaching(BlockId(0), 2, conv::RV);
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].at.idx, 1);
    }

    #[test]
    fn upward_exposed_uses_in_loop_subgraph() {
        let prog = simple_loop();
        let func = prog.func(prog.entry);
        // Over the loop body alone: r1 (incremented), r2 (load base) and
        // nothing else are read before written; r3 and r4 are defined
        // before any use.
        let exposed = upward_exposed_uses(func, BlockId(1), &[BlockId(1)]);
        assert_eq!(exposed, vec![Reg(1), Reg(2)]);
        // From the entry over the whole function nothing is exposed: b0
        // defines r1 and r2 first.
        let all = [BlockId(0), BlockId(1), BlockId(2)];
        assert_eq!(upward_exposed_uses(func, BlockId(0), &all), Vec::<Reg>::new());
        // Entry outside the subgraph: nothing to report.
        assert_eq!(upward_exposed_uses(func, BlockId(2), &[BlockId(1)]), Vec::<Reg>::new());
    }

    #[test]
    fn liveness_in_loop() {
        let prog = simple_loop();
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);
        // r1 and r2 live into the loop body.
        assert!(live.live_in(BlockId(1), Reg(1)));
        assert!(live.live_in(BlockId(1), Reg(2)));
        // r3 (loop-local load result, never used) not live out of b1.
        assert!(!live.live_out(BlockId(1), Reg(3)));
        // r1 live out of b0.
        assert!(live.live_out(BlockId(0), Reg(1)));
    }
}
