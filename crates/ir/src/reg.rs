//! Physical registers and the calling convention the post-pass tool assumes.

use std::fmt;

/// A physical general-purpose register, `r0`..`r127`.
///
/// The research Itanium models in the paper give each hardware thread
/// context 128 integer registers; like the paper's tool we analyse machine
/// code over physical registers rather than SSA values.
///
/// `r0` always reads as zero and writes to it are discarded, matching the
/// Itanium convention.
///
/// # Example
///
/// ```
/// use ssp_ir::Reg;
/// let r = Reg(42);
/// assert_eq!(r.index(), 42);
/// assert_eq!(format!("{r}"), "r42");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(pub u16);

/// Number of architected general registers per hardware thread context.
pub const NUM_REGS: usize = 128;

impl Reg {
    /// The register's index within the 128-entry file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The calling convention: fixed roles for particular registers.
///
/// Modeled loosely on the Itanium software conventions, flattened (no
/// register-stack rotation): arguments arrive in `r32..r32+n`, the return
/// value in `r8`, the stack pointer lives in `r12`. Calls clobber the
/// *scratch* range and preserve the *callee-saved* range; the dependence
/// analyses in [`crate::dataflow`] model exactly these effects.
pub mod conv {
    use super::Reg;

    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return value register.
    pub const RV: Reg = Reg(8);
    /// Live-in-buffer slot handle, set by `spawn` in a freshly spawned
    /// speculative thread (the only register a child starts with).
    pub const SLOT: Reg = Reg(9);
    /// Stack pointer.
    pub const SP: Reg = Reg(12);
    /// First argument register; arguments are `ARG0..ARG0+MAX_ARGS`.
    pub const ARG0: Reg = Reg(32);
    /// Maximum number of register arguments.
    pub const MAX_ARGS: u16 = 8;

    /// The `i`-th argument register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_ARGS`.
    pub fn arg(i: u16) -> Reg {
        assert!(i < MAX_ARGS, "argument register index {i} out of range");
        Reg(ARG0.0 + i)
    }

    /// Whether `r` is clobbered by a call (caller-saved / scratch).
    ///
    /// Scratch registers are `r2..r63` (including the return-value and
    /// argument registers). `r64..r127` are preserved across calls; `r0`
    /// is hardwired and `r12` (SP) is preserved by convention.
    pub fn is_scratch(r: Reg) -> bool {
        let i = r.0;
        (2..64).contains(&i) && r != SP
    }

    /// Whether `r` is preserved across calls.
    pub fn is_callee_saved(r: Reg) -> bool {
        !is_scratch(r) && r != ZERO
    }

    /// Registers defined (clobbered) by a call instruction, from the
    /// caller's point of view.
    pub fn call_defs() -> impl Iterator<Item = Reg> {
        (0u16..64).map(Reg).filter(|&r| is_scratch(r))
    }

    /// Registers used by a call that passes `nargs` register arguments.
    pub fn call_uses(nargs: u16) -> impl Iterator<Item = Reg> {
        assert!(nargs <= MAX_ARGS, "too many register arguments: {nargs}");
        (0..nargs).map(arg).chain(std::iter::once(SP))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg(0).is_zero());
        assert!(!Reg(1).is_zero());
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(127).to_string(), "r127");
    }

    #[test]
    fn scratch_and_callee_saved_partition() {
        for i in 0..NUM_REGS as u16 {
            let r = Reg(i);
            if r == conv::ZERO {
                assert!(!conv::is_scratch(r));
                assert!(!conv::is_callee_saved(r));
            } else {
                assert_ne!(
                    conv::is_scratch(r),
                    conv::is_callee_saved(r),
                    "register {r} must be exactly one of scratch / callee-saved"
                );
            }
        }
    }

    #[test]
    fn sp_is_preserved() {
        assert!(conv::is_callee_saved(conv::SP));
        assert!(!conv::call_defs().any(|r| r == conv::SP));
    }

    #[test]
    fn arg_registers_are_scratch() {
        for i in 0..conv::MAX_ARGS {
            assert!(conv::is_scratch(conv::arg(i)));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_out_of_range_panics() {
        conv::arg(conv::MAX_ARGS);
    }

    #[test]
    fn call_uses_includes_sp() {
        let uses: Vec<Reg> = conv::call_uses(2).collect();
        assert!(uses.contains(&conv::SP));
        assert!(uses.contains(&conv::arg(0)));
        assert!(uses.contains(&conv::arg(1)));
        assert!(!uses.contains(&conv::arg(2)));
    }
}
