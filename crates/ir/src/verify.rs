//! Structural verification of programs.
//!
//! The simulator and the post-pass tool both assume these invariants; the
//! post-pass tool re-verifies its output, so adaptation bugs surface as
//! verifier errors rather than simulator misbehaviour.

use crate::inst::Op;
use crate::program::{BlockId, FuncId, InstRef, Program};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A block has no instructions.
    EmptyBlock(FuncId, BlockId),
    /// A block's last instruction is not a terminator.
    MissingTerminator(FuncId, BlockId),
    /// A terminator appears before the end of a block.
    EarlyTerminator(InstRef),
    /// A branch, `chk.c`, or `spawn` names a block outside its function.
    BadBlockRef(InstRef, BlockId),
    /// A call names a function outside the program.
    BadFuncRef(InstRef, FuncId),
    /// Two instructions share a tag.
    DuplicateTag(InstRef, InstRef),
    /// The entry function id is out of range.
    BadEntry(FuncId),
    /// A data-image address is not 8-byte aligned.
    UnalignedImage(u64),
    /// A store appears in an attachment (slice/stub) block reachable only
    /// by speculative threads, violating the paper's "no store instructions
    /// in the precomputation" rule. Stub blocks are executed by the main
    /// thread and may store; this error is raised by the dedicated
    /// [`verify_speculative`] pass, not plain [`verify`].
    StoreInSlice(InstRef),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyBlock(func, b) => write!(f, "empty block {func}:{b}"),
            VerifyError::MissingTerminator(func, b) => {
                write!(f, "block {func}:{b} does not end in a terminator")
            }
            VerifyError::EarlyTerminator(at) => {
                write!(f, "terminator before end of block at {at}")
            }
            VerifyError::BadBlockRef(at, b) => {
                write!(f, "instruction at {at} references nonexistent block {b}")
            }
            VerifyError::BadFuncRef(at, func) => {
                write!(f, "instruction at {at} references nonexistent function {func}")
            }
            VerifyError::DuplicateTag(a, b) => {
                write!(f, "instructions at {a} and {b} share a tag")
            }
            VerifyError::BadEntry(func) => write!(f, "entry function {func} out of range"),
            VerifyError::UnalignedImage(a) => {
                write!(f, "data image word at unaligned address {a:#x}")
            }
            VerifyError::StoreInSlice(at) => {
                write!(f, "store instruction in speculative slice code at {at}")
            }
        }
    }
}

impl Error for VerifyError {}

/// Check the structural invariants of `prog`.
///
/// # Errors
///
/// Returns the first defect found; see [`VerifyError`].
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    if prog.entry.0 as usize >= prog.funcs.len() {
        return Err(VerifyError::BadEntry(prog.entry));
    }
    for &(addr, _) in &prog.image {
        if addr % 8 != 0 {
            return Err(VerifyError::UnalignedImage(addr));
        }
    }
    let mut tags: std::collections::HashMap<crate::inst::InstTag, InstRef> =
        std::collections::HashMap::new();
    for (fid, func) in prog.iter_funcs() {
        let nblocks = func.blocks.len() as u32;
        for (bid, block) in func.iter_blocks() {
            if block.insts.is_empty() {
                return Err(VerifyError::EmptyBlock(fid, bid));
            }
            let last = block.insts.len() - 1;
            for (i, inst) in block.insts.iter().enumerate() {
                let at = InstRef { func: fid, block: bid, idx: i };
                if let Some(prev) = tags.insert(inst.tag, at) {
                    return Err(VerifyError::DuplicateTag(prev, at));
                }
                if inst.op.is_terminator() && i != last {
                    return Err(VerifyError::EarlyTerminator(at));
                }
                if i == last && !inst.op.is_terminator() {
                    return Err(VerifyError::MissingTerminator(fid, bid));
                }
                // Block references.
                let mut refs = inst.op.branch_targets();
                match inst.op {
                    Op::ChkC { stub } => refs.push(stub),
                    Op::Spawn { entry, .. } => refs.push(entry),
                    _ => {}
                }
                for b in refs {
                    if b.0 >= nblocks {
                        return Err(VerifyError::BadBlockRef(at, b));
                    }
                }
                if let Op::Call { callee, .. } = inst.op {
                    if callee.0 as usize >= prog.funcs.len() {
                        return Err(VerifyError::BadFuncRef(at, callee));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Check the SSP-specific invariant: no stores in slice code.
///
/// Slice blocks are the attachment blocks reachable from any `Spawn`
/// entry; stub blocks (reachable from `ChkC`) belong to the main thread
/// and are allowed to store (they write the live-in buffer via `LibSt`
/// anyway).
///
/// # Errors
///
/// Returns [`VerifyError::StoreInSlice`] for the first offending store.
pub fn verify_speculative(prog: &Program) -> Result<(), VerifyError> {
    for (fid, func) in prog.iter_funcs() {
        // Collect spawn entries in this function.
        let mut entries: Vec<BlockId> = Vec::new();
        for (_, block) in func.iter_blocks() {
            for inst in &block.insts {
                if let Op::Spawn { entry, .. } = inst.op {
                    entries.push(entry);
                }
            }
        }
        // Blocks reachable from slice entries via branches.
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut work = entries;
        while let Some(b) = work.pop() {
            if !seen.insert(b) {
                continue;
            }
            if let Some(last) = func.block(b).insts.last() {
                work.extend(last.op.branch_targets());
            }
        }
        for &b in &seen {
            for (i, inst) in func.block(b).insts.iter().enumerate() {
                if inst.op.is_store() {
                    return Err(VerifyError::StoreInSlice(InstRef { func: fid, block: b, idx: i }));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Inst, InstTag};
    use crate::reg::Reg;

    fn ok_prog() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).movi(Reg(1), 1).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn accepts_valid_program() {
        assert_eq!(verify(&ok_prog()), Ok(()));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut prog = ok_prog();
        prog.funcs[0].blocks[0].insts.pop(); // drop the halt
        assert!(matches!(verify(&prog), Err(VerifyError::MissingTerminator(..))));
    }

    #[test]
    fn rejects_empty_block() {
        let mut prog = ok_prog();
        prog.funcs[0].blocks.push(crate::program::Block::default());
        assert!(matches!(verify(&prog), Err(VerifyError::EmptyBlock(..))));
    }

    #[test]
    fn rejects_early_terminator() {
        let mut prog = ok_prog();
        let halt = prog.funcs[0].blocks[0].insts.last().unwrap().clone();
        prog.funcs[0].blocks[0].insts.insert(0, Inst::new(InstTag(999), halt.op));
        assert!(matches!(verify(&prog), Err(VerifyError::EarlyTerminator(..))));
    }

    #[test]
    fn rejects_duplicate_tags() {
        let mut prog = ok_prog();
        let tag = prog.funcs[0].blocks[0].insts[0].tag;
        prog.funcs[0].blocks[0].insts[1].tag = tag;
        assert!(matches!(verify(&prog), Err(VerifyError::DuplicateTag(..))));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut prog = ok_prog();
        let t = prog.fresh_tag();
        prog.funcs[0].blocks[0].insts[1] = Inst::new(t, Op::Br { target: BlockId(99) });
        assert!(matches!(verify(&prog), Err(VerifyError::BadBlockRef(..))));
    }

    #[test]
    fn speculative_verifier_rejects_store_in_slice() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let stub = f.new_block();
        let slice = f.new_block();
        let resume = f.new_block();
        f.at(e).chk_c(stub).br(resume);
        f.at(stub).lib_alloc(Reg(10)).spawn(slice, Reg(10)).br(resume);
        f.at(slice)
            .st(Reg(1), Reg(2), 0) // illegal: store in slice
            .kill_thread();
        f.at(resume).halt();
        let main = f.finish();
        let mut prog = pb.finish_with(main);
        prog.funcs[0].blocks[1].attachment = true;
        prog.funcs[0].blocks[2].attachment = true;
        assert_eq!(verify(&prog), Ok(()), "structurally fine");
        assert!(matches!(verify_speculative(&prog), Err(VerifyError::StoreInSlice(..))));
    }

    #[test]
    fn speculative_verifier_allows_clean_slice() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let stub = f.new_block();
        let slice = f.new_block();
        let resume = f.new_block();
        f.at(e).chk_c(stub).br(resume);
        f.at(stub).lib_alloc(Reg(10)).lib_st(Reg(10), 0, Reg(5)).spawn(slice, Reg(10)).br(resume);
        f.at(slice).lib_ld(Reg(4), Reg(9), 0).ld(Reg(5), Reg(4), 0).lfetch(Reg(5), 8).kill_thread();
        f.at(resume).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        assert_eq!(verify_speculative(&prog), Ok(()));
    }
}
