//! Machine instructions: opcodes, operands, and def/use queries.

use crate::program::{BlockId, FuncId};
use crate::reg::{conv, Reg};
use std::fmt;

/// A stable identity for a static instruction.
///
/// Profiles (cache-miss counts, execution frequencies) are keyed by tag, and
/// tags survive binary adaptation: when the post-pass tool rewrites a program
/// it preserves the tags of original instructions, so a cache profile taken
/// on the original binary still identifies the same loads in the adapted
/// binary. Newly synthesized instructions receive fresh tags.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstTag(pub u32);

impl fmt::Display for InstTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Second source operand of ALU/compare instructions: a register or a
/// 14-bit-style immediate (we allow full `i64` for convenience).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

/// Integer ALU operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluKind {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (wrapping). Higher latency than add/sub.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
}

/// Comparison kinds; results are 0 or 1 in the destination register
/// (standing in for Itanium predicate registers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Signed less-than.
    SLt,
    /// Signed greater-than.
    SGt,
}

/// Floating-point ALU kinds; values are `f64` bit patterns in the 64-bit
/// integer registers (the workloads only need a handful of FP operations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FAluKind {
    /// FP addition.
    Add,
    /// FP subtraction.
    Sub,
    /// FP multiplication.
    Mul,
}

/// A machine operation.
///
/// Every basic block ends with exactly one *terminator* ([`Op::is_terminator`]):
/// `Br`, `BrCond`, `Ret`, `Halt`, or `KillThread`. `Call` is not a
/// terminator — control returns to the following instruction.
///
/// The SSP-specific operations mirror §3.4.2 of the paper:
///
/// * [`Op::ChkC`] — the trigger instruction. At retirement it raises a
///   lightweight exception *iff* a free hardware thread context exists,
///   redirecting the main thread to its stub block; otherwise it behaves
///   like a `nop`.
/// * [`Op::Spawn`] — executed at the end of a stub block (or inside a
///   chaining slice); binds a free context to the slice entry block and
///   hands it the live-in-buffer slot in [`conv::SLOT`]. Ignored when no
///   context is free.
/// * [`Op::LibAlloc`]/[`Op::LibSt`]/[`Op::LibLd`]/[`Op::LibFree`] — the
///   live-in buffer, modelling the Register Stack Engine backing store used
///   as an on-chip communication buffer between parent and child threads.
/// * [`Op::KillThread`] — `thread_kill_self()`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `dst = imm`.
    Movi {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a <kind> b`.
    Alu {
        /// Operation kind.
        kind: AluKind,
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// `dst = (a <kind> b) ? 1 : 0`.
    Cmp {
        /// Operation kind.
        kind: CmpKind,
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// `dst = a <kind> b` over `f64` bit patterns.
    FAlu {
        /// Operation kind.
        kind: FAluKind,
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand register.
        b: Reg,
    },
    /// `dst = mem[base + off]` (8 bytes).
    Ld {
        /// Destination register.
        dst: Reg,
        /// Base-address register.
        base: Reg,
        /// Byte offset from `base`.
        off: i64,
    },
    /// `mem[base + off] = src` (8 bytes).
    St {
        /// Source register.
        src: Reg,
        /// Base-address register.
        base: Reg,
        /// Byte offset from `base`.
        off: i64,
    },
    /// Prefetch the line containing `base + off` into L1 (Itanium `lfetch`).
    /// Never faults, never stalls the issuing thread on a miss.
    Lfetch {
        /// Base-address register.
        base: Reg,
        /// Byte offset from `base`.
        off: i64,
    },
    /// Unconditional branch.
    Br {
        /// Branch target block.
        target: BlockId,
    },
    /// Conditional branch: to `if_true` when `pred != 0`, else `if_false`.
    BrCond {
        /// Predicate register (taken when nonzero).
        pred: Reg,
        /// Target when the predicate is nonzero.
        if_true: BlockId,
        /// Target when the predicate is zero.
        if_false: BlockId,
    },
    /// Direct call. `nargs` register arguments are live at the call.
    Call {
        /// Called function.
        callee: FuncId,
        /// Number of live register arguments.
        nargs: u16,
    },
    /// Indirect call through a register holding a function id, as produced
    /// by [`Op::Movi`] with [`FuncId::as_value`]. The paper instruments
    /// these to recover the dynamic call graph during profiling.
    CallInd {
        /// Register holding the callee's function id.
        target: Reg,
        /// Number of live register arguments.
        nargs: u16,
    },
    /// Return to the caller.
    Ret,
    /// SSP trigger: raise to `stub` if a hardware context is free.
    ChkC {
        /// Stub block the trigger raises to.
        stub: BlockId,
    },
    /// Spawn a speculative thread at `entry`, passing the live-in slot
    /// currently in `slot` to the child's [`conv::SLOT`] register.
    Spawn {
        /// Entry block of the spawned slice.
        entry: BlockId,
        /// Register holding the live-in buffer slot.
        slot: Reg,
    },
    /// Allocate a live-in buffer slot into `dst`.
    LibAlloc {
        /// Destination register.
        dst: Reg,
    },
    /// Store `src` into word `idx` of live-in slot `slot`.
    LibSt {
        /// Register holding the live-in buffer slot.
        slot: Reg,
        /// Word index within the slot.
        idx: u8,
        /// Source register.
        src: Reg,
    },
    /// Load word `idx` of live-in slot `slot` into `dst`.
    LibLd {
        /// Destination register.
        dst: Reg,
        /// Register holding the live-in buffer slot.
        slot: Reg,
        /// Word index within the slot.
        idx: u8,
    },
    /// Release live-in slot `slot`.
    LibFree {
        /// Register holding the live-in buffer slot.
        slot: Reg,
    },
    /// Terminate the executing (speculative) thread.
    KillThread,
    /// Mark the start of the timed region of interest.
    RoiBegin,
    /// Mark the end of the timed region of interest.
    RoiEnd,
    /// Terminate the whole simulation.
    Halt,
    /// No operation. The post-pass tool replaces padding `nop`s with
    /// `chk.c` trigger instructions (§3.4.2, Figure 7).
    Nop,
}

/// Upper bound on the number of registers any operation reads
/// ([`Op::CallInd`]: target, up to [`conv::MAX_ARGS`] arguments, and SP).
pub const MAX_USES: usize = 2 + conv::MAX_ARGS as usize;

impl Op {
    /// Whether this operation must end a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::BrCond { .. } | Op::Ret | Op::Halt | Op::KillThread)
    }

    /// Whether this is a memory-reading load (`ld8`). `Lfetch` and the
    /// live-in buffer ops are excluded: only true loads can be delinquent.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Ld { .. })
    }

    /// Whether this operation writes simulated memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::St { .. })
    }

    /// Whether this is any kind of call.
    pub fn is_call(&self) -> bool {
        matches!(self, Op::Call { .. } | Op::CallInd { .. })
    }

    /// Whether this is a conditional or unconditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::BrCond { .. })
    }

    /// The register defined by this operation, if any.
    ///
    /// Writes to `r0` are discarded by the hardware, so `r0` destinations
    /// report no definition.
    pub fn def(&self) -> Option<Reg> {
        let d = match *self {
            Op::Movi { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Alu { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::FAlu { dst, .. }
            | Op::Ld { dst, .. }
            | Op::LibAlloc { dst }
            | Op::LibLd { dst, .. } => dst,
            _ => return None,
        };
        (!d.is_zero()).then_some(d)
    }

    /// Collect the registers this operation reads into `out`.
    ///
    /// Calls report their convention uses (argument registers and SP);
    /// their clobbers are reported by [`Op::extra_defs`]. Reads of `r0`
    /// are included (they are real operand slots), callers that only care
    /// about dependences should skip [`Reg::is_zero`] sources.
    pub fn uses_into(&self, out: &mut Vec<Reg>) {
        self.for_each_use(|r| out.push(r));
    }

    /// Visit the registers this operation reads, in [`Op::uses_into`]
    /// order. The single source of truth for use order: both the `Vec`
    /// and fixed-capacity collectors are built on it.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match *self {
            Op::Movi { .. }
            | Op::Ret
            | Op::ChkC { .. }
            | Op::LibAlloc { .. }
            | Op::KillThread
            | Op::RoiBegin
            | Op::RoiEnd
            | Op::Halt
            | Op::Br { .. }
            | Op::Nop => {}
            Op::Mov { src, .. } => f(src),
            Op::Alu { a, b, .. } | Op::Cmp { a, b, .. } => {
                f(a);
                if let Operand::Reg(r) = b {
                    f(r);
                }
            }
            Op::FAlu { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::Ld { base, .. } | Op::Lfetch { base, .. } => f(base),
            Op::St { src, base, .. } => {
                f(src);
                f(base);
            }
            Op::BrCond { pred, .. } => f(pred),
            Op::Call { nargs, .. } => conv::call_uses(nargs).for_each(f),
            Op::CallInd { target, nargs } => {
                f(target);
                conv::call_uses(nargs).for_each(f);
            }
            Op::Spawn { slot, .. } => f(slot),
            Op::LibSt { slot, src, .. } => {
                f(slot);
                f(src);
            }
            Op::LibLd { slot, .. } => f(slot),
            Op::LibFree { slot } => f(slot),
        }
    }

    /// Collect the registers this operation reads into a fixed-capacity
    /// buffer, returning how many were written. Allocation-free: sized
    /// for the worst case ([`MAX_USES`]), in [`Op::uses_into`] order.
    pub fn uses_fixed(&self, out: &mut [Reg; MAX_USES]) -> usize {
        let mut n = 0;
        self.for_each_use(|r| {
            out[n] = r;
            n += 1;
        });
        n
    }

    /// The registers this operation reads, as a fresh vector.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// Registers clobbered beyond [`Op::def`]: the scratch range for calls,
    /// [`conv::RV`] being the visible definition.
    pub fn extra_defs(&self) -> Vec<Reg> {
        if self.is_call() {
            conv::call_defs().collect()
        } else {
            Vec::new()
        }
    }

    /// CFG successor blocks within the same function. `ChkC`'s stub and
    /// `Spawn`'s entry are *not* successors: the former is an exception
    /// edge taken by the recovery mechanism, the latter starts a different
    /// thread.
    pub fn branch_targets(&self) -> Vec<BlockId> {
        match *self {
            Op::Br { target } => vec![target],
            Op::BrCond { if_true, if_false, .. } => vec![if_true, if_false],
            _ => Vec::new(),
        }
    }
}

/// An instruction: a tagged operation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// Stable profile identity.
    pub tag: InstTag,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// Create an instruction with the given tag.
    pub fn new(tag: InstTag, op: Op) -> Self {
        Inst { tag, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_of_zero_dst_is_none() {
        let op = Op::Movi { dst: Reg(0), imm: 7 };
        assert_eq!(op.def(), None);
        let op = Op::Movi { dst: Reg(5), imm: 7 };
        assert_eq!(op.def(), Some(Reg(5)));
    }

    #[test]
    fn alu_uses_both_regs() {
        let op = Op::Alu { kind: AluKind::Add, dst: Reg(3), a: Reg(1), b: Operand::Reg(Reg(2)) };
        assert_eq!(op.uses(), vec![Reg(1), Reg(2)]);
        let op = Op::Alu { kind: AluKind::Add, dst: Reg(3), a: Reg(1), b: Operand::Imm(4) };
        assert_eq!(op.uses(), vec![Reg(1)]);
    }

    #[test]
    fn store_uses_value_and_base() {
        let op = Op::St { src: Reg(7), base: Reg(8), off: 16 };
        assert_eq!(op.uses(), vec![Reg(7), Reg(8)]);
        assert!(op.is_store());
        assert!(!op.is_load());
        assert_eq!(op.def(), None);
    }

    #[test]
    fn call_defs_and_uses_follow_convention() {
        let op = Op::Call { callee: FuncId(0), nargs: 3 };
        let uses = op.uses();
        assert!(uses.contains(&conv::arg(0)));
        assert!(uses.contains(&conv::arg(2)));
        assert!(uses.contains(&conv::SP));
        let defs = op.extra_defs();
        assert!(defs.contains(&conv::RV));
        assert!(!defs.contains(&conv::SP));
        assert!(!defs.contains(&Reg(100)), "callee-saved not clobbered");
    }

    #[test]
    fn terminators() {
        assert!(Op::Ret.is_terminator());
        assert!(Op::Halt.is_terminator());
        assert!(Op::KillThread.is_terminator());
        assert!(Op::Br { target: BlockId(0) }.is_terminator());
        assert!(!Op::Call { callee: FuncId(0), nargs: 0 }.is_terminator());
        assert!(!Op::ChkC { stub: BlockId(0) }.is_terminator());
    }

    #[test]
    fn branch_targets_exclude_spawn_and_chk() {
        assert!(Op::ChkC { stub: BlockId(3) }.branch_targets().is_empty());
        assert!(Op::Spawn { entry: BlockId(3), slot: Reg(9) }.branch_targets().is_empty());
        assert_eq!(
            Op::BrCond { pred: Reg(1), if_true: BlockId(1), if_false: BlockId(2) }.branch_targets(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn lfetch_is_not_a_load() {
        assert!(!Op::Lfetch { base: Reg(1), off: 0 }.is_load());
        assert!(Op::Ld { dst: Reg(2), base: Reg(1), off: 0 }.is_load());
    }
}
