//! Dominator and post-dominator trees via the Cooper–Harvey–Kennedy
//! iterative algorithm.
//!
//! The trigger-placement pass (§3.3) "maintains control dominance
//! information intra-procedurally" and hoists triggers to immediate
//! dominators; the slicer derives control dependences from the
//! post-dominance frontier.

use crate::cfg::Cfg;
use crate::program::{BlockId, Function};

/// A dominator tree over the reachable blocks of one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b] == Some(d)`: `d` immediately dominates `b`. The root has
    /// `idom == None`, as do unreachable blocks.
    idom: Vec<Option<BlockId>>,
    root: BlockId,
}

impl DomTree {
    /// Dominators of the forward CFG rooted at the function entry.
    pub fn dominators(func: &Function, cfg: &Cfg) -> Self {
        let order: Vec<BlockId> = cfg.rpo().to_vec();
        let pos = |b: BlockId| cfg.rpo_pos(b);
        Self::build(func.blocks.len(), func.entry, &order, pos, |b| cfg.preds(b).to_vec())
    }

    /// Post-dominators: dominators of the reverse CFG. Because functions
    /// can have several exits (`Ret`, `Halt`, `KillThread`) we root the
    /// reverse graph at a virtual exit; blocks whose immediate
    /// post-dominator is the virtual exit report `None` as their parent
    /// but still count as reachable.
    pub fn post_dominators(func: &Function, cfg: &Cfg) -> Self {
        let n = func.blocks.len();
        let virtual_exit = BlockId(n as u32);
        // Reverse adjacency: succ in reverse graph = pred in forward graph.
        let mut rsuccs: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        let mut rpreds: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        for &b in cfg.rpo() {
            let term = func.block(b).terminator();
            if term.branch_targets().is_empty() {
                // An exit block: edge virtual_exit -> b in the reverse graph.
                rsuccs[virtual_exit.index()].push(b);
                rpreds[b.index()].push(virtual_exit);
            }
            for &s in cfg.succs(b) {
                rsuccs[s.index()].push(b);
                rpreds[b.index()].push(s);
            }
        }
        // RPO of the reverse graph from the virtual exit.
        let mut visited = vec![false; n + 1];
        let mut post = Vec::new();
        let mut stack = vec![(virtual_exit, 0usize)];
        visited[virtual_exit.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < rsuccs[b.index()].len() {
                let s = rsuccs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut pos = vec![None; n + 1];
        for (i, &b) in post.iter().enumerate() {
            pos[b.index()] = Some(i);
        }
        let mut tree = Self::build(
            n + 1,
            virtual_exit,
            &post,
            |b| pos[b.index()],
            |b| rpreds[b.index()].clone(),
        );
        // Clip the virtual exit out of the public view: parents pointing at
        // it become None.
        for p in tree.idom.iter_mut() {
            if *p == Some(virtual_exit) {
                *p = None;
            }
        }
        tree.idom.truncate(n);
        tree.root = virtual_exit; // no single real root; kept private
        tree
    }

    fn build(
        n: usize,
        root: BlockId,
        order: &[BlockId],
        pos: impl Fn(BlockId) -> Option<usize>,
        preds: impl Fn(BlockId) -> Vec<BlockId>,
    ) -> Self {
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.index()] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[root.index()] = None; // root has no parent in the public view
        DomTree { idom, root }
    }

    /// The immediate dominator of `b` (`None` for the root and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The path from `b` up to the root, inclusive of `b`.
    pub fn ancestors(&self, b: BlockId) -> Vec<BlockId> {
        let mut v = vec![b];
        let mut cur = b;
        while let Some(p) = self.idom(cur) {
            v.push(p);
            cur = p;
        }
        v
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    pos: &impl Fn(BlockId) -> Option<usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    loop {
        let (pa, pb) = match (pos(a), pos(b)) {
            (Some(x), Some(y)) => (x, y),
            // One side not in the traversal order: fall back to the other.
            _ => return if pos(a).is_some() { a } else { b },
        };
        if pa == pb {
            return a;
        }
        if pa > pb {
            a = idom[a.index()].expect("processed block must have idom");
        } else {
            b = idom[b.index()].expect("processed block must have idom");
        }
    }
}

/// Control dependence: block `b` is control dependent on branch block `c`
/// when `c` decides whether `b` executes. Computed per Ferrante–Ottenstein–
/// Warren from the post-dominance relation: `b` is control dependent on `c`
/// iff `c` has a successor post-dominated by `b` and a successor not
/// post-dominated by `b` (with `b != c` or loop-carried self dependence).
pub fn control_deps(func: &Function, cfg: &Cfg) -> Vec<Vec<BlockId>> {
    let pdom = DomTree::post_dominators(func, cfg);
    let n = func.blocks.len();
    let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for &c in cfg.rpo() {
        let succs = cfg.succs(c);
        if succs.len() < 2 {
            continue;
        }
        for &s in succs {
            // Walk the post-dominator chain from s up to (but excluding)
            // c's post-dominator parent; every block on it is control
            // dependent on c.
            let stop = pdom.idom(c);
            let mut cur = Some(s);
            while let Some(b) = cur {
                if Some(b) == stop {
                    break;
                }
                if !deps[b.index()].contains(&c) {
                    deps[b.index()].push(c);
                }
                if b == c {
                    break; // self-dependence (loop) — stop climbing
                }
                cur = pdom.idom(b);
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::cfg::Cfg;
    use crate::inst::CmpKind;
    use crate::program::Program;
    use crate::reg::Reg;

    /// 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3: halt   (diamond)
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let l = f.new_block();
        let r = f.new_block();
        let j = f.new_block();
        f.at(e).cmp(CmpKind::Lt, Reg(1), Reg(2), 5).br_cond(Reg(1), l, r);
        f.at(l).movi(Reg(3), 1).br(j);
        f.at(r).movi(Reg(3), 2).br(j);
        f.at(j).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn diamond_dominators() {
        let prog = diamond();
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_post_dominators() {
        let prog = diamond();
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let pdom = DomTree::post_dominators(func, &cfg);
        assert_eq!(pdom.idom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(3)), None);
    }

    #[test]
    fn diamond_control_deps() {
        let prog = diamond();
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let deps = control_deps(func, &cfg);
        assert_eq!(deps[1], vec![BlockId(0)], "then-arm depends on branch");
        assert_eq!(deps[2], vec![BlockId(0)], "else-arm depends on branch");
        assert!(deps[3].is_empty(), "join depends on nothing");
        assert!(deps[0].is_empty());
    }

    #[test]
    fn loop_control_dep_is_self() {
        // 0 -> 1 ; 1 -> 1,2 ; 2: halt
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(e).movi(Reg(1), 0).br(body);
        f.at(body).add(Reg(1), Reg(1), 1).cmp(CmpKind::Lt, Reg(2), Reg(1), 10).br_cond(
            Reg(2),
            body,
            exit,
        );
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let deps = control_deps(func, &cfg);
        assert_eq!(deps[1], vec![BlockId(1)], "loop body controls its own repetition");
    }

    #[test]
    fn nested_branch_dominators() {
        // 0 -> 1,4 ; 1 -> 2,3 ; 2 -> 3 ; 3 -> 4 ; 4: halt
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        f.at(b0).cmp(CmpKind::Lt, Reg(1), Reg(2), 5).br_cond(Reg(1), b1, b4);
        f.at(b1).cmp(CmpKind::Lt, Reg(1), Reg(2), 3).br_cond(Reg(1), b2, b3);
        f.at(b2).br(b3);
        f.at(b3).br(b4);
        f.at(b4).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        assert_eq!(dom.idom(b2), Some(b1));
        assert_eq!(dom.idom(b3), Some(b1));
        assert_eq!(dom.idom(b4), Some(b0));
        assert_eq!(dom.ancestors(b2), vec![b2, b1, b0]);
    }
}
