//! Control-flow graph views over a [`Function`].

use crate::program::{BlockId, Function};

/// Predecessor/successor adjacency plus traversal orders for one function.
///
/// Attachment blocks (stub/slice blocks appended by the post-pass tool) are
/// included in the adjacency arrays — their internal edges are real — but a
/// `ChkC` exception edge or `Spawn` entry is never a CFG edge, so they stay
/// unreachable from the entry and are excluded from [`Cfg::rpo`].
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_pos: Vec<Option<usize>>,
}

impl Cfg {
    /// Compute the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            if let Some(last) = block.insts.last() {
                for t in last.op.branch_targets() {
                    succs[bid.index()].push(t);
                    preds[t.index()].push(bid);
                }
            }
        }
        // Depth-first post-order from the entry, reversed.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit (block, next-successor-index) stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited[func.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![None; n];
        for (i, &b) in post.iter().enumerate() {
            rpo_pos[b.index()] = Some(i);
        }
        Cfg { succs, preds, rpo: post, rpo_pos }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, or `None` if `b` is
    /// unreachable from the entry (e.g. an attachment block).
    pub fn rpo_pos(&self, b: BlockId) -> Option<usize> {
        self.rpo_pos[b.index()]
    }

    /// Whether `b` is reachable from the function entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos(b).is_some()
    }

    /// Number of blocks (reachable or not).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// All edges `(from, to)` between reachable blocks.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut v = Vec::new();
        for &b in &self.rpo {
            for &s in self.succs(b) {
                v.push((b, s));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    /// entry -> body -> body|exit  (simple loop)
    fn loop_func() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(e).movi(Reg(1), 0).br(body);
        f.at(body)
            .add(Reg(1), Reg(1), 1)
            .cmp(crate::inst::CmpKind::Lt, Reg(2), Reg(1), 10)
            .br_cond(Reg(2), body, exit);
        f.at(exit).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn loop_edges() {
        let prog = loop_func();
        let cfg = Cfg::new(prog.func(prog.entry));
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.preds(BlockId(1)).contains(&BlockId(0)));
        assert!(cfg.preds(BlockId(1)).contains(&BlockId(1)));
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 3);
    }

    #[test]
    fn unreachable_block_not_in_rpo() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let orphan = f.new_block();
        f.at(e).halt();
        f.at(orphan).kill_thread();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(orphan));
        assert_eq!(cfg.rpo().len(), 1);
    }

    #[test]
    fn rpo_respects_topological_order_on_dag() {
        // diamond: 0 -> 1,2 -> 3
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let l = f.new_block();
        let r = f.new_block();
        let j = f.new_block();
        f.at(e).movi(Reg(1), 1).br_cond(Reg(1), l, r);
        f.at(l).br(j);
        f.at(r).br(j);
        f.at(j).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));
        let pos = |b: BlockId| cfg.rpo_pos(b).unwrap();
        assert!(pos(e) < pos(l));
        assert!(pos(e) < pos(r));
        assert!(pos(l) < pos(j));
        assert!(pos(r) < pos(j));
    }
}
