//! Path counting over a marked, filtered sub-CFG.
//!
//! The static SSP linter needs to know, for every delinquent load, how
//! many control-flow paths from the function entry reach it and how many
//! trigger (`chk.c`) blocks each path crosses — the paper's invariant is
//! that every profile-hot path crosses *exactly one*. [`PathCounts`]
//! answers this with a single forward dynamic-programming pass: loop
//! back edges are removed (an edge whose target does not come later in
//! reverse post-order), leaving the acyclic per-entry/per-iteration view
//! of the function, and each block accumulates a saturating count of
//! incoming paths classified by how many marked blocks they crossed.
//!
//! Counting on the back-edge-free graph is the right formalization for
//! per-iteration triggers: a path that goes around a loop again crosses
//! the trigger again *and legitimately fires it again*, so only the
//! acyclic skeleton of each path must cross the trigger exactly once.

use crate::cfg::Cfg;
use crate::program::BlockId;

/// Saturating path counts at one block, classified by how many marked
/// blocks the path crossed (crossings of the block itself included).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PathClasses {
    /// Paths that crossed no marked block.
    pub zero: u64,
    /// Paths that crossed exactly one marked block.
    pub one: u64,
    /// Paths that crossed two or more marked blocks.
    pub many: u64,
}

impl PathClasses {
    /// Total number of (counted) paths reaching the block.
    pub fn total(&self) -> u64 {
        self.zero.saturating_add(self.one).saturating_add(self.many)
    }
}

/// Per-block path counts over the back-edge-free sub-CFG induced by a
/// block filter.
#[derive(Clone, Debug)]
pub struct PathCounts {
    counts: Vec<Option<PathClasses>>,
}

impl PathCounts {
    /// Count paths from the function entry through blocks satisfying
    /// `included`, crossing `marks(b)` marked instructions per visit of
    /// block `b`.
    ///
    /// Edges whose target does not come strictly later in reverse
    /// post-order (loop back edges, plus any irreducible retreating
    /// edge) are dropped, so the traversed graph is a DAG and every
    /// count is finite; counts saturate instead of overflowing. Blocks
    /// excluded by the filter — or only reachable through excluded
    /// blocks — report [`None`].
    pub fn new(
        cfg: &Cfg,
        included: impl Fn(BlockId) -> bool,
        marks: impl Fn(BlockId) -> u32,
    ) -> Self {
        let entry = cfg.rpo()[0];
        Self::from_source(cfg, entry, included, marks)
    }

    /// [`PathCounts::new`] starting from an arbitrary source block
    /// instead of the function entry.
    ///
    /// Used for per-iteration trigger coverage: counting from a loop
    /// header over the loop's blocks yields, at each latch, the classes
    /// of one full iteration's paths.
    pub fn from_source(
        cfg: &Cfg,
        source: BlockId,
        included: impl Fn(BlockId) -> bool,
        marks: impl Fn(BlockId) -> u32,
    ) -> Self {
        let n = cfg.num_blocks();
        let mut counts: Vec<Option<PathClasses>> = vec![None; n];
        // cfg.rpo() is a topological order of the DAG that remains after
        // dropping non-forward edges, and starts at the entry.
        for &b in cfg.rpo().iter() {
            if !included(b) {
                continue;
            }
            let mut incoming = PathClasses::default();
            if b == source {
                // The source receives one virtual path with no crossings.
                incoming.zero = 1;
            }
            for &p in cfg.preds(b) {
                // Keep only forward edges p -> b.
                let forward = match (cfg.rpo_pos(p), cfg.rpo_pos(b)) {
                    (Some(pp), Some(pb)) => pp < pb,
                    _ => false,
                };
                if !forward {
                    continue;
                }
                if let Some(from) = counts[p.index()] {
                    incoming.zero = incoming.zero.saturating_add(from.zero);
                    incoming.one = incoming.one.saturating_add(from.one);
                    incoming.many = incoming.many.saturating_add(from.many);
                }
            }
            if incoming.total() == 0 {
                continue; // unreached within the filtered subgraph
            }
            // Crossing this block shifts every path up by marks(b) classes.
            let shifted = match marks(b) {
                0 => incoming,
                1 => PathClasses {
                    zero: 0,
                    one: incoming.zero,
                    many: incoming.one.saturating_add(incoming.many),
                },
                _ => PathClasses { zero: 0, one: 0, many: incoming.total() },
            };
            counts[b.index()] = Some(shifted);
        }
        PathCounts { counts }
    }

    /// The path classes reaching `b`, or [`None`] when no counted path
    /// does (block filtered out, unreachable, or only reachable via
    /// filtered-out blocks).
    pub fn at(&self, b: BlockId) -> Option<PathClasses> {
        self.counts.get(b.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CmpKind;
    use crate::program::Program;
    use crate::reg::Reg;

    /// diamond: 0 -> 1,2 -> 3 -> 4
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let l = f.new_block();
        let r = f.new_block();
        let j = f.new_block();
        let x = f.new_block();
        f.at(e).movi(Reg(1), 1).br_cond(Reg(1), l, r);
        f.at(l).br(j);
        f.at(r).br(j);
        f.at(j).br(x);
        f.at(x).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn diamond_counts_both_paths() {
        let prog = diamond();
        let cfg = Cfg::new(prog.func(prog.entry));
        // Mark only the left arm: the join sees one covered and one
        // uncovered path.
        let pc = PathCounts::new(&cfg, |_| true, |b| u32::from(b == BlockId(1)));
        let at_join = pc.at(BlockId(3)).unwrap();
        assert_eq!((at_join.zero, at_join.one, at_join.many), (1, 1, 0));
        // Mark the entry instead: both paths cross it exactly once.
        let pc = PathCounts::new(&cfg, |_| true, |b| u32::from(b == BlockId(0)));
        let at_exit = pc.at(BlockId(4)).unwrap();
        assert_eq!((at_exit.zero, at_exit.one, at_exit.many), (0, 2, 0));
        // Mark entry and both arms: every path crosses two marks.
        let pc = PathCounts::new(&cfg, |_| true, |b| u32::from(b.index() <= 2));
        let at_exit = pc.at(BlockId(4)).unwrap();
        assert_eq!((at_exit.zero, at_exit.one, at_exit.many), (0, 0, 2));
    }

    #[test]
    fn filtered_blocks_cut_paths() {
        let prog = diamond();
        let cfg = Cfg::new(prog.func(prog.entry));
        // Exclude the right arm: only the marked left path remains.
        let pc = PathCounts::new(&cfg, |b| b != BlockId(2), |b| u32::from(b == BlockId(1)));
        let at_join = pc.at(BlockId(3)).unwrap();
        assert_eq!((at_join.zero, at_join.one, at_join.many), (0, 1, 0));
        assert!(pc.at(BlockId(2)).is_none());
        // Exclude the entry: nothing is reachable.
        let pc = PathCounts::new(&cfg, |b| b != BlockId(0), |_| 0);
        assert!(pc.at(BlockId(3)).is_none());
    }

    #[test]
    fn loop_back_edge_is_ignored() {
        // entry -> body -> body | exit : one acyclic path to each block.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(e).movi(Reg(1), 0).br(body);
        f.at(body).add(Reg(1), Reg(1), 1).cmp(CmpKind::Lt, Reg(2), Reg(1), 10).br_cond(
            Reg(2),
            body,
            exit,
        );
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));
        let pc = PathCounts::new(&cfg, |_| true, |b| u32::from(b == BlockId(1)));
        let at_body = pc.at(BlockId(1)).unwrap();
        assert_eq!((at_body.zero, at_body.one, at_body.many), (0, 1, 0));
        let at_exit = pc.at(BlockId(2)).unwrap();
        assert_eq!((at_exit.zero, at_exit.one, at_exit.many), (0, 1, 0));
    }
}
