//! The hierarchical region graph of §3.1.1.
//!
//! "A region represents a loop, a loop body, or a procedure in the program.
//! Derived using CFG information, a region graph is a hierarchical program
//! representation that uses edges to connect a parent region to its child
//! regions, that is, from callers to callees, and from an outer scope to an
//! inner scope."
//!
//! Region-based slicing walks this graph outward from the innermost region
//! containing a delinquent load, growing the slice until the slack is large
//! enough; region/model selection (§3.4.1) walks the same chain computing
//! reduced miss cycles per region.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::{LoopForest, LoopId};
use crate::program::{BlockId, FuncId, Program};
use std::collections::HashMap;

/// Index of a region in a [`RegionGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// What a region is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionKind {
    /// A whole procedure.
    Procedure(FuncId),
    /// A natural loop (all iterations).
    Loop(FuncId, LoopId),
    /// One iteration of a loop — its body. Chaining SP assigns "one
    /// chaining thread to one iteration in a loop region" (§3.2.1), so the
    /// loop body is the unit a slice is extracted from.
    LoopBody(FuncId, LoopId),
}

impl RegionKind {
    /// The function this region belongs to.
    pub fn func(self) -> FuncId {
        match self {
            RegionKind::Procedure(f) | RegionKind::Loop(f, _) | RegionKind::LoopBody(f, _) => f,
        }
    }
}

/// One region node.
#[derive(Clone, Debug)]
pub struct Region {
    /// The region's kind and position.
    pub kind: RegionKind,
    /// Blocks belonging to this region (for a loop body, same blocks as
    /// the loop; the distinction is iteration count, not extent).
    pub blocks: Vec<BlockId>,
    /// The enclosing region in the same function, if any.
    pub parent: Option<RegionId>,
    /// Inner scopes: nested loops (and for a procedure, its outermost
    /// loops).
    pub children: Vec<RegionId>,
    /// Regions of procedures called from inside this region (parent→child
    /// edges "from callers to callees").
    pub callees: Vec<RegionId>,
}

/// The program-wide region graph.
#[derive(Clone, Debug)]
pub struct RegionGraph {
    regions: Vec<Region>,
    proc_region: HashMap<FuncId, RegionId>,
    loop_region: HashMap<(FuncId, LoopId), RegionId>,
    body_region: HashMap<(FuncId, LoopId), RegionId>,
}

impl RegionGraph {
    /// Build the region graph for a whole program. Attachment blocks are
    /// ignored (they are not part of the main thread's regions).
    pub fn new(prog: &Program) -> Self {
        let mut g = RegionGraph {
            regions: Vec::new(),
            proc_region: HashMap::new(),
            loop_region: HashMap::new(),
            body_region: HashMap::new(),
        };
        // Pass 1: create nodes per function.
        for (fid, func) in prog.iter_funcs() {
            let cfg = Cfg::new(func);
            let dom = DomTree::dominators(func, &cfg);
            let loops = LoopForest::new(func, &cfg, &dom);

            let proc_id = g.push(Region {
                kind: RegionKind::Procedure(fid),
                blocks: cfg.rpo().to_vec(),
                parent: None,
                children: Vec::new(),
                callees: Vec::new(),
            });
            g.proc_region.insert(fid, proc_id);

            // Loop + loop-body regions.
            for (lid, l) in loops.iter() {
                let loop_rid = g.push(Region {
                    kind: RegionKind::Loop(fid, lid),
                    blocks: l.blocks.clone(),
                    parent: None, // fixed up below
                    children: Vec::new(),
                    callees: Vec::new(),
                });
                g.loop_region.insert((fid, lid), loop_rid);
                let body_rid = g.push(Region {
                    kind: RegionKind::LoopBody(fid, lid),
                    blocks: l.blocks.clone(),
                    parent: Some(loop_rid),
                    children: Vec::new(),
                    callees: Vec::new(),
                });
                g.body_region.insert((fid, lid), body_rid);
                g.regions[loop_rid.0 as usize].children.push(body_rid);
            }
            // Parent links: a loop's parent is its enclosing loop's *body*
            // region (one iteration of the outer loop contains the whole
            // inner loop), or the procedure if outermost.
            for (lid, l) in loops.iter() {
                let loop_rid = g.loop_region[&(fid, lid)];
                let parent_rid = match l.parent {
                    Some(p) => g.body_region[&(fid, p)],
                    None => proc_id,
                };
                g.regions[loop_rid.0 as usize].parent = Some(parent_rid);
                g.regions[parent_rid.0 as usize].children.push(loop_rid);
            }
        }
        // Pass 2: call edges. A call inside block b of function f links the
        // innermost region containing b to the callee's procedure region.
        for (fid, func) in prog.iter_funcs() {
            let cfg = Cfg::new(func);
            let dom = DomTree::dominators(func, &cfg);
            let loops = LoopForest::new(func, &cfg, &dom);
            for (bid, block) in func.iter_blocks() {
                if block.attachment || !cfg.is_reachable(bid) {
                    continue;
                }
                for inst in &block.insts {
                    if let crate::inst::Op::Call { callee, .. } = inst.op {
                        let caller_region = match loops.innermost(bid) {
                            Some(l) => g.body_region[&(fid, l)],
                            None => g.proc_region[&fid],
                        };
                        let callee_region = g.proc_region[&callee];
                        let cr = &mut g.regions[caller_region.0 as usize];
                        if !cr.callees.contains(&callee_region) {
                            cr.callees.push(callee_region);
                        }
                    }
                    // Indirect calls are resolved during profiling; the
                    // static graph omits them (speculative slicing adds
                    // profiled targets later).
                }
            }
        }
        g
    }

    fn push(&mut self, r: Region) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(r);
        id
    }

    /// The region with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// The procedure region of `f`.
    pub fn procedure(&self, f: FuncId) -> Option<RegionId> {
        self.proc_region.get(&f).copied()
    }

    /// The loop region for `(f, l)`.
    pub fn loop_region(&self, f: FuncId, l: LoopId) -> Option<RegionId> {
        self.loop_region.get(&(f, l)).copied()
    }

    /// The loop-body region for `(f, l)`.
    pub fn loop_body(&self, f: FuncId, l: LoopId) -> Option<RegionId> {
        self.body_region.get(&(f, l)).copied()
    }

    /// The innermost region containing block `b` of function `f`
    /// (a loop-body region when `b` is inside a loop, else the procedure).
    pub fn innermost_for(&self, prog: &Program, f: FuncId, b: BlockId) -> RegionId {
        let func = prog.func(f);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        let loops = LoopForest::new(func, &cfg, &dom);
        match loops.innermost(b) {
            Some(l) => self.body_region[&(f, l)],
            None => self.proc_region[&f],
        }
    }

    /// Walk outward: the chain of regions from `r` to the procedure root,
    /// inclusive.
    pub fn outward_chain(&self, r: RegionId) -> Vec<RegionId> {
        let mut v = vec![r];
        let mut cur = r;
        while let Some(p) = self.get(cur).parent {
            v.push(p);
            cur = p;
        }
        v
    }

    /// Total number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the graph is empty (no functions).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterate over all regions.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().enumerate().map(|(i, r)| (RegionId(i as u32), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CmpKind;
    use crate::reg::Reg;

    /// main: loop calling helper() each iteration; helper: straight-line.
    fn prog_with_call_in_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let helper_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        let body = m.new_block();
        let exit = m.new_block();
        m.at(e).movi(Reg(64), 0).br(body);
        m.at(body)
            .call(helper_id, 0)
            .add(Reg(64), Reg(64), 1)
            .cmp(CmpKind::Lt, Reg(2), Reg(64), 10)
            .br_cond(Reg(2), body, exit);
        m.at(exit).halt();
        let m = m.finish();
        let mut h = pb.define(helper_id, "helper");
        let he = h.entry_block();
        h.at(he).movi(Reg(8), 7).ret();
        let h = h.finish();
        pb.install(m);
        pb.install(h);
        pb.finish(main_id)
    }

    #[test]
    fn builds_procedure_loop_body_nodes() {
        let prog = prog_with_call_in_loop();
        let g = RegionGraph::new(&prog);
        // main: 1 proc + 1 loop + 1 body; helper: 1 proc.
        assert_eq!(g.len(), 4);
        let main = prog.func_by_name("main").unwrap();
        let proc = g.procedure(main).unwrap();
        assert_eq!(g.get(proc).children.len(), 1, "one outermost loop");
        let loop_rid = g.get(proc).children[0];
        assert!(matches!(g.get(loop_rid).kind, RegionKind::Loop(..)));
        let body_rid = g.get(loop_rid).children[0];
        assert!(matches!(g.get(body_rid).kind, RegionKind::LoopBody(..)));
    }

    #[test]
    fn call_edge_from_loop_body_to_callee() {
        let prog = prog_with_call_in_loop();
        let g = RegionGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let helper = prog.func_by_name("helper").unwrap();
        let helper_proc = g.procedure(helper).unwrap();
        let proc = g.procedure(main).unwrap();
        let loop_rid = g.get(proc).children[0];
        let body_rid = g.get(loop_rid).children[0];
        assert_eq!(g.get(body_rid).callees, vec![helper_proc]);
        assert!(g.get(proc).callees.is_empty(), "call is in the loop, not proc top level");
    }

    #[test]
    fn outward_chain_reaches_procedure() {
        let prog = prog_with_call_in_loop();
        let g = RegionGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let inner = g.innermost_for(&prog, main, BlockId(1));
        let chain = g.outward_chain(inner);
        assert_eq!(chain.len(), 3, "body -> loop -> procedure");
        assert!(matches!(g.get(chain[0]).kind, RegionKind::LoopBody(..)));
        assert!(matches!(g.get(chain[1]).kind, RegionKind::Loop(..)));
        assert!(matches!(g.get(chain[2]).kind, RegionKind::Procedure(..)));
    }

    #[test]
    fn innermost_for_non_loop_block_is_procedure() {
        let prog = prog_with_call_in_loop();
        let g = RegionGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let r = g.innermost_for(&prog, main, BlockId(0));
        assert!(matches!(g.get(r).kind, RegionKind::Procedure(..)));
    }
}
