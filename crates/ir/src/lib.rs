//! An explicit-register, Itanium-flavoured intermediate representation for
//! the SSP post-pass binary-adaptation tool.
//!
//! The PLDI 2002 paper's tool consumes the Intel compiler's code-generation
//! IR, which "exactly matches the hardware instructions in the binary".
//! This crate plays that role: programs are sequences of machine-level
//! instructions over *physical* registers ([`Reg`]), grouped into basic
//! blocks and functions, with initialized data sections ([`Program::image`])
//! standing in for a loaded binary's `.data` segment.
//!
//! Besides the representation itself the crate provides the program analyses
//! a post-pass tool needs:
//!
//! * [`mod@cfg`] — control-flow graph views, reverse post-order
//! * [`dom`] — dominator and post-dominator trees (Cooper–Harvey–Kennedy)
//! * [`loops`] — natural-loop detection
//! * [`region`] — the hierarchical *region graph* of §3.1.1 (procedures,
//!   loops, loop bodies, connected caller→callee and outer→inner)
//! * [`callgraph`] — the static call graph
//! * [`dataflow`] — reaching definitions and liveness over physical registers
//! * [`paths`] — trigger-coverage path counting over marked sub-CFGs
//! * [`verify`] — structural well-formedness checks
//!
//! # Example
//!
//! ```
//! use ssp_ir::{ProgramBuilder, Reg, AluKind, CmpKind, Operand};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let entry = f.entry_block();
//! let body = f.new_block();
//! let exit = f.new_block();
//!
//! let (i, lim, one) = (Reg(14), Reg(15), Reg(16));
//! f.at(entry).movi(i, 0).movi(lim, 10).movi(one, 1).br(body);
//! let p = Reg(17);
//! f.at(body)
//!     .alu(AluKind::Add, i, i, Operand::Reg(one))
//!     .cmp(CmpKind::Lt, p, i, Operand::Reg(lim))
//!     .br_cond(p, body, exit);
//! f.at(exit).halt();
//! let main = f.finish();
//! let prog = pb.finish_with(main);
//! assert!(ssp_ir::verify::verify(&prog).is_ok());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod display;
pub mod dom;
pub mod inst;
pub mod loops;
pub mod paths;
pub mod program;
pub mod reg;
pub mod region;
pub mod verify;

pub use builder::{BlockCursor, FunctionBuilder, ProgramBuilder};
pub use inst::{AluKind, CmpKind, FAluKind, Inst, InstTag, Op, Operand, MAX_USES};
pub use program::{Block, BlockId, FuncId, Function, InstRef, Program};
pub use reg::{conv, Reg};
