//! Human-readable disassembly-style printing of programs.

use crate::inst::{AluKind, CmpKind, FAluKind, Op};
use crate::program::{Function, Program};
use std::fmt;

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Movi { dst, imm } => write!(f, "movi  {dst} = {imm}"),
            Op::Mov { dst, src } => write!(f, "mov   {dst} = {src}"),
            Op::Alu { kind, dst, a, b } => {
                let k = match kind {
                    AluKind::Add => "add",
                    AluKind::Sub => "sub",
                    AluKind::Mul => "mul",
                    AluKind::And => "and",
                    AluKind::Or => "or",
                    AluKind::Xor => "xor",
                    AluKind::Shl => "shl",
                    AluKind::Shr => "shr",
                };
                write!(f, "{k:<5} {dst} = {a}, {b}")
            }
            Op::Cmp { kind, dst, a, b } => {
                let k = match kind {
                    CmpKind::Eq => "eq",
                    CmpKind::Ne => "ne",
                    CmpKind::Lt => "lt",
                    CmpKind::Le => "le",
                    CmpKind::Gt => "gt",
                    CmpKind::Ge => "ge",
                    CmpKind::SLt => "slt",
                    CmpKind::SGt => "sgt",
                };
                write!(f, "cmp.{k:<3} {dst} = {a}, {b}")
            }
            Op::FAlu { kind, dst, a, b } => {
                let k = match kind {
                    FAluKind::Add => "fadd",
                    FAluKind::Sub => "fsub",
                    FAluKind::Mul => "fmul",
                };
                write!(f, "{k:<5} {dst} = {a}, {b}")
            }
            Op::Ld { dst, base, off } => write!(f, "ld8   {dst} = [{base}+{off}]"),
            Op::St { src, base, off } => write!(f, "st8   [{base}+{off}] = {src}"),
            Op::Lfetch { base, off } => write!(f, "lfetch [{base}+{off}]"),
            Op::Br { target } => write!(f, "br    {target}"),
            Op::BrCond { pred, if_true, if_false } => {
                write!(f, "br.cond {pred} ? {if_true} : {if_false}")
            }
            Op::Call { callee, nargs } => write!(f, "call  {callee} ({nargs} args)"),
            Op::CallInd { target, nargs } => write!(f, "call  [{target}] ({nargs} args)"),
            Op::Ret => write!(f, "ret"),
            Op::ChkC { stub } => write!(f, "chk.c {stub}"),
            Op::Spawn { entry, slot } => write!(f, "spawn {entry}, slot={slot}"),
            Op::LibAlloc { dst } => write!(f, "lib.alloc {dst}"),
            Op::LibSt { slot, idx, src } => write!(f, "lib.st [{slot}:{idx}] = {src}"),
            Op::LibLd { dst, slot, idx } => write!(f, "lib.ld {dst} = [{slot}:{idx}]"),
            Op::LibFree { slot } => write!(f, "lib.free {slot}"),
            Op::KillThread => write!(f, "thread.kill.self"),
            Op::RoiBegin => write!(f, "roi.begin"),
            Op::RoiEnd => write!(f, "roi.end"),
            Op::Halt => write!(f, "halt"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}:", self.name)?;
        for (bid, block) in self.iter_blocks() {
            let marker = if block.attachment { " (attachment)" } else { "" };
            writeln!(f, "  {bid}:{marker}")?;
            for inst in &block.insts {
                writeln!(f, "    {:>6}  {}", inst.tag.to_string(), inst.op)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program (entry {}):", self.entry)?;
        for (fid, func) in self.iter_funcs() {
            writeln!(f, "; {fid}")?;
            write!(f, "{func}")?;
        }
        if !self.image.is_empty() {
            writeln!(f, "; data image: {} words", self.image.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    #[test]
    fn display_is_nonempty_and_contains_opcodes() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).movi(Reg(1), 7).ld(Reg(2), Reg(1), 8).st(Reg(2), Reg(1), 16).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let s = prog.to_string();
        assert!(s.contains("func main"));
        assert!(s.contains("movi"));
        assert!(s.contains("ld8"));
        assert!(s.contains("st8"));
        assert!(s.contains("halt"));
    }
}
