//! Programs, functions, and basic blocks.

use crate::inst::{Inst, InstTag, Op};
use std::collections::HashMap;
use std::fmt;

/// Index of a function within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Encode the function id as a register value, for indirect calls.
    pub fn as_value(self) -> u64 {
        // Offset into a range no data address uses, so stray arithmetic on
        // function "addresses" is caught by the verifier of the simulator.
        0xF000_0000_0000_0000 | u64::from(self.0)
    }

    /// Decode a register value produced by [`FuncId::as_value`].
    pub fn from_value(v: u64) -> Option<FuncId> {
        if v & 0xF000_0000_0000_0000 == 0xF000_0000_0000_0000 {
            Some(FuncId((v & 0xFFFF_FFFF) as u32))
        } else {
            None
        }
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index of a basic block within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into [`Function::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A precise location of a static instruction: function, block, and index
/// within the block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstRef {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within [`Block::insts`].
    pub idx: usize,
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.idx)
    }
}

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    /// The instructions; the last one is the terminator.
    pub insts: Vec<Inst>,
    /// True for blocks appended by the post-pass tool (stub and slice
    /// blocks, Figure 7): unreachable from the function entry via normal
    /// control flow and excluded from main-thread CFG analyses.
    pub attachment: bool,
}

impl Block {
    /// The block's terminator operation.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (not verified yet).
    pub fn terminator(&self) -> &Op {
        &self.insts.last().expect("empty block has no terminator").op
    }
}

/// A function: basic blocks plus an entry block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block (always `BlockId(0)` for builder-made functions).
    pub entry: BlockId,
}

impl Function {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of instructions in the function.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A whole program: the unit the post-pass tool adapts.
///
/// Standing in for a linked binary, a program carries its functions, the
/// entry function, an initialized-data image (like a `.data` section), and
/// the tag counter used to mint fresh [`InstTag`]s during adaptation.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// All functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// The function where execution starts.
    pub entry: FuncId,
    /// Initialized memory: `(byte address, 64-bit word)` pairs. Addresses
    /// must be 8-byte aligned.
    pub image: Vec<(u64, u64)>,
    /// Next unused instruction-tag value.
    pub next_tag: u32,
}

impl Program {
    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Iterate over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Mint a fresh instruction tag.
    pub fn fresh_tag(&mut self) -> InstTag {
        let t = InstTag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// The instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if any component of `r` is out of range.
    pub fn inst(&self, r: InstRef) -> &Inst {
        &self.func(r.func).block(r.block).insts[r.idx]
    }

    /// Total number of static instructions in the program.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// Build a map from tag to location, for profile-driven analyses.
    /// Later duplicates (same tag emitted twice, which the verifier
    /// rejects) would overwrite earlier ones.
    pub fn tag_index(&self) -> HashMap<InstTag, InstRef> {
        let mut m = HashMap::new();
        for (fid, f) in self.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    m.insert(inst.tag, InstRef { func: fid, block: bid, idx: i });
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    #[test]
    fn func_id_value_roundtrip() {
        for i in [0u32, 1, 77, u32::MAX] {
            let f = FuncId(i);
            assert_eq!(FuncId::from_value(f.as_value()), Some(f));
        }
        assert_eq!(FuncId::from_value(0x1000), None);
        assert_eq!(FuncId::from_value(0), None);
    }

    #[test]
    fn tag_index_finds_all() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).movi(Reg(1), 1).movi(Reg(2), 2).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let idx = prog.tag_index();
        assert_eq!(idx.len(), prog.inst_count());
        for (tag, r) in &idx {
            assert_eq!(prog.inst(*r).tag, *tag);
        }
    }

    #[test]
    fn fresh_tags_are_unique() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).halt();
        let main = f.finish();
        let mut prog = pb.finish_with(main);
        let a = prog.fresh_tag();
        let b = prog.fresh_tag();
        assert_ne!(a, b);
        assert!(!prog.tag_index().contains_key(&a));
    }
}
