//! The static call graph, including recursion detection.
//!
//! Context-sensitive slicing (§3.1) builds slices "up the chain of calls on
//! the call stack"; recursive cycles force the slice-summary fixed point
//! (§3.1.1). Indirect calls are unresolved statically — the paper
//! instruments them and feeds the dynamic call graph back to the slicer,
//! which [`CallGraph::add_dynamic_edge`] supports.

use crate::inst::Op;
use crate::program::{FuncId, InstRef, Program};
use std::collections::{HashMap, HashSet};

/// A call site: the instruction plus its callee (if known).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallSite {
    /// Where the call instruction lives.
    pub at: InstRef,
    /// The callee, `None` for unresolved indirect calls.
    pub callee: Option<FuncId>,
}

/// The program call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Out-edges: per function, its call sites.
    sites: HashMap<FuncId, Vec<CallSite>>,
    /// callee -> callers
    callers: HashMap<FuncId, HashSet<FuncId>>,
    /// callers -> callees (resolved only)
    callees: HashMap<FuncId, HashSet<FuncId>>,
}

impl CallGraph {
    /// Build the static call graph of `prog`. Indirect call sites are
    /// recorded with `callee: None`.
    pub fn new(prog: &Program) -> Self {
        let mut g = CallGraph::default();
        for (fid, func) in prog.iter_funcs() {
            let entry = g.sites.entry(fid).or_default();
            for (bid, block) in func.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let at = InstRef { func: fid, block: bid, idx: i };
                    match inst.op {
                        Op::Call { callee, .. } => {
                            entry.push(CallSite { at, callee: Some(callee) });
                        }
                        Op::CallInd { .. } => {
                            entry.push(CallSite { at, callee: None });
                        }
                        _ => {}
                    }
                }
            }
        }
        // Derive adjacency.
        let sites = g.sites.clone();
        for (f, ss) in &sites {
            for s in ss {
                if let Some(c) = s.callee {
                    g.callees.entry(*f).or_default().insert(c);
                    g.callers.entry(c).or_default().insert(*f);
                }
            }
        }
        g
    }

    /// Record a profiled target for an indirect call site, resolving it in
    /// the graph ("we instrument all the indirect procedural calls to
    /// capture the call graph during profiling").
    pub fn add_dynamic_edge(&mut self, site: InstRef, target: FuncId) {
        let sites = self.sites.entry(site.func).or_default();
        // Keep the unresolved site; add a resolved twin if not present.
        let resolved = CallSite { at: site, callee: Some(target) };
        if !sites.contains(&resolved) {
            sites.push(resolved);
        }
        self.callees.entry(site.func).or_default().insert(target);
        self.callers.entry(target).or_default().insert(site.func);
    }

    /// Call sites inside `f`.
    pub fn sites_in(&self, f: FuncId) -> &[CallSite] {
        self.sites.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Functions that call `f`.
    pub fn callers_of(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callers.get(&f).into_iter().flatten().copied()
    }

    /// Resolved callees of `f`.
    pub fn callees_of(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callees.get(&f).into_iter().flatten().copied()
    }

    /// Whether `f` participates in a call cycle (directly or mutually
    /// recursive), determined by reachability `f -> ... -> f`.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        let mut seen = HashSet::new();
        let mut work: Vec<FuncId> = self.callees_of(f).collect();
        while let Some(g) = work.pop() {
            if g == f {
                return true;
            }
            if seen.insert(g) {
                work.extend(self.callees_of(g));
            }
        }
        false
    }

    /// Call sites in `f` whose resolved callee is `callee`.
    pub fn sites_calling(&self, f: FuncId, callee: FuncId) -> Vec<CallSite> {
        self.sites_in(f).iter().filter(|s| s.callee == Some(callee)).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn recursive_prog() -> Program {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let even_id = pb.declare();
        let odd_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        m.at(e).call(even_id, 1).halt();
        let m = m.finish();
        let mut ev = pb.define(even_id, "even");
        let e = ev.entry_block();
        ev.at(e).call(odd_id, 1).ret();
        let ev = ev.finish();
        let mut od = pb.define(odd_id, "odd");
        let e = od.entry_block();
        od.at(e).call(even_id, 1).ret();
        let od = od.finish();
        pb.install(m);
        pb.install(ev);
        pb.install(od);
        pb.finish(main_id)
    }

    #[test]
    fn detects_mutual_recursion() {
        let prog = recursive_prog();
        let g = CallGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let even = prog.func_by_name("even").unwrap();
        let odd = prog.func_by_name("odd").unwrap();
        assert!(!g.is_recursive(main));
        assert!(g.is_recursive(even));
        assert!(g.is_recursive(odd));
    }

    #[test]
    fn callers_and_callees() {
        let prog = recursive_prog();
        let g = CallGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let even = prog.func_by_name("even").unwrap();
        let odd = prog.func_by_name("odd").unwrap();
        let callers: Vec<_> = g.callers_of(even).collect();
        assert!(callers.contains(&main));
        assert!(callers.contains(&odd));
        let callees: Vec<_> = g.callees_of(even).collect();
        assert_eq!(callees, vec![odd]);
    }

    #[test]
    fn indirect_call_resolution() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let target_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        m.at(e).movi(Reg(20), target_id.as_value() as i64).call_ind(Reg(20), 0).halt();
        let m = m.finish();
        let mut t = pb.define(target_id, "target");
        let e = t.entry_block();
        t.at(e).ret();
        let t = t.finish();
        pb.install(m);
        pb.install(t);
        let prog = pb.finish(main_id);
        let mut g = CallGraph::new(&prog);
        let main = prog.func_by_name("main").unwrap();
        let target = prog.func_by_name("target").unwrap();
        // Statically unresolved.
        assert_eq!(g.callees_of(main).count(), 0);
        let site = g.sites_in(main).iter().find(|s| s.callee.is_none()).unwrap().at;
        g.add_dynamic_edge(site, target);
        assert_eq!(g.callees_of(main).collect::<Vec<_>>(), vec![target]);
        assert_eq!(g.callers_of(target).collect::<Vec<_>>(), vec![main]);
    }
}
