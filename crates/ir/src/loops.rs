//! Natural-loop detection.
//!
//! Loops are the code regions the region-based slicer (§3.1.1) and the
//! chaining-SP scheduler (§3.2) care most about: a region is "a loop, a
//! loop body, or a procedure".

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::program::{BlockId, Function};

/// Index of a loop in a [`LoopForest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LoopId(pub u32);

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge, dominates all members).
    pub header: BlockId,
    /// All member blocks, header included.
    pub blocks: Vec<BlockId>,
    /// Blocks with a back edge to [`Loop::header`].
    pub latches: Vec<BlockId>,
    /// The immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Loops immediately nested inside this one.
    pub children: Vec<LoopId>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Member blocks that can exit the loop, paired with their targets.
    pub fn exit_edges(&self, cfg: &Cfg) -> Vec<(BlockId, BlockId)> {
        let mut v = Vec::new();
        for &b in &self.blocks {
            for &s in cfg.succs(b) {
                if !self.contains(s) {
                    v.push((b, s));
                }
            }
        }
        v
    }
}

/// All natural loops of one function, organized as a forest by nesting.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detect loops using back edges `latch -> header` where `header`
    /// dominates `latch`, merging loops sharing a header.
    pub fn new(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let n = func.blocks.len();
        // Find back edges and group latches by header.
        let mut latches_by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    latches_by_header[s.index()].push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for h in 0..n {
            if latches_by_header[h].is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Natural loop body: header plus all blocks that reach a latch
            // without going through the header.
            let mut in_loop = vec![false; n];
            in_loop[h] = true;
            let mut work: Vec<BlockId> = latches_by_header[h].clone();
            while let Some(b) = work.pop() {
                if in_loop[b.index()] {
                    continue;
                }
                in_loop[b.index()] = true;
                for &p in cfg.preds(b) {
                    if !in_loop[p.index()] && cfg.is_reachable(p) {
                        work.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> =
                (0..n).filter(|&i| in_loop[i]).map(|i| BlockId(i as u32)).collect();
            loops.push(Loop {
                header,
                blocks,
                latches: latches_by_header[h].clone(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }
        // Nesting: loop A is nested in B iff B contains A's header and
        // A != B and B's block set is a strict superset. Choose the
        // smallest enclosing loop as parent.
        let ids: Vec<LoopId> = (0..loops.len()).map(|i| LoopId(i as u32)).collect();
        for &a in &ids {
            let mut best: Option<LoopId> = None;
            for &b in &ids {
                if a == b {
                    continue;
                }
                let la = &loops[a.0 as usize];
                let lb = &loops[b.0 as usize];
                if lb.contains(la.header) && lb.blocks.len() > la.blocks.len() {
                    match best {
                        None => best = Some(b),
                        Some(cur) => {
                            if loops[b.0 as usize].blocks.len() < loops[cur.0 as usize].blocks.len()
                            {
                                best = Some(b);
                            }
                        }
                    }
                }
            }
            loops[a.0 as usize].parent = best;
        }
        for &a in &ids {
            if let Some(p) = loops[a.0 as usize].parent {
                loops[p.0 as usize].children.push(a);
            }
        }
        // Depths.
        for &a in &ids {
            let mut d = 1;
            let mut cur = loops[a.0 as usize].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.0 as usize].parent;
            }
            loops[a.0 as usize].depth = d;
        }
        // Innermost loop per block = containing loop of greatest depth.
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        for &a in &ids {
            for &b in &loops[a.0 as usize].blocks {
                let better = match innermost[b.index()] {
                    None => true,
                    Some(cur) => loops[a.0 as usize].depth > loops[cur.0 as usize].depth,
                };
                if better {
                    innermost[b.index()] = Some(a);
                }
            }
        }
        LoopForest { loops, innermost }
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0 as usize]
    }

    /// Iterate over all loops.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops.iter().enumerate().map(|(i, l)| (LoopId(i as u32), l))
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CmpKind;
    use crate::program::Program;
    use crate::reg::Reg;

    /// Nested loops:
    /// 0 -> 1; 1(outer hdr) -> 2; 2(inner hdr) -> 2,3; 3 -> 1,4; 4: halt
    fn nested() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        f.at(b0).movi(Reg(1), 0).br(b1);
        f.at(b1).movi(Reg(2), 0).br(b2);
        f.at(b2).add(Reg(2), Reg(2), 1).cmp(CmpKind::Lt, Reg(3), Reg(2), 4).br_cond(Reg(3), b2, b3);
        f.at(b3).add(Reg(1), Reg(1), 1).cmp(CmpKind::Lt, Reg(3), Reg(1), 4).br_cond(Reg(3), b1, b4);
        f.at(b4).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    fn forest(prog: &Program) -> (LoopForest, Cfg) {
        let func = prog.func(prog.entry);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        (LoopForest::new(func, &cfg, &dom), cfg)
    }

    #[test]
    fn finds_two_nested_loops() {
        let prog = nested();
        let (lf, _) = forest(&prog);
        assert_eq!(lf.len(), 2);
        let outer = lf.iter().find(|(_, l)| l.header == BlockId(1)).unwrap();
        let inner = lf.iter().find(|(_, l)| l.header == BlockId(2)).unwrap();
        assert_eq!(outer.1.depth, 1);
        assert_eq!(inner.1.depth, 2);
        assert_eq!(inner.1.parent, Some(outer.0));
        assert!(outer.1.children.contains(&inner.0));
        assert!(outer.1.contains(BlockId(2)));
        assert!(outer.1.contains(BlockId(3)));
        assert!(!inner.1.contains(BlockId(3)));
    }

    #[test]
    fn innermost_maps_blocks_correctly() {
        let prog = nested();
        let (lf, _) = forest(&prog);
        let inner_id = lf.iter().find(|(_, l)| l.header == BlockId(2)).unwrap().0;
        let outer_id = lf.iter().find(|(_, l)| l.header == BlockId(1)).unwrap().0;
        assert_eq!(lf.innermost(BlockId(2)), Some(inner_id));
        assert_eq!(lf.innermost(BlockId(3)), Some(outer_id));
        assert_eq!(lf.innermost(BlockId(0)), None);
        assert_eq!(lf.innermost(BlockId(4)), None);
    }

    #[test]
    fn exit_edges_found() {
        let prog = nested();
        let (lf, cfg) = forest(&prog);
        let outer = lf.iter().find(|(_, l)| l.header == BlockId(1)).unwrap().1;
        let exits = outer.exit_edges(&cfg);
        assert_eq!(exits, vec![(BlockId(3), BlockId(4))]);
    }

    #[test]
    fn no_loops_in_straightline_code() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).movi(Reg(1), 1).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let (lf, _) = forest(&prog);
        assert!(lf.is_empty());
    }
}
