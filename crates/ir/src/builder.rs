//! Assembler-style construction of programs.
//!
//! [`ProgramBuilder`] mints functions; [`FunctionBuilder`] mints blocks and
//! hands out [`BlockCursor`]s that append instructions with one chainable
//! method per opcode. Instruction tags are assigned globally by the program
//! builder so every static instruction in the finished program has a unique
//! [`InstTag`].

use crate::inst::{AluKind, CmpKind, FAluKind, Inst, InstTag, Op, Operand};
use crate::program::{Block, BlockId, FuncId, Function, Program};
use crate::reg::Reg;
use std::cell::Cell;
use std::rc::Rc;

/// Builds a [`Program`] out of functions.
///
/// # Example
///
/// ```
/// use ssp_ir::{ProgramBuilder, Reg};
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main");
/// let e = f.entry_block();
/// f.at(e).movi(Reg(1), 42).halt();
/// let main = f.finish();
/// let prog = pb.finish_with(main);
/// assert_eq!(prog.funcs.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    funcs: Vec<Function>,
    image: Vec<(u64, u64)>,
    next_tag: Rc<Cell<u32>>,
    next_func: u32,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Create an empty program builder.
    pub fn new() -> Self {
        ProgramBuilder {
            funcs: Vec::new(),
            image: Vec::new(),
            next_tag: Rc::new(Cell::new(0)),
            next_func: 0,
        }
    }

    /// Reserve a function id and start building its body.
    ///
    /// Functions must be finished (via [`FunctionBuilder::finish`]) in the
    /// order they were created; [`ProgramBuilder::finish`] checks this.
    pub fn function(&mut self, name: &str) -> FunctionBuilder {
        let id = FuncId(self.next_func);
        self.next_func += 1;
        FunctionBuilder {
            id,
            func: Function {
                name: name.to_owned(),
                blocks: vec![Block::default()],
                entry: BlockId(0),
            },
            next_tag: Rc::clone(&self.next_tag),
        }
    }

    /// Reserve a function id without building it yet, so mutually
    /// recursive functions can call each other by id.
    pub fn declare(&mut self) -> FuncId {
        let id = FuncId(self.next_func);
        self.next_func += 1;
        id
    }

    /// Start building the body of a previously [`ProgramBuilder::declare`]d
    /// function.
    pub fn define(&mut self, id: FuncId, name: &str) -> FunctionBuilder {
        FunctionBuilder {
            id,
            func: Function {
                name: name.to_owned(),
                blocks: vec![Block::default()],
                entry: BlockId(0),
            },
            next_tag: Rc::clone(&self.next_tag),
        }
    }

    /// Register a finished function body under its reserved id.
    ///
    /// # Panics
    ///
    /// Panics if a body was already added for this id or if bodies are
    /// added out of id order (use [`ProgramBuilder::declare`] +
    /// late `add` for forward references; ids must still arrive in order).
    pub fn add(&mut self, id: FuncId, func: Function) {
        assert_eq!(
            id.0 as usize,
            self.funcs.len(),
            "function bodies must be added in id order; got {id} with {} bodies present",
            self.funcs.len()
        );
        self.funcs.push(func);
    }

    /// Add one initialized 64-bit word to the data image.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn data_word(&mut self, addr: u64, value: u64) -> &mut Self {
        assert_eq!(addr % 8, 0, "data word at unaligned address {addr:#x}");
        self.image.push((addr, value));
        self
    }

    /// Add consecutive initialized words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn data_words(&mut self, addr: u64, values: &[u64]) -> &mut Self {
        assert_eq!(addr % 8, 0, "data block at unaligned address {addr:#x}");
        for (i, &v) in values.iter().enumerate() {
            self.image.push((addr + 8 * i as u64, v));
        }
        self
    }

    /// Finish the program with the given entry function, consuming any
    /// function bodies registered so far.
    ///
    /// The `main` argument is accepted by value purely for call-site
    /// readability (`pb.finish(main_fn_result)`); it must equal an id whose
    /// body was added.
    ///
    /// # Panics
    ///
    /// Panics if some declared function has no body, or `entry` is out of
    /// range.
    pub fn finish(self, entry: FuncId) -> Program {
        assert_eq!(
            self.funcs.len(),
            self.next_func as usize,
            "{} function(s) declared but only {} bodies added",
            self.next_func,
            self.funcs.len()
        );
        assert!((entry.0 as usize) < self.funcs.len(), "entry {entry} out of range");
        Program { funcs: self.funcs, entry, image: self.image, next_tag: self.next_tag.get() }
    }
}

/// Builds one [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    id: FuncId,
    func: Function,
    next_tag: Rc<Cell<u32>>,
}

impl FunctionBuilder {
    /// This function's id (usable for recursive calls while building).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The entry block, created automatically.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry
    }

    /// Create a new empty block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::default());
        id
    }

    /// A cursor appending instructions to `block`.
    pub fn at(&mut self, block: BlockId) -> BlockCursor<'_> {
        BlockCursor { fb: self, block }
    }

    /// Finish the function body. The returned id is what the matching
    /// [`ProgramBuilder::add`]/[`ProgramBuilder::finish`] call expects.
    ///
    /// This does not consume the program builder; call
    /// [`ProgramBuilder::add`] unless you use the common one-function
    /// shorthand where `finish` feeds directly into
    /// [`ProgramBuilder::finish`].
    pub fn finish_into(self, pb: &mut ProgramBuilder) -> FuncId {
        let id = self.id;
        pb.add(id, self.func);
        id
    }

    /// Shorthand used by single-function programs and tests: detach the
    /// built function and return its id after registering it in the
    /// builder it came from is no longer possible. Prefer
    /// [`FunctionBuilder::finish_into`]; this variant exists so the common
    /// `let main = f.finish(); pb.finish(main)` pattern reads naturally.
    pub fn finish(self) -> FinishedFunction {
        FinishedFunction { id: self.id, func: self.func }
    }
}

/// A built function body awaiting registration.
#[derive(Debug)]
pub struct FinishedFunction {
    id: FuncId,
    func: Function,
}

impl ProgramBuilder {
    /// Register a [`FinishedFunction`] and return its id.
    pub fn install(&mut self, f: FinishedFunction) -> FuncId {
        let id = f.id;
        self.add(id, f.func);
        id
    }
}

impl ProgramBuilder {
    /// One-function convenience: install `f` and finish with it as entry.
    pub fn finish_with(mut self, f: FinishedFunction) -> Program {
        let id = self.install(f);
        self.finish(id)
    }
}

impl std::ops::Deref for FinishedFunction {
    type Target = FuncId;
    fn deref(&self) -> &FuncId {
        &self.id
    }
}

/// Appends instructions to one block; every method returns `self` for
/// chaining.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    fb: &'a mut FunctionBuilder,
    block: BlockId,
}

impl BlockCursor<'_> {
    fn push(self, op: Op) -> Self {
        let tag = InstTag(self.fb.next_tag.get());
        self.fb.next_tag.set(tag.0 + 1);
        self.fb.func.blocks[self.block.index()].insts.push(Inst::new(tag, op));
        self
    }

    /// The tag that the *next* pushed instruction will receive. Workload
    /// builders use this to note which static load they expect to be
    /// delinquent.
    pub fn next_tag(&self) -> InstTag {
        InstTag(self.fb.next_tag.get())
    }

    /// Append `dst = imm`.
    pub fn movi(self, dst: Reg, imm: i64) -> Self {
        self.push(Op::Movi { dst, imm })
    }

    /// Append `dst = src`.
    pub fn mov(self, dst: Reg, src: Reg) -> Self {
        self.push(Op::Mov { dst, src })
    }

    /// Append an ALU operation.
    pub fn alu(self, kind: AluKind, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.push(Op::Alu { kind, dst, a, b: b.into() })
    }

    /// Append `dst = a + b`.
    pub fn add(self, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.alu(AluKind::Add, dst, a, b)
    }

    /// Append `dst = a - b`.
    pub fn sub(self, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.alu(AluKind::Sub, dst, a, b)
    }

    /// Append `dst = a * b`.
    pub fn mul(self, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.alu(AluKind::Mul, dst, a, b)
    }

    /// Append `dst = a << b`.
    pub fn shl(self, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.alu(AluKind::Shl, dst, a, b)
    }

    /// Append a comparison.
    pub fn cmp(self, kind: CmpKind, dst: Reg, a: Reg, b: impl Into<Operand>) -> Self {
        self.push(Op::Cmp { kind, dst, a, b: b.into() })
    }

    /// Append an FP operation over `f64` bit patterns.
    pub fn falu(self, kind: FAluKind, dst: Reg, a: Reg, b: Reg) -> Self {
        self.push(Op::FAlu { kind, dst, a, b })
    }

    /// Append `dst = mem[base + off]`.
    pub fn ld(self, dst: Reg, base: Reg, off: i64) -> Self {
        self.push(Op::Ld { dst, base, off })
    }

    /// Append `mem[base + off] = src`.
    pub fn st(self, src: Reg, base: Reg, off: i64) -> Self {
        self.push(Op::St { src, base, off })
    }

    /// Append a prefetch of `base + off`.
    pub fn lfetch(self, base: Reg, off: i64) -> Self {
        self.push(Op::Lfetch { base, off })
    }

    /// Append an unconditional branch, ending the block.
    pub fn br(self, target: BlockId) -> Self {
        self.push(Op::Br { target })
    }

    /// Append a conditional branch, ending the block.
    pub fn br_cond(self, pred: Reg, if_true: BlockId, if_false: BlockId) -> Self {
        self.push(Op::BrCond { pred, if_true, if_false })
    }

    /// Append a direct call with `nargs` register arguments.
    pub fn call(self, callee: FuncId, nargs: u16) -> Self {
        self.push(Op::Call { callee, nargs })
    }

    /// Append an indirect call through `target`.
    pub fn call_ind(self, target: Reg, nargs: u16) -> Self {
        self.push(Op::CallInd { target, nargs })
    }

    /// Append a return, ending the block.
    pub fn ret(self) -> Self {
        self.push(Op::Ret)
    }

    /// Append a `chk.c` trigger pointing at `stub`.
    pub fn chk_c(self, stub: BlockId) -> Self {
        self.push(Op::ChkC { stub })
    }

    /// Append a speculative-thread spawn.
    pub fn spawn(self, entry: BlockId, slot: Reg) -> Self {
        self.push(Op::Spawn { entry, slot })
    }

    /// Append a live-in buffer slot allocation.
    pub fn lib_alloc(self, dst: Reg) -> Self {
        self.push(Op::LibAlloc { dst })
    }

    /// Append a live-in buffer store.
    pub fn lib_st(self, slot: Reg, idx: u8, src: Reg) -> Self {
        self.push(Op::LibSt { slot, idx, src })
    }

    /// Append a live-in buffer load.
    pub fn lib_ld(self, dst: Reg, slot: Reg, idx: u8) -> Self {
        self.push(Op::LibLd { dst, slot, idx })
    }

    /// Append a live-in buffer slot release.
    pub fn lib_free(self, slot: Reg) -> Self {
        self.push(Op::LibFree { slot })
    }

    /// Append a speculative-thread self-kill, ending the block.
    pub fn kill_thread(self) -> Self {
        self.push(Op::KillThread)
    }

    /// Append the region-of-interest start marker.
    pub fn roi_begin(self) -> Self {
        self.push(Op::RoiBegin)
    }

    /// Append the region-of-interest end marker.
    pub fn roi_end(self) -> Self {
        self.push(Op::RoiEnd)
    }

    /// Append program termination, ending the block.
    pub fn halt(self) -> Self {
        self.push(Op::Halt)
    }

    /// Append a `nop` — the padding the post-pass tool later replaces with
    /// `chk.c` triggers.
    pub fn nop(self) -> Self {
        self.push(Op::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn tags_are_globally_unique_across_functions() {
        let mut pb = ProgramBuilder::new();
        let mut f1 = pb.function("a");
        let e1 = f1.entry_block();
        f1.at(e1).movi(Reg(1), 1).halt();
        let a = f1.finish();
        let mut f2 = pb.function("b");
        let e2 = f2.entry_block();
        f2.at(e2).movi(Reg(1), 1).halt();
        let b = f2.finish();
        let a = pb.install(a);
        pb.install(b);
        let prog = pb.finish(a);
        let idx = prog.tag_index();
        assert_eq!(idx.len(), 4, "all four instructions have distinct tags");
        assert_eq!(prog.next_tag, 4);
    }

    #[test]
    fn declared_functions_allow_recursion() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let helper_id = pb.declare();
        let mut main = pb.define(main_id, "main");
        let e = main.entry_block();
        main.at(e).call(helper_id, 0).halt();
        let main = main.finish();
        let mut h = pb.define(helper_id, "helper");
        let e = h.entry_block();
        h.at(e).call(helper_id, 0).ret();
        let h = h.finish();
        pb.install(main);
        pb.install(h);
        let prog = pb.finish(main_id);
        assert_eq!(prog.funcs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "bodies added")]
    fn missing_body_panics() {
        let mut pb = ProgramBuilder::new();
        let _never_defined = pb.declare();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).halt();
        let _main = f.finish();
        // `main` has id 1 but body for id 0 was never added.
        let _ = pb.finish(FuncId(1));
    }

    #[test]
    fn data_words_layout() {
        let mut pb = ProgramBuilder::new();
        pb.data_words(0x100, &[7, 8, 9]);
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        assert_eq!(prog.image, vec![(0x100, 7), (0x108, 8), (0x110, 9)]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_data_panics() {
        let mut pb = ProgramBuilder::new();
        pb.data_word(0x101, 1);
    }
}
