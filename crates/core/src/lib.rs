//! # Post-pass binary adaptation for software-based speculative precomputation
//!
//! A reproduction of Liao, Wang, Wang, Hoflehner, Lavery & Shen,
//! *"Post-Pass Binary Adaptation for Software-Based Speculative
//! Precomputation"* (PLDI 2002).
//!
//! The entry point is [`PostPassTool`]: given a program (standing in for
//! an Itanium binary — see [`ssp_ir`]) it
//!
//! 1. profiles the program on the modeled memory hierarchy
//!    ([`ssp_sim::profile()`]) to find the *delinquent loads* that cause at
//!    least 90% of cache-miss cycles,
//! 2. extracts *p-slices* for their addresses with context-sensitive,
//!    region-based, speculative slicing ([`ssp_slicing`]),
//! 3. schedules each slice for basic or chaining speculative
//!    precomputation ([`ssp_sched`]),
//! 4. places `chk.c` triggers ([`ssp_trigger`]), and
//! 5. emits the SSP-enhanced binary with stub and slice attachments
//!    ([`ssp_codegen`]).
//!
//! The result runs on the bundled SMT research-Itanium simulator
//! ([`ssp_sim`]) where speculative threads prefetch on otherwise idle
//! hardware contexts.
//!
//! # Quickstart
//!
//! ```
//! use ssp_core::{PostPassTool, MachineConfig};
//! use ssp_ir::{ProgramBuilder, Reg, CmpKind, Operand};
//!
//! // A pointer-chasing loop over scattered nodes (the data image plays
//! // the role of a binary's initialized .data section).
//! let mut pb = ProgramBuilder::new();
//! for i in 0..200u64 {
//!     let perm = (i * 7919) % 200;
//!     pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
//! }
//! let mut f = pb.function("main");
//! let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
//! let (p_, k, u, v, c) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68));
//! f.at(e).movi(p_, 0x0100_0000).movi(k, 0x0100_0000 + 64 * 200).br(body);
//! f.at(body)
//!     .ld(u, p_, 0)
//!     .ld(v, u, 0)
//!     .add(p_, p_, 64)
//!     .cmp(CmpKind::Lt, c, p_, Operand::Reg(k))
//!     .br_cond(c, body, exit);
//! f.at(exit).halt();
//! let main = f.finish();
//! let prog = pb.finish_with(main);
//!
//! let tool = PostPassTool::new(MachineConfig::in_order());
//! let adapted = tool.run(&prog).expect("adaptation succeeds");
//! assert!(adapted.report.slice_count() >= 1);
//!
//! // The SSP-enhanced binary is faster on the in-order machine.
//! let base = ssp_sim::simulate(&prog, &MachineConfig::in_order());
//! let ssp = ssp_sim::simulate(&adapted.program, &MachineConfig::in_order());
//! assert!(ssp.cycles < base.cycles);
//! ```
//!
//! # Observability
//!
//! [`PostPassTool::run_traced`] additionally returns a
//! [`ToolTrace`] with per-phase wall times and counters, and
//! [`prefetch_targets`] plus [`ssp_sim::simulate_traced`] classify every
//! speculative prefetch by timeliness. See `ARCHITECTURE.md` at the
//! repository root for how the trace layer hooks each pipeline stage.

#![warn(missing_docs)]

pub use ssp_codegen::{
    lint_views, AdaptError, AdaptOptions, AdaptReport, EmitOptions, SelectOptions, SkipReason,
};
pub use ssp_ir::{Program, ProgramBuilder};
pub use ssp_lint::{Diagnostic, LintReport};
pub use ssp_sched::{ScheduleOptions, SpModel};
pub use ssp_sim::{
    profile, simulate, simulate_stepped, simulate_traced, speedup, CycleBreakdown, LoadStats,
    MachineConfig, MemoryMode, PipelineKind, Profile, SimResult, SimTrace, Timeliness,
    TimelinessCounts,
};
pub use ssp_slicing::SliceOptions;
pub use ssp_trace::{PhaseSpan, Stopwatch, ToolTrace, TOOL_PHASES};

/// Per-benchmark slice characteristics — one row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct SliceCharacteristics {
    /// Benchmark/program name.
    pub name: String,
    /// Number of p-slices emitted.
    pub slices: usize,
    /// How many are interprocedural.
    pub interprocedural: usize,
    /// Average slice size in instructions.
    pub average_size: f64,
    /// Average number of live-in values.
    pub average_live_ins: f64,
}

/// The output of the post-pass tool.
#[derive(Clone, Debug)]
pub struct AdaptedBinary {
    /// The SSP-enhanced program.
    pub program: Program,
    /// What the tool did.
    pub report: AdaptReport,
    /// The profile it worked from.
    pub profile: Profile,
}

impl AdaptedBinary {
    /// Summarize as a Table-2 row.
    pub fn characteristics(&self, name: &str) -> SliceCharacteristics {
        SliceCharacteristics {
            name: name.to_owned(),
            slices: self.report.slice_count(),
            interprocedural: self.report.interprocedural_count(),
            average_size: self.report.average_size(),
            average_live_ins: self.report.average_live_ins(),
        }
    }
}

/// The post-pass compilation tool (Figure 1): profile feedback in,
/// SSP-enhanced binary out.
#[derive(Clone, Debug)]
pub struct PostPassTool {
    machine: MachineConfig,
    options: AdaptOptions,
}

impl PostPassTool {
    /// A tool targeting the given machine model with default options.
    pub fn new(machine: MachineConfig) -> Self {
        PostPassTool { machine, options: AdaptOptions::default() }
    }

    /// Override the adaptation options.
    pub fn with_options(mut self, options: AdaptOptions) -> Self {
        self.options = options;
        self
    }

    /// The machine model the tool targets.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The adaptation options in use.
    pub fn options(&self) -> &AdaptOptions {
        &self.options
    }

    /// Profile `prog` and adapt it (the full two-pass flow of Figure 1).
    ///
    /// The whole pipeline is panic-free: per-load failures degrade into
    /// [`AdaptReport::skipped`] entries, and an output that fails
    /// re-verification is reported as [`AdaptError`].
    pub fn run(&self, prog: &Program) -> Result<AdaptedBinary, AdaptError> {
        let profile = ssp_sim::profile(prog, &self.machine);
        self.run_with_profile(prog, profile)
    }

    /// Adapt `prog` using an existing profile (e.g. shared across
    /// machine models, as the paper does between in-order and OOO runs).
    pub fn run_with_profile(
        &self,
        prog: &Program,
        profile: Profile,
    ) -> Result<AdaptedBinary, AdaptError> {
        let (program, report) = ssp_codegen::adapt(prog, &profile, &self.machine, &self.options)?;
        Ok(AdaptedBinary { program, report, profile })
    }

    /// [`PostPassTool::run`] with tool-phase tracing: the returned
    /// [`ToolTrace`] holds one span per phase (`profile`, `slicing`,
    /// `sched`, `trigger`, `codegen`) with accumulated wall time and
    /// counters.
    pub fn run_traced(&self, prog: &Program) -> Result<(AdaptedBinary, ToolTrace), AdaptError> {
        let mut trace = ToolTrace::standard();
        let sw = Stopwatch::start();
        let profile = ssp_sim::profile(prog, &self.machine);
        trace.add_wall("profile", sw.elapsed_nanos());
        trace.add("profile", "profiled_loads", profile.loads.len() as u64);
        let adapted = self.run_with_profile_traced(prog, profile, &mut trace)?;
        Ok((adapted, trace))
    }

    /// [`PostPassTool::run_with_profile`] with tool-phase tracing
    /// accumulated into an existing [`ToolTrace`] (so callers timing the
    /// profile phase themselves, like [`PostPassTool::run_traced`], can
    /// pass theirs in).
    pub fn run_with_profile_traced(
        &self,
        prog: &Program,
        profile: Profile,
        trace: &mut ToolTrace,
    ) -> Result<AdaptedBinary, AdaptError> {
        let (program, report) =
            ssp_codegen::adapt_traced(prog, &profile, &self.machine, &self.options, Some(trace))?;
        Ok(AdaptedBinary { program, report, profile })
    }
}

/// Re-run the static SSP linter over an already-adapted binary.
///
/// [`PostPassTool::run`] already gates its output on a clean lint (a
/// diagnostic surfaces as [`AdaptError::Lint`]); this helper is for
/// harnesses that want the report itself — the `ssp-bench` `lint`
/// binary and the fuzz oracle's static/dynamic cross-check.
pub fn lint_binary(original: &Program, adapted: &AdaptedBinary) -> LintReport {
    ssp_lint::lint(
        original,
        &adapted.program,
        &adapted.profile,
        &ssp_codegen::lint_views(&adapted.report),
    )
}

/// Map every prefetching instruction of the adapted binary — the loads
/// and `lfetch`es inside each emitted slice (including its stub) — to
/// the first delinquent load its slice targets.
///
/// The result feeds [`simulate_traced`], which uses it to attribute
/// never-consumed ("useless") prefetches to the right static load in
/// the per-load timeliness histograms.
pub fn prefetch_targets(adapted: &AdaptedBinary) -> Vec<(ssp_ir::InstTag, ssp_ir::InstTag)> {
    let mut out = Vec::new();
    for s in &adapted.report.slices {
        let Some(&root) = s.root_tags.first() else { continue };
        let f = adapted.program.func(s.trigger.func);
        // Emitted blocks are contiguous: slice entry first, stub last.
        for b in s.slice_entry.0..=s.stub.0 {
            for inst in &f.block(ssp_ir::BlockId(b)).insts {
                if matches!(inst.op, ssp_ir::Op::Ld { .. } | ssp_ir::Op::Lfetch { .. }) {
                    out.push((inst.tag, root));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, Operand, Reg};

    fn chase(n: u64) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..n {
            let perm = (i * 7919) % n;
            pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
            pb.data_word(0x0800_0000 + 64 * perm, perm);
        }
        let mut f = pb.function("main");
        let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
        let (p_, k, u, v, c) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68));
        f.at(e).movi(p_, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64).br(body);
        f.at(body)
            .ld(u, p_, 0)
            .ld(v, u, 0)
            .add(p_, p_, 64)
            .cmp(CmpKind::Lt, c, p_, Operand::Reg(k))
            .br_cond(c, body, exit);
        f.at(exit).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn end_to_end_tool_flow() {
        let prog = chase(300);
        let tool = PostPassTool::new(MachineConfig::in_order());
        let adapted = tool.run(&prog).unwrap();
        assert!(adapted.report.slice_count() >= 1);
        let ch = adapted.characteristics("chase");
        assert_eq!(ch.slices, adapted.report.slice_count());
        assert!(ch.average_size > 0.0);
        let base = simulate(&prog, tool.machine());
        let ssp = simulate(&adapted.program, tool.machine());
        assert!(ssp.cycles < base.cycles, "base={} ssp={}", base.cycles, ssp.cycles);
    }

    #[test]
    fn profile_reuse_between_models() {
        let prog = chase(200);
        let io = PostPassTool::new(MachineConfig::in_order());
        let adapted_io = io.run(&prog).unwrap();
        // Same profile, different machine — the paper evaluates the same
        // binaries on both models.
        let ooo = PostPassTool::new(MachineConfig::out_of_order());
        let adapted_ooo = ooo.run_with_profile(&prog, adapted_io.profile.clone()).unwrap();
        assert_eq!(
            adapted_io.report.slice_count(),
            adapted_ooo.report.slice_count(),
            "identical profile gives identical slices"
        );
    }

    #[test]
    fn traced_run_reports_phases_and_timeliness() {
        let prog = chase(300);
        let tool = PostPassTool::new(MachineConfig::in_order());
        let (adapted, trace) = tool.run_traced(&prog).unwrap();
        assert!(adapted.report.slice_count() >= 1);
        // Every standard phase is present, in order, and the ones the
        // pipeline exercised carry counters.
        let names: Vec<&str> = trace.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, TOOL_PHASES.to_vec());
        assert!(trace.phase("profile").unwrap().counter("delinquent_loads") >= 1);
        assert!(trace.phase("slicing").unwrap().counter("slice_insts") >= 1);
        assert!(trace.phase("sched").unwrap().counter("schedules") >= 2);
        assert_eq!(
            trace.phase("trigger").unwrap().counter("triggers_placed"),
            adapted.report.slice_count() as u64
        );
        assert!(trace.phase("codegen").unwrap().counter("insts_added") >= 1);

        // Traced simulation classifies every accepted prefetch, and the
        // adapted pointer chase prefetches usefully.
        let targets = prefetch_targets(&adapted);
        assert!(!targets.is_empty(), "slices contain prefetching instructions");
        let (result, sim) = simulate_traced(&adapted.program, tool.machine(), &targets);
        assert!(result.halted);
        assert!(sim.slices_spawned > 0);
        assert!(sim.prefetches_issued > 0);
        assert_eq!(sim.totals().total(), sim.prefetches_issued, "every prefetch classified");
        let t = sim.totals();
        assert!(t.timely + t.late > 0, "some prefetches reach their consumer: {t:?}");

        // Tracing never changes timing.
        let plain = simulate(&adapted.program, tool.machine());
        assert_eq!(plain, result);
    }

    #[test]
    fn options_are_respected() {
        let prog = chase(200);
        let mut opts = AdaptOptions::default();
        opts.select.force_model = Some(SpModel::Basic);
        let tool = PostPassTool::new(MachineConfig::in_order()).with_options(opts);
        let adapted = tool.run(&prog).unwrap();
        assert!(adapted.report.slices.iter().all(|s| s.model == SpModel::Basic));
    }
}
