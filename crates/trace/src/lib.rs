//! Structured tracing for the SSP pipeline.
//!
//! The post-pass tool and the simulator both expose only end-of-run
//! aggregates by default. This crate provides the *observability layer*
//! threaded through the whole workspace:
//!
//! * **Tool phase spans** ([`ToolTrace`], [`PhaseSpan`]): per-phase wall
//!   time plus named counters for the five tool phases (`profile`,
//!   `slicing`, `sched`, `trigger`, `codegen`) — slice sizes, SCC
//!   counts, triggers placed, live-ins per trigger.
//! * **Simulator events** ([`SimEvent`], [`TraceSink`]): trigger fired,
//!   slice spawned/killed, live-in copy, prefetch issued/dropped, and
//!   the per-prefetch *timeliness* classification ([`Timeliness`]) of
//!   every SSP prefetch relative to the consuming delinquent load.
//! * **Deterministic accumulation** ([`SimTrace`], [`TimelinessCounts`]):
//!   plain-data results that merge by value, so parallel experiment
//!   runs collected by input index are byte-identical to serial runs.
//!
//! Tracing is strictly opt-in and zero-cost when disabled: the
//! instrumented call sites in `ssp-sim` and `ssp-codegen` take an
//! `Option` sink and do nothing (no allocation, no time query) when it
//! is `None`. The simulator's built-in collector additionally
//! pre-allocates every structure it needs (dense per-tag histograms and
//! a fixed-capacity prefetch table, extending the decoded-side-table
//! pattern), so even *enabled* tracing allocates nothing inside the
//! cycle loop.
//!
//! # Example
//!
//! ```
//! use ssp_trace::{SimEvent, SimTrace, Timeliness, TraceSink};
//!
//! let mut trace = SimTrace::default();
//! trace.event(SimEvent::TriggerFired);
//! trace.event(SimEvent::SliceSpawned);
//! trace.event(SimEvent::PrefetchIssued);
//! trace.event(SimEvent::PrefetchClassified { load: 7, class: Timeliness::Timely });
//! assert_eq!(trace.triggers_fired, 1);
//! assert_eq!(trace.histogram(7).timely, 1);
//! ```

#![warn(missing_docs)]

/// How an SSP prefetch relates, in time, to the demand load that
/// consumes the prefetched cache line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Timeliness {
    /// The prefetch completed so far ahead that the line left L1 (or
    /// was only ever useful at an outer level) before the consuming
    /// load arrived: the load still missed L1.
    Early,
    /// The prefetched line was resident and valid in L1 when the
    /// consuming load arrived: the full miss latency was hidden.
    Timely,
    /// The line was still in transit when the consuming load arrived
    /// (a *partial* hit): some, but not all, of the latency was hidden.
    Late,
    /// The prefetch did no work: the line was already present or in
    /// flight when it issued, it was displaced before anyone used it,
    /// or no demand load ever touched the line.
    Useless,
}

/// Early/timely/late/useless counts for one static load (or one
/// aggregate), mergeable by field-wise addition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TimelinessCounts {
    /// Prefetches that completed but whose line left L1 before use.
    pub early: u64,
    /// Prefetches whose line was valid in L1 at the consuming load.
    pub timely: u64,
    /// Prefetches whose line was still in transit at the consuming load.
    pub late: u64,
    /// Prefetches that were redundant or never consumed.
    pub useless: u64,
}

impl TimelinessCounts {
    /// Record one classified prefetch.
    pub fn record(&mut self, class: Timeliness) {
        match class {
            Timeliness::Early => self.early += 1,
            Timeliness::Timely => self.timely += 1,
            Timeliness::Late => self.late += 1,
            Timeliness::Useless => self.useless += 1,
        }
    }

    /// Total classified prefetches.
    pub fn total(&self) -> u64 {
        self.early + self.timely + self.late + self.useless
    }

    /// Field-wise accumulation of another histogram.
    pub fn merge(&mut self, other: &TimelinessCounts) {
        self.early += other.early;
        self.timely += other.timely;
        self.late += other.late;
        self.useless += other.useless;
    }
}

/// One structured simulator event.
///
/// Loads are identified by their instruction tag's raw value so the
/// event type stays independent of the IR crate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// A `chk.c` found free resources and redirected to its stub.
    TriggerFired,
    /// A `chk.c` found no free context/slot and behaved as a nop.
    TriggerSuppressed,
    /// A `spawn` bound a free hardware context to a slice.
    SliceSpawned,
    /// A speculative thread ended (voluntarily or killed).
    SliceKilled,
    /// One live-in word moved through the live-in buffer.
    LiveInCopy,
    /// A speculative thread issued a prefetching access.
    PrefetchIssued,
    /// A speculative `lfetch` was dropped (fill buffer full).
    PrefetchDropped,
    /// A prefetch received its final timeliness classification,
    /// attributed to the static load with tag value `load`.
    PrefetchClassified {
        /// Raw tag value of the load the classification is attributed
        /// to (the consumer for early/timely/late, the targeted
        /// delinquent load for useless).
        load: u32,
        /// The classification.
        class: Timeliness,
    },
}

/// A sink for structured simulator events.
///
/// [`SimTrace`] is the canonical accumulating sink; tests may implement
/// their own (e.g. an event log). The simulator's built-in collector
/// classifies prefetches internally with pre-allocated dense tables and
/// reports the same totals a [`SimTrace`] fed event-by-event would hold.
pub trait TraceSink {
    /// Consume one event.
    fn event(&mut self, ev: SimEvent);
}

/// Deterministic per-run simulator trace: event totals plus per-load
/// prefetch-timeliness histograms.
///
/// `PartialEq` compares every field, so determinism tests can assert
/// two runs produced identical traces.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimTrace {
    /// `chk.c` executions that fired (redirected to the stub).
    pub triggers_fired: u64,
    /// `chk.c` executions that found no free resources.
    pub triggers_suppressed: u64,
    /// Speculative threads started.
    pub slices_spawned: u64,
    /// Speculative threads ended (voluntary kill, runaway, or fault).
    pub slices_killed: u64,
    /// Live-in-buffer words copied (stub stores plus slice loads).
    pub live_in_copies: u64,
    /// Prefetching accesses issued by speculative threads.
    pub prefetches_issued: u64,
    /// Speculative `lfetch`es dropped because the fill buffer was full.
    pub prefetches_dropped: u64,
    /// Prefetches whose fill completed before consumption (or run end).
    pub prefetches_completed: u64,
    /// Prefetch-table entries displaced before classification (the
    /// displaced prefetch is counted useless); nonzero values mean the
    /// fixed-capacity tracking table overflowed.
    pub prefetch_table_evictions: u64,
    /// Per-load timeliness histograms, keyed by raw tag value, sorted
    /// ascending, only loads with at least one classified prefetch.
    pub per_load: Vec<(u32, TimelinessCounts)>,
}

impl SimTrace {
    /// The histogram for raw tag value `load` (zeroes if absent).
    pub fn histogram(&self, load: u32) -> TimelinessCounts {
        match self.per_load.binary_search_by_key(&load, |e| e.0) {
            Ok(i) => self.per_load[i].1,
            Err(_) => TimelinessCounts::default(),
        }
    }

    /// Record a classification for `load`, keeping `per_load` sorted.
    ///
    /// This general-purpose path may allocate; the simulator's built-in
    /// collector uses dense pre-sized tables instead and only builds the
    /// sparse vector once, after the run.
    pub fn record_classified(&mut self, load: u32, class: Timeliness) {
        let i = match self.per_load.binary_search_by_key(&load, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                self.per_load.insert(i, (load, TimelinessCounts::default()));
                i
            }
        };
        self.per_load[i].1.record(class);
    }

    /// Sum of all per-load histograms.
    pub fn totals(&self) -> TimelinessCounts {
        let mut t = TimelinessCounts::default();
        for (_, h) in &self.per_load {
            t.merge(h);
        }
        t
    }

    /// Field-wise accumulation of another trace (histograms merge by
    /// tag). Used to aggregate a whole suite deterministically.
    pub fn merge(&mut self, other: &SimTrace) {
        self.triggers_fired += other.triggers_fired;
        self.triggers_suppressed += other.triggers_suppressed;
        self.slices_spawned += other.slices_spawned;
        self.slices_killed += other.slices_killed;
        self.live_in_copies += other.live_in_copies;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_dropped += other.prefetches_dropped;
        self.prefetches_completed += other.prefetches_completed;
        self.prefetch_table_evictions += other.prefetch_table_evictions;
        for &(load, h) in &other.per_load {
            let i = match self.per_load.binary_search_by_key(&load, |e| e.0) {
                Ok(i) => i,
                Err(i) => {
                    self.per_load.insert(i, (load, TimelinessCounts::default()));
                    i
                }
            };
            self.per_load[i].1.merge(&h);
        }
    }
}

impl TraceSink for SimTrace {
    fn event(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::TriggerFired => self.triggers_fired += 1,
            SimEvent::TriggerSuppressed => self.triggers_suppressed += 1,
            SimEvent::SliceSpawned => self.slices_spawned += 1,
            SimEvent::SliceKilled => self.slices_killed += 1,
            SimEvent::LiveInCopy => self.live_in_copies += 1,
            SimEvent::PrefetchIssued => self.prefetches_issued += 1,
            SimEvent::PrefetchDropped => self.prefetches_dropped += 1,
            SimEvent::PrefetchClassified { load, class } => self.record_classified(load, class),
        }
    }
}

/// The five tool phases, in pipeline order. [`ToolTrace::standard`]
/// pre-seeds spans in this order so traced reports always have the same
/// shape, slices or not.
pub const TOOL_PHASES: [&str; 5] = ["profile", "slicing", "sched", "trigger", "codegen"];

/// One tool phase's span: accumulated wall time plus named counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhaseSpan {
    /// Phase name (one of [`TOOL_PHASES`] for the standard pipeline).
    pub name: &'static str,
    /// Accumulated wall time across every visit to the phase.
    pub wall_nanos: u64,
    /// Named counters in first-touch order (additive across visits).
    pub counters: Vec<(&'static str, u64)>,
}

impl PhaseSpan {
    /// An empty span named `name`.
    pub fn new(name: &'static str) -> Self {
        PhaseSpan { name, wall_nanos: 0, counters: Vec::new() }
    }

    /// Add `v` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += v,
            None => self.counters.push((name, v)),
        }
    }

    /// The value of counter `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, c)| *c)
    }
}

/// Per-adaptation tool trace: one [`PhaseSpan`] per phase.
///
/// Counters are deterministic (pure functions of the input program and
/// options); `wall_nanos` is wall-clock and varies run to run, which is
/// why machine-readable reports omit it unless explicitly asked
/// (see `trace_report`'s schema notes).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ToolTrace {
    /// Phase spans in first-touch order.
    pub phases: Vec<PhaseSpan>,
}

impl ToolTrace {
    /// A trace pre-seeded with the five standard phases ([`TOOL_PHASES`])
    /// so reports have a stable shape even when a phase never runs.
    pub fn standard() -> Self {
        ToolTrace { phases: TOOL_PHASES.iter().map(|n| PhaseSpan::new(n)).collect() }
    }

    /// The span named `name`, created empty if absent.
    pub fn phase_mut(&mut self, name: &'static str) -> &mut PhaseSpan {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            return &mut self.phases[i];
        }
        self.phases.push(PhaseSpan::new(name));
        self.phases.last_mut().expect("just pushed")
    }

    /// The span named `name`, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseSpan> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Add `v` to counter `counter` of phase `phase`.
    pub fn add(&mut self, phase: &'static str, counter: &'static str, v: u64) {
        self.phase_mut(phase).add(counter, v);
    }

    /// Add wall time to phase `phase`.
    pub fn add_wall(&mut self, phase: &'static str, nanos: u64) {
        self.phase_mut(phase).wall_nanos += nanos;
    }

    /// Accumulate another tool trace (spans merge by name, counters by
    /// counter name).
    pub fn merge(&mut self, other: &ToolTrace) {
        for p in &other.phases {
            let span = self.phase_mut(p.name);
            span.wall_nanos += p.wall_nanos;
            for &(n, v) in &p.counters {
                span.add(n, v);
            }
        }
    }
}

/// A minimal wall-clock stopwatch for phase spans.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_trace_accumulates_events() {
        let mut t = SimTrace::default();
        t.event(SimEvent::TriggerFired);
        t.event(SimEvent::TriggerFired);
        t.event(SimEvent::TriggerSuppressed);
        t.event(SimEvent::SliceSpawned);
        t.event(SimEvent::SliceKilled);
        t.event(SimEvent::LiveInCopy);
        t.event(SimEvent::PrefetchIssued);
        t.event(SimEvent::PrefetchDropped);
        assert_eq!(t.triggers_fired, 2);
        assert_eq!(t.triggers_suppressed, 1);
        assert_eq!(t.slices_spawned, 1);
        assert_eq!(t.slices_killed, 1);
        assert_eq!(t.live_in_copies, 1);
        assert_eq!(t.prefetches_issued, 1);
        assert_eq!(t.prefetches_dropped, 1);
    }

    #[test]
    fn per_load_histograms_stay_sorted() {
        let mut t = SimTrace::default();
        for (load, class) in [
            (9, Timeliness::Timely),
            (3, Timeliness::Early),
            (9, Timeliness::Late),
            (5, Timeliness::Useless),
            (9, Timeliness::Timely),
        ] {
            t.event(SimEvent::PrefetchClassified { load, class });
        }
        let tags: Vec<u32> = t.per_load.iter().map(|e| e.0).collect();
        assert_eq!(tags, vec![3, 5, 9]);
        assert_eq!(t.histogram(9).timely, 2);
        assert_eq!(t.histogram(9).late, 1);
        assert_eq!(t.histogram(3).early, 1);
        assert_eq!(t.histogram(1).total(), 0);
        assert_eq!(t.totals().total(), 5);
    }

    #[test]
    fn traces_merge_by_tag() {
        let mut a = SimTrace::default();
        a.event(SimEvent::PrefetchClassified { load: 2, class: Timeliness::Timely });
        a.event(SimEvent::PrefetchIssued);
        let mut b = SimTrace::default();
        b.event(SimEvent::PrefetchClassified { load: 2, class: Timeliness::Early });
        b.event(SimEvent::PrefetchClassified { load: 7, class: Timeliness::Useless });
        b.event(SimEvent::PrefetchIssued);
        a.merge(&b);
        assert_eq!(a.prefetches_issued, 2);
        assert_eq!(a.histogram(2).timely, 1);
        assert_eq!(a.histogram(2).early, 1);
        assert_eq!(a.histogram(7).useless, 1);
    }

    #[test]
    fn tool_trace_counters_and_merge() {
        let mut t = ToolTrace::standard();
        assert_eq!(t.phases.len(), TOOL_PHASES.len());
        t.add("slicing", "slice_insts", 7);
        t.add("slicing", "slice_insts", 3);
        t.add("sched", "sccs", 4);
        assert_eq!(t.phase("slicing").unwrap().counter("slice_insts"), 10);
        let mut u = ToolTrace::standard();
        u.add("slicing", "slice_insts", 5);
        u.merge(&t);
        assert_eq!(u.phase("slicing").unwrap().counter("slice_insts"), 15);
        assert_eq!(u.phase("sched").unwrap().counter("sccs"), 4);
        // Phase order is stable under merge.
        let names: Vec<&str> = u.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, TOOL_PHASES.to_vec());
    }

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }
}
