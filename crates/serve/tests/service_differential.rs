//! Tier-1 property: the `ssp-serve` daemon is observably
//! indistinguishable from the one-shot binaries. Every response line is
//! byte-compared against an answer built independently from the
//! one-shot APIs (`run_benchmark_configured`, `oracle::run_case`) —
//! cold, warm in-memory, across worker counts, across a daemon
//! "restart" (a second `Server` on the same store directory), and over
//! the framed socket transport.
//!
//! Machine configs are cycle-capped because tier-1 runs this in a debug
//! build; capped configs fingerprint differently from the paper
//! configs, so these entries can never pollute a real store.

use ssp_bench::persist::Store;
use ssp_bench::{run_benchmark_configured, suite_row_json, SEED};
use ssp_core::{AdaptOptions, MachineConfig};
use ssp_fuzz::oracle::{run_case, OracleConfig};
use ssp_fuzz::spec::CaseSpec;
use ssp_serve::{read_frame, write_frame, Server, ServerConfig};
use ssp_tune::{TargetModel, TuneConfig, Tuner};
use std::path::PathBuf;

const CORPUS: &str = include_str!("../../../tests/corpus/adaptation_oracle.corpus");
const MAX_CYCLES: u64 = 120_000;

/// The workload the batch tunes. One request keeps the debug-build cost
/// of the closed loop bounded; determinism across worker counts for the
/// full tuner lives in `ssp-tune`'s own suite.
const TUNED: &str = "treeadd.df";

fn capped_config(workers: usize) -> ServerConfig {
    let mut io = MachineConfig::in_order();
    let mut ooo = MachineConfig::out_of_order();
    io.max_cycles = MAX_CYCLES;
    ooo.max_cycles = MAX_CYCLES;
    ServerConfig { seed: SEED, io, ooo, oracle: OracleConfig::default(), workers, tune_rounds: 2 }
}

/// The full request batch: every suite workload, one tune request, plus
/// the checked-in fuzz corpus, verbatim (comments and all).
fn batch() -> String {
    let mut b = String::new();
    for name in ssp_workloads::NAMES {
        b.push_str(name);
        b.push('\n');
    }
    b.push_str("tune ");
    b.push_str(TUNED);
    b.push('\n');
    b.push_str(CORPUS);
    b
}

/// Build the expected response lines straight from the one-shot APIs,
/// duplicating the daemon's render format on purpose: the test must
/// fail if either side drifts.
fn expected_responses(cfg: &ServerConfig) -> String {
    let mut out = String::new();
    for name in ssp_workloads::NAMES {
        let w = ssp_workloads::by_name(name, cfg.seed).expect("suite name");
        let run = run_benchmark_configured(&w, &AdaptOptions::default(), &cfg.io, &cfg.ooo);
        out.push_str(&format!(
            "{{\"kind\": \"workload\", \"row\": {}, \"plan_digest\": \"{}\", \"slices\": {}, \"skipped\": {}}}\n",
            suite_row_json(&run.suite_row()),
            run.report.plan_digest(),
            run.report.slices.len(),
            run.report.skipped.len(),
        ));
    }
    let w = ssp_workloads::by_name(TUNED, cfg.seed).expect("suite name");
    let tuner = Tuner::new(TuneConfig {
        seed: cfg.seed,
        io: cfg.io.clone(),
        ooo: cfg.ooo.clone(),
        max_rounds: cfg.tune_rounds,
        workers: 1,
    });
    out.push_str(&format!(
        "{{\"kind\": \"tune\", \"rounds\": {}, \"io\": {}, \"ooo\": {}}}\n",
        cfg.tune_rounds,
        ssp_tune::report::row_json(&tuner.tune_workload(&w, TargetModel::InOrder)),
        ssp_tune::report::row_json(&tuner.tune_workload(&w, TargetModel::OutOfOrder)),
    ));
    for line in CORPUS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = CaseSpec::parse(line).expect("corpus specs parse");
        let result = run_case(&spec, &cfg.oracle);
        out.push_str(&format!("{{\"kind\": \"case\", \"case\": {}}}\n", result.to_json()));
    }
    out
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ssp-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn cold_service_matches_one_shot_byte_for_byte() {
    let cfg = capped_config(1);
    let expected = expected_responses(&cfg);
    let server = Server::new(cfg);
    assert_eq!(server.handle_batch(&batch()), expected);
    // Same batch again: everything answers from memory, still identical.
    assert_eq!(server.handle_batch(&batch()), expected);
    let report = server.report_json();
    assert!(report.contains("\"disk_hits\": 0"), "no store attached: {report}");
}

#[test]
fn worker_count_does_not_change_responses() {
    let serial = Server::new(capped_config(1)).handle_batch(&batch());
    let parallel = Server::new(capped_config(4)).handle_batch(&batch());
    assert_eq!(serial, parallel, "responses must not depend on the worker pool size");
}

#[test]
fn warm_restart_answers_from_disk_byte_for_byte() {
    let dir = tmpdir("warm-restart");
    let cold = Server::new(capped_config(2)).with_store(Store::open(&dir).expect("create store"));
    let cold_out = cold.handle_batch(&batch());
    assert!(cold.report_json().contains("\"disk_hits\": 0"), "first run computes everything");

    // "Restart": a fresh instance, empty memory cache, same directory.
    let warm = Server::new(capped_config(2)).with_store(Store::open(&dir).expect("reopen store"));
    let warm_out = warm.handle_batch(&batch());
    assert_eq!(warm_out, cold_out, "a store round-trip must not change a single byte");
    let report = warm.report_json();
    assert!(
        report.contains("\"misses\": 0"),
        "every request must be answered from disk after a restart: {report}"
    );
    let n = batch()
        .lines()
        .filter(|l| {
            let l = l.trim();
            !l.is_empty() && !l.starts_with('#')
        })
        .count() as u64;
    assert!(report.contains(&format!("\"disk_hits\": {n}")), "expected {n} disk hits: {report}");
    assert!(!report.contains("\"store_shards\": null"), "store stats present: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_transport_round_trips_the_same_bytes() {
    use std::os::unix::net::{UnixListener, UnixStream};

    let path =
        std::env::temp_dir().join(format!("ssp-serve-test-socket-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind test socket");

    // Daemon side, on a helper thread: one connection, one frame in,
    // one frame out — the same loop body the `ssp_serve` bin runs.
    let daemon = std::thread::spawn(move || {
        let server = Server::new(capped_config(2));
        let (mut conn, _) = listener.accept().expect("accept");
        let payload = read_frame(&mut conn).expect("read request frame").expect("one frame");
        let response = server.handle_batch(&String::from_utf8_lossy(&payload));
        write_frame(&mut conn, response.as_bytes()).expect("write response frame");
    });

    let mut conn = UnixStream::connect(&path).expect("connect");
    write_frame(&mut conn, batch().as_bytes()).expect("send batch");
    let payload = read_frame(&mut conn).expect("read response").expect("daemon answered");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_file(&path);

    let direct = Server::new(capped_config(2)).handle_batch(&batch());
    assert_eq!(String::from_utf8_lossy(&payload), direct, "framing must be transparent");
}
