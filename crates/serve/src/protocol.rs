//! The `ssp-serve` wire protocol: text-line requests, JSON-line
//! responses, and the length-prefixed frame codec for the unix-socket
//! transport.
//!
//! # Requests
//!
//! One request per line, in either of two forms:
//!
//! * a **workload name** (`em3d`, `treeadd.df`, … — exactly the names
//!   of [`ssp_workloads::NAMES`]): adapt that workload and simulate the
//!   four Figure-8 configurations;
//! * a **tune request** (`tune <workload-name>`): run the closed-loop
//!   `ssp-tune` auto-tuner on that workload, both machine models;
//! * a **raw `CaseSpec` line** (`seed=1 chase=48 loads=2 …`): run the
//!   full differential adaptation oracle on the generated program.
//!
//! Blank lines and `#` comments are skipped, so a fuzz corpus file can
//! be piped to the daemon verbatim.
//!
//! # Responses
//!
//! One JSON object per line, in request order (see
//! [`crate::server::Server::handle_batch`]). Unparseable request lines
//! produce `{"kind": "error", …}` responses rather than killing the
//! batch.
//!
//! # Framing (socket transport)
//!
//! The stdin transport is newline-delimited. The unix-socket transport
//! wraps each batch in a frame: a 4-byte little-endian payload length
//! followed by the payload bytes. One request frame (a batch of request
//! lines) yields exactly one response frame (the response lines).

use ssp_fuzz::spec::CaseSpec;
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (64 MiB) — a corrupt length prefix
/// must not look like an instruction to allocate gigabytes.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// One parsed request line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Adapt + simulate one named benchmark workload.
    Workload(String),
    /// Auto-tune one named benchmark workload on both machine models.
    Tune(String),
    /// Run the differential oracle on one generated case.
    Case(CaseSpec),
}

/// Why a request line could not be parsed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestError {
    /// The offending line.
    pub line: String,
    /// What went wrong (deterministic text; it is echoed in the error
    /// response, which the determinism tests byte-diff).
    pub reason: String,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request {:?}: {}", self.line, self.reason)
    }
}

impl std::error::Error for RequestError {}

/// Parse one request line. Returns `None` for blank lines and `#`
/// comments (the corpus-file conventions), `Some(Err(..))` for a line
/// that is neither a known workload name nor a valid `CaseSpec`.
pub fn parse_line(line: &str) -> Option<Result<Request, RequestError>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    if ssp_workloads::NAMES.contains(&line) {
        return Some(Ok(Request::Workload(line.to_owned())));
    }
    if let Some(rest) = line.strip_prefix("tune ") {
        let name = rest.trim();
        if ssp_workloads::NAMES.contains(&name) {
            return Some(Ok(Request::Tune(name.to_owned())));
        }
        return Some(Err(RequestError {
            line: line.to_owned(),
            reason: format!("tune takes a workload name ({})", ssp_workloads::NAMES.join(", ")),
        }));
    }
    match CaseSpec::parse(line) {
        Ok(spec) => Some(Ok(Request::Case(spec))),
        Err(e) => Some(Err(RequestError {
            line: line.to_owned(),
            reason: format!(
                "neither a workload name ({}) nor a case spec ({e})",
                ssp_workloads::NAMES.join(", ")
            ),
        })),
    }
}

/// Write one frame: 4-byte little-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF (no length bytes at
/// all); a truncated length or payload is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workloads_cases_comments_and_garbage() {
        assert_eq!(parse_line("em3d"), Some(Ok(Request::Workload("em3d".to_owned()))));
        assert_eq!(
            parse_line("  treeadd.df  "),
            Some(Ok(Request::Workload("treeadd.df".to_owned())))
        );
        let spec = CaseSpec::parse("seed=1 chase=48 loads=2").unwrap();
        assert_eq!(parse_line("seed=1 chase=48 loads=2"), Some(Ok(Request::Case(spec))));
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("# a comment"), None);
        assert!(matches!(parse_line("not-a-thing"), Some(Err(_))));
    }

    #[test]
    fn parses_tune_requests() {
        assert_eq!(parse_line("tune em3d"), Some(Ok(Request::Tune("em3d".to_owned()))));
        assert_eq!(
            parse_line("  tune   treeadd.df "),
            Some(Ok(Request::Tune("treeadd.df".to_owned())))
        );
        let err = parse_line("tune nonesuch").unwrap().unwrap_err();
        assert!(err.reason.contains("tune takes a workload name"), "{}", err.reason);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut bad = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(b"x");
        assert!(read_frame(&mut &bad[..]).is_err());
        let truncated = 10u32.to_le_bytes().to_vec(); // promises 10 bytes, has 0
        assert!(read_frame(&mut &truncated[..]).is_err());
    }
}
