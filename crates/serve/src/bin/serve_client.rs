//! `serve_client` — one-frame client for a socket-mode `ssp-serve`
//! daemon, and the corpus-replay tool the differential CI job uses.
//!
//! Usage: `serve_client --socket PATH [FILE...]`
//!
//! Concatenates the request files (stdin when none are given — so a
//! fuzz corpus can be piped in verbatim), sends the batch as a single
//! length-prefixed frame, and prints the daemon's response payload to
//! stdout. Exits non-zero if the daemon hangs up without answering.

use ssp_serve::{read_frame, write_frame};
use std::io::Read;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut socket: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(p),
                None => return usage("--socket needs a path"),
            },
            other => files.push(other.to_owned()),
        }
    }
    let Some(path) = socket else {
        return usage("--socket PATH is required");
    };

    let mut batch = String::new();
    if files.is_empty() {
        if let Err(e) = std::io::stdin().read_to_string(&mut batch) {
            eprintln!("serve_client: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(text) => {
                    batch.push_str(&text);
                    if !batch.ends_with('\n') {
                        batch.push('\n');
                    }
                }
                Err(e) => {
                    eprintln!("serve_client: reading {f:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut conn = match UnixStream::connect(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_client: cannot connect to {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_frame(&mut conn, batch.as_bytes()) {
        eprintln!("serve_client: sending batch: {e}");
        return ExitCode::FAILURE;
    }
    match read_frame(&mut conn) {
        Ok(Some(payload)) => {
            print!("{}", String::from_utf8_lossy(&payload));
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("serve_client: daemon hung up without answering");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("serve_client: reading response: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("serve_client: {err}");
    eprintln!("usage: serve_client --socket PATH [FILE...]");
    ExitCode::FAILURE
}
