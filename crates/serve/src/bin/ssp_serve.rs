//! `ssp-serve` — the persistent adaptation-as-a-service daemon.
//!
//! Reads adapt+simulate requests (workload names, `tune <name>`
//! auto-tune requests, or raw fuzz-case specs, one per line; blank
//! lines and `#` comments skipped) and answers one JSON object per
//! line, in request order. Two transports:
//!
//! * **stdin** (default): the whole of stdin is one batch; responses go
//!   to stdout, then the daemon exits. A fuzz corpus file can be piped
//!   in verbatim.
//! * **unix socket** (`--socket PATH`): accepts connections in a loop;
//!   each length-prefixed request frame (one batch of request lines)
//!   yields one response frame. Stop the daemon with SIGINT/SIGTERM or
//!   by sending the single request line `shutdown` in a frame.
//!
//! Flags:
//!
//! * `--socket PATH` — serve over a unix socket instead of stdin;
//! * `--store DIR` — open (or create) a persistent store at `DIR`, so
//!   answers survive restarts; the baseline-simulation cache becomes
//!   disk-backed too;
//! * `--max-cycles N` — cap every simulation at `N` cycles (capped
//!   machine configs fingerprint differently, so capped and uncapped
//!   answers never mix in the caches);
//! * `--workers N` — override the worker pool size (default:
//!   `SSP_THREADS`, else all cores);
//! * `--tune-rounds N` — greedy-round cap for `tune` requests (default:
//!   the `ssp-tune` crate's cap; part of the tune cache key).
//!
//! On exit the daemon prints its `ssp-serve-report/2` statistics
//! document to stderr.

use ssp_bench::persist::Store;
use ssp_serve::{read_frame, write_frame, Server, ServerConfig};
use std::io::Read;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut socket: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(p),
                None => return usage("--socket needs a path"),
            },
            "--store" => match args.next() {
                Some(p) => store_dir = Some(p),
                None => return usage("--store needs a directory"),
            },
            "--max-cycles" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => {
                    config.io.max_cycles = n;
                    config.ooo.max_cycles = n;
                    config.oracle.max_cycles = n;
                }
                _ => return usage("--max-cycles needs a positive integer"),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--tune-rounds" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.tune_rounds = n,
                _ => return usage("--tune-rounds needs a positive integer"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let mut server = Server::new(config);
    if let Some(dir) = &store_dir {
        // Two stores on the same directory: the serve-level response
        // store and the bench-level baseline-simulation cache. They
        // never collide — keys differ and shards are content-addressed.
        let open = |what: &str| match Store::open(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("ssp-serve: cannot open {what} store at {dir:?}: {e}");
                None
            }
        };
        let Some(response_store) = open("response") else { return ExitCode::FAILURE };
        let Some(baseline_store) = open("baseline") else { return ExitCode::FAILURE };
        server = server.with_store(response_store);
        ssp_bench::cache::attach_store(baseline_store);
    }

    let code = match socket {
        None => serve_stdin(&server),
        Some(path) => serve_socket(&server, &path),
    };
    eprintln!("{}", server.report_json());
    code
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ssp-serve: {err}");
    eprintln!(
        "usage: ssp_serve [--socket PATH] [--store DIR] [--max-cycles N] [--workers N] [--tune-rounds N] < requests"
    );
    ExitCode::FAILURE
}

/// Stdin transport: one batch, one exit.
fn serve_stdin(server: &Server) -> ExitCode {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("ssp-serve: reading stdin: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", server.handle_batch(&input));
    ExitCode::SUCCESS
}

/// Socket transport: accept loop, one response frame per request frame.
fn serve_socket(server: &Server, path: &str) -> ExitCode {
    // A stale socket file from a previous daemon would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ssp-serve: cannot bind {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ssp-serve: listening on {path:?}");
    for conn in listener.incoming() {
        let mut conn = match conn {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ssp-serve: accept failed: {e}");
                continue;
            }
        };
        loop {
            let payload = match read_frame(&mut conn) {
                Ok(Some(p)) => p,
                Ok(None) => break, // client hung up cleanly
                Err(e) => {
                    eprintln!("ssp-serve: bad frame: {e}");
                    break;
                }
            };
            let input = String::from_utf8_lossy(&payload);
            if input.trim() == "shutdown" {
                let _ = write_frame(&mut conn, b"{\"kind\": \"shutdown\"}\n");
                let _ = std::fs::remove_file(path);
                return ExitCode::SUCCESS;
            }
            let response = server.handle_batch(&input);
            if let Err(e) = write_frame(&mut conn, response.as_bytes()) {
                eprintln!("ssp-serve: writing response: {e}");
                break;
            }
        }
    }
    ExitCode::SUCCESS
}
