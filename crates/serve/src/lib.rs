//! Adaptation-as-a-service: the `ssp-serve` daemon and its client.
//!
//! The one-shot binaries (`fig8`, `perf_report`, `fuzz_oracle`, …)
//! rebuild every adaptation and simulation from scratch per invocation.
//! This crate turns the same pipeline into a *persistent service*: a
//! [`Server`] accepts batches of adapt+simulate requests — workload
//! names, `tune <name>` auto-tune requests, or raw fuzz-case specs —
//! fans them out across a worker pool, and answers from sharded caches
//! that survive restarts via an on-disk store.
//!
//! The contract that makes the service trustworthy is **byte-identity**:
//! every response is rendered by the same canonical renderers the
//! one-shot binaries use ([`ssp_bench::suite_row_json`],
//! [`ssp_fuzz::oracle::case_json`]), whether the answer was computed
//! cold, served from memory, or decoded from a store written by an
//! earlier process. The differential suite in
//! `tests/service_differential.rs` enforces this cold, warm, across
//! worker counts, and across a daemon restart.
//!
//! Layering:
//!
//! * [`protocol`] — request grammar, response framing;
//! * [`server`] — batch scheduler, sharded caches, statistics report;
//! * [`store`] — the versioned persisted entry payloads
//!   (`ssp-serve-workload/1`, `ssp-serve-case/1`, `ssp-serve-tune/1`),
//!   layered on [`ssp_bench::persist::Store`].
//!
//! See `docs/SERVE.md` for the protocol specification and a worked
//! client session.

#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod store;

pub use protocol::{parse_line, read_frame, write_frame, Request, RequestError, MAX_FRAME};
pub use server::{Server, ServerConfig};
pub use store::{
    CaseEntry, TuneEntry, WorkloadEntry, CASE_ENTRY_FORMAT, TUNE_ENTRY_FORMAT,
    WORKLOAD_ENTRY_FORMAT,
};
