//! The request scheduler behind `ssp-serve`: batch handling, sharded
//! in-memory response caches, optional persistent store, and the
//! `ssp-serve-report/2` statistics document.
//!
//! # Caching and sharding
//!
//! Every request has a *key* (its full identity, machine-config
//! fingerprints included) and a *config fingerprint* (the part of the
//! key that names the configuration). Both cache layers shard by the
//! fingerprint:
//!
//! * the in-memory layer keeps [`NUM_SHARDS`] mutexed maps from key to
//!   a per-key `OnceLock`, so two in-flight
//!   requests for the same key compute once and requests for different
//!   configurations never contend on one lock;
//! * the on-disk layer (when a store is attached) files each entry
//!   under [`Store::shard_of`] of the fingerprint.
//!
//! A memory miss probes the store before computing; a computed answer
//! is written back. Warm answers are rendered from the decoded entry by
//! the same renderer a cold answer uses, so they are byte-identical.
//!
//! Counters are schedule-independent for a fixed batch: `misses` counts
//! distinct keys computed, `disk_hits` distinct keys loaded from the
//! store, and `hits` every other request — concurrent duplicates block
//! on the `OnceLock` and count as hits regardless of interleaving.
//!
//! # Options in keys
//!
//! Adaptation options participate in every adaptation-bearing cache
//! key via the versioned [`AdaptOptions::fingerprint`]
//! (`ssp-adapt-options/1`), so default-options workload answers and
//! tuned plans can never collide on workload + seed + machine alone.
//! Plain workload requests still adapt with [`AdaptOptions::default`];
//! `tune <name>` requests run the `ssp-tune` closed loop (which
//! explores non-default options under the same keying discipline) and
//! persist the tuned rows as their own entry kind.

use crate::protocol::{parse_line, Request};
use crate::store::{CaseEntry, TuneEntry, WorkloadEntry};
use ssp_bench::cache::NUM_SHARDS;
use ssp_bench::persist::{fnv64, Store};
use ssp_bench::{parallel, suite_row_json, SEED};
use ssp_core::{AdaptOptions, MachineConfig};
use ssp_fuzz::oracle::{run_case, OracleConfig};
use ssp_fuzz::spec::CaseSpec;
use ssp_tune::{TargetModel, TuneConfig, Tuner};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a [`Server`] is parameterized over. The default is the
/// exact one-shot experiment configuration: paper machine models,
/// [`SEED`], default oracle, `SSP_THREADS` workers.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Workload builder seed.
    pub seed: u64,
    /// In-order machine model.
    pub io: MachineConfig,
    /// Out-of-order machine model.
    pub ooo: MachineConfig,
    /// Oracle configuration for case requests.
    pub oracle: OracleConfig,
    /// Worker threads a batch fans out across.
    pub workers: usize,
    /// Greedy-round cap for `tune` requests (part of the tune cache
    /// key: different caps are different answers).
    pub tune_rounds: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: SEED,
            io: MachineConfig::in_order(),
            ooo: MachineConfig::out_of_order(),
            oracle: OracleConfig::default(),
            workers: parallel::threads(),
            tune_rounds: ssp_tune::DEFAULT_MAX_ROUNDS,
        }
    }
}

/// How one response was produced — drives the counter bump after the
/// per-key `OnceLock` resolves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Source {
    Memory,
    Disk,
    Computed,
}

type Shard = Mutex<HashMap<String, Arc<OnceLock<String>>>>;

/// A persistent adaptation service instance.
///
/// Instance-based on purpose: "restart the daemon" in a test is just a
/// second `Server` pointed at the same store directory.
pub struct Server {
    config: ServerConfig,
    store: Option<Store>,
    shards: Vec<Shard>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    requests: AtomicU64,
    workloads: AtomicU64,
    cases: AtomicU64,
    tunes: AtomicU64,
    errors: AtomicU64,
}

impl Server {
    /// A server with no persistent store (memory-only caching).
    pub fn new(config: ServerConfig) -> Server {
        Server {
            config,
            store: None,
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            workloads: AtomicU64::new(0),
            cases: AtomicU64::new(0),
            tunes: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Attach a persistent store: memory misses probe it, computed
    /// answers are written back.
    pub fn with_store(mut self, store: Store) -> Server {
        self.store = Some(store);
        self
    }

    /// The configuration this instance answers under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Handle one batch of request lines: parse, fan out across
    /// [`ServerConfig::workers`], and return one JSON response line per
    /// request, in request order (trailing newline included when the
    /// batch was non-empty). Blank lines and `#` comments are skipped;
    /// unparseable lines yield `{"kind": "error", …}` responses in
    /// place rather than aborting the batch.
    pub fn handle_batch(&self, input: &str) -> String {
        let requests: Vec<_> = input.lines().filter_map(parse_line).collect();
        self.requests.fetch_add(requests.len() as u64, Ordering::Relaxed);
        let responses = parallel::map_indexed(&requests, self.config.workers, |_, req| match req {
            Ok(Request::Workload(name)) => self.respond_workload(name),
            Ok(Request::Tune(name)) => self.respond_tune(name),
            Ok(Request::Case(spec)) => self.respond_case(spec),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                format!("{{\"kind\": \"error\", \"error\": \"{}\"}}", json_escape(&e.to_string()))
            }
        });
        let mut out = String::new();
        for r in responses {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }

    /// The daemon's statistics document (`ssp-serve-report/2`):
    /// request/answer counters, the three-way cache verdict, per-shard
    /// in-memory occupancy, and (when a store is attached) per-shard
    /// on-disk entry counts. Deterministic for a fixed request multiset.
    pub fn report_json(&self) -> String {
        let shard_sizes: Vec<String> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len().to_string())
            .collect();
        let store_json = match &self.store {
            None => "null".to_owned(),
            Some(store) => {
                let counts: Vec<String> = store
                    .shard_entry_counts()
                    .iter()
                    .map(|(shard, n)| format!("{{\"shard\": \"{shard}\", \"entries\": {n}}}"))
                    .collect();
                format!("[{}]", counts.join(", "))
            }
        };
        format!(
            concat!(
                "{{\"schema\": \"ssp-serve-report/2\", ",
                "\"requests\": {}, \"workloads\": {}, \"cases\": {}, \"tunes\": {}, \"errors\": {}, ",
                "\"cache\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}}}, ",
                "\"memory_shards\": [{}], \"store_shards\": {}}}"
            ),
            self.requests.load(Ordering::Relaxed),
            self.workloads.load(Ordering::Relaxed),
            self.cases.load(Ordering::Relaxed),
            self.tunes.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.disk_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            shard_sizes.join(", "),
            store_json,
        )
    }

    fn respond_workload(&self, name: &str) -> String {
        self.workloads.fetch_add(1, Ordering::Relaxed);
        let io_fp = self.config.io.fingerprint();
        let ooo_fp = self.config.ooo.fingerprint();
        let opts_fp = AdaptOptions::default().fingerprint();
        let key = format!(
            "workload name={name} seed={} io={io_fp} ooo={ooo_fp} opts={opts_fp}",
            self.config.seed
        );
        self.answer(&key, &io_fp, || {
            if let Some(text) = self.store_load(&io_fp, &key) {
                if let Ok(entry) = WorkloadEntry::decode(&text) {
                    return (Source::Disk, render_workload(&entry));
                }
            }
            let w = ssp_workloads::by_name(name, self.config.seed)
                .expect("parse_line admits only known workload names");
            let run = ssp_bench::run_benchmark_configured(
                &w,
                &AdaptOptions::default(),
                &self.config.io,
                &self.config.ooo,
            );
            let entry = WorkloadEntry {
                name: name.to_owned(),
                seed: self.config.seed,
                plan_digest: run.report.plan_digest(),
                slices: run.report.slices.len() as u64,
                skipped: run.report.skipped.len() as u64,
                base_io: run.base_io,
                ssp_io: run.ssp_io,
                base_ooo: run.base_ooo,
                ssp_ooo: run.ssp_ooo,
            };
            self.store_save(&io_fp, &key, &entry.encode());
            (Source::Computed, render_workload(&entry))
        })
    }

    fn respond_tune(&self, name: &str) -> String {
        self.tunes.fetch_add(1, Ordering::Relaxed);
        let io_fp = self.config.io.fingerprint();
        let ooo_fp = self.config.ooo.fingerprint();
        let opts_fp = AdaptOptions::default().fingerprint();
        let key = format!(
            "tune name={name} seed={} rounds={} io={io_fp} ooo={ooo_fp} opts={opts_fp}",
            self.config.seed, self.config.tune_rounds
        );
        self.answer(&key, &io_fp, || {
            if let Some(text) = self.store_load(&io_fp, &key) {
                if let Ok(entry) = TuneEntry::decode(&text) {
                    return (Source::Disk, render_tune(&entry));
                }
            }
            let w = ssp_workloads::by_name(name, self.config.seed)
                .expect("parse_line admits only known workload names");
            // Workers = 1: the batch is already fanned out across the
            // server's pool; nested fan-out would oversubscribe it.
            let mut tuner = Tuner::new(TuneConfig {
                seed: self.config.seed,
                io: self.config.io.clone(),
                ooo: self.config.ooo.clone(),
                max_rounds: self.config.tune_rounds,
                workers: 1,
            });
            if let Some(store) = &self.store {
                // The tuner's own evaluation cache shares the daemon's
                // store directory, so a restarted daemon replays even
                // half-finished tunes from disk.
                if let Ok(s) = Store::open(store.root()) {
                    tuner = tuner.with_store(s);
                }
            }
            let entry = TuneEntry {
                name: name.to_owned(),
                seed: self.config.seed,
                rounds: self.config.tune_rounds as u64,
                io_row: tuner.tune_workload(&w, TargetModel::InOrder),
                ooo_row: tuner.tune_workload(&w, TargetModel::OutOfOrder),
            };
            self.store_save(&io_fp, &key, &entry.encode());
            (Source::Computed, render_tune(&entry))
        })
    }

    fn respond_case(&self, spec: &CaseSpec) -> String {
        self.cases.fetch_add(1, Ordering::Relaxed);
        let fp = format!("ssp-oracle-config/1 max_cycles={}", self.config.oracle.max_cycles);
        let key = format!("case {spec} {fp}");
        self.answer(&key, &fp, || {
            if let Some(text) = self.store_load(&fp, &key) {
                if let Ok(entry) = CaseEntry::decode(&text) {
                    return (Source::Disk, render_case(&entry));
                }
            }
            let result = run_case(spec, &self.config.oracle);
            let entry = CaseEntry {
                spec: result.spec.to_string(),
                outcome: result.outcome_name().to_owned(),
                kinds: result.violation_kinds(),
                slices: result.slices as u64,
                threads_spawned: result.threads_spawned,
            };
            self.store_save(&fp, &key, &entry.encode());
            (Source::Computed, render_case(&entry))
        })
    }

    /// Memoize `compute` under `key` in the shard selected by
    /// `fingerprint`, bumping the hit/disk-hit/miss counters.
    fn answer(
        &self,
        key: &str,
        fingerprint: &str,
        compute: impl FnOnce() -> (Source, String),
    ) -> String {
        let shard = &self.shards[(fnv64(fingerprint) as usize) % NUM_SHARDS];
        let cell = shard.lock().expect("shard poisoned").entry(key.to_owned()).or_default().clone();
        let mut source = Source::Memory;
        let response = cell.get_or_init(|| {
            let (src, text) = compute();
            source = src;
            text
        });
        match source {
            Source::Memory => &self.hits,
            Source::Disk => &self.disk_hits,
            Source::Computed => &self.misses,
        }
        .fetch_add(1, Ordering::Relaxed);
        response.clone()
    }

    fn store_load(&self, fingerprint: &str, key: &str) -> Option<String> {
        self.store.as_ref()?.load(&Store::shard_of(fingerprint), key)
    }

    fn store_save(&self, fingerprint: &str, key: &str, payload: &str) {
        if let Some(store) = &self.store {
            if let Err(e) = store.save(&Store::shard_of(fingerprint), key, payload) {
                eprintln!("ssp-serve: store write failed for {key:?}: {e}");
            }
        }
    }
}

fn render_workload(entry: &WorkloadEntry) -> String {
    format!(
        "{{\"kind\": \"workload\", \"row\": {}, \"plan_digest\": \"{}\", \"slices\": {}, \"skipped\": {}}}",
        suite_row_json(&entry.suite_row()),
        entry.plan_digest,
        entry.slices,
        entry.skipped,
    )
}

fn render_case(entry: &CaseEntry) -> String {
    format!("{{\"kind\": \"case\", \"case\": {}}}", entry.to_json())
}

/// Render a tune answer from its entry — same path cold and warm, so
/// both are byte-identical (the rows go through
/// [`ssp_tune::report::row_json`], the renderer the `tune` binary
/// uses).
fn render_tune(entry: &TuneEntry) -> String {
    format!(
        "{{\"kind\": \"tune\", \"rounds\": {}, \"io\": {}, \"ooo\": {}}}",
        entry.rounds,
        ssp_tune::report::row_json(&entry.io_row),
        ssp_tune::report::row_json(&entry.ooo_row),
    )
}

/// Minimal JSON string escaping for error text (the only response field
/// that can carry arbitrary request bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capped_config() -> ServerConfig {
        let mut io = MachineConfig::in_order();
        let mut ooo = MachineConfig::out_of_order();
        io.max_cycles = 120_000;
        ooo.max_cycles = 120_000;
        ServerConfig {
            seed: SEED,
            io,
            ooo,
            oracle: OracleConfig::default(),
            workers: 2,
            tune_rounds: 2,
        }
    }

    #[test]
    fn batch_preserves_order_and_counts() {
        let server = Server::new(capped_config());
        let out =
            server.handle_batch("# comment\n\nmcf\nseed=1 chase=48 loads=2\nmcf\nnot-a-request\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"kind\": \"workload\", \"row\": {\"name\": \"mcf\""));
        assert!(lines[1].starts_with("{\"kind\": \"case\", \"case\": {\"spec\": \"seed=1"));
        assert_eq!(lines[0], lines[2], "duplicate request, identical response");
        assert!(lines[3].starts_with("{\"kind\": \"error\""));
        let report = server.report_json();
        assert!(report.starts_with("{\"schema\": \"ssp-serve-report/2\""));
        assert!(report.contains("\"tunes\": 0"), "report: {report}");
        assert!(report.contains("\"requests\": 4"), "report: {report}");
        assert!(report.contains("\"errors\": 1"), "report: {report}");
        assert!(
            report.contains("\"cache\": {\"hits\": 1, \"disk_hits\": 0, \"misses\": 2}"),
            "report: {report}"
        );
        assert!(report.contains("\"store_shards\": null"), "report: {report}");
    }

    #[test]
    fn error_text_is_valid_json() {
        let server = Server::new(capped_config());
        let out = server.handle_batch("se\"ed=\\1\n");
        assert!(out.contains("\\\""), "quotes escaped: {out}");
        assert!(out.contains("\\\\"), "backslashes escaped: {out}");
    }
}
