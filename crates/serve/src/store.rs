//! Serve-level store entries: the versioned payloads `ssp-serve`
//! persists per answered request, layered on the generic
//! [`ssp_bench::persist::Store`].
//!
//! Three entry kinds exist, one per request kind:
//!
//! * [`WorkloadEntry`] (`ssp-serve-workload/1`) — the four serialized
//!   [`SimResult`]s of a Figure-8 run plus the adaptation's structural
//!   plan digest and slice/skip counts. The suite row the daemon
//!   answers with is *reconstructed* from these results, never cached
//!   as rendered text, so a warm answer is byte-identical to a cold one
//!   by construction and the differential suite can compare decoded
//!   results structurally.
//! * [`CaseEntry`] (`ssp-serve-case/1`) — the oracle verdict of one
//!   fuzz case: outcome, deduplicated violation kinds, and counters.
//! * [`TuneEntry`] (`ssp-serve-tune/1`) — the auto-tuner's outcome for
//!   one workload: the two `ssp-tune-row/1` rows (in-order and
//!   out-of-order), re-rendered from the decoded rows on warm answers.
//!
//! Entries are keyed (and sharded) by the full request identity
//! including the machine-config fingerprints — see
//! [`crate::server`] for the key layout.

use ssp_bench::persist::{decode_sim_result, encode_sim_result, PersistError};
use ssp_bench::SuiteRow;
use ssp_core::SimResult;

/// Version header of one persisted workload entry.
pub const WORKLOAD_ENTRY_FORMAT: &str = "ssp-serve-workload/1";

/// Version header of one persisted case entry.
pub const CASE_ENTRY_FORMAT: &str = "ssp-serve-case/1";

/// Version header of one persisted tune entry.
pub const TUNE_ENTRY_FORMAT: &str = "ssp-serve-tune/1";

/// A persisted workload answer: everything needed to reproduce the
/// response (and its diagnostic flags) without re-simulating.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadEntry {
    /// Benchmark name.
    pub name: String,
    /// Builder seed.
    pub seed: u64,
    /// Structural digest of the emitted adaptation plan
    /// ([`ssp_core::AdaptReport::plan_digest`]).
    pub plan_digest: String,
    /// Slices the adaptation emitted (0 = no-op).
    pub slices: u64,
    /// Delinquent loads skipped with a reason.
    pub skipped: u64,
    /// Baseline, in-order.
    pub base_io: SimResult,
    /// Adapted, in-order.
    pub ssp_io: SimResult,
    /// Baseline, out-of-order.
    pub base_ooo: SimResult,
    /// Adapted, out-of-order.
    pub ssp_ooo: SimResult,
}

impl WorkloadEntry {
    /// Serialize as a versioned text payload.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(WORKLOAD_ENTRY_FORMAT);
        out.push('\n');
        out.push_str(&format!("name={}\n", self.name));
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!("plan_digest={}\n", self.plan_digest));
        out.push_str(&format!("slices={}\n", self.slices));
        out.push_str(&format!("skipped={}\n", self.skipped));
        for r in [&self.base_io, &self.ssp_io, &self.base_ooo, &self.ssp_ooo] {
            out.push_str(&encode_sim_result(r));
        }
        out
    }

    /// Parse a payload produced by [`WorkloadEntry::encode`].
    pub fn decode(text: &str) -> Result<WorkloadEntry, PersistError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != WORKLOAD_ENTRY_FORMAT {
            return Err(PersistError::Header {
                expected: WORKLOAD_ENTRY_FORMAT,
                found: header.to_owned(),
            });
        }
        let name = field(lines.next(), "name")?.to_owned();
        let seed = num(field(lines.next(), "seed")?, "seed")?;
        let plan_digest = field(lines.next(), "plan_digest")?.to_owned();
        let slices = num(field(lines.next(), "slices")?, "slices")?;
        let skipped = num(field(lines.next(), "skipped")?, "skipped")?;
        let base_io = take_sim_block(&mut lines)?;
        let ssp_io = take_sim_block(&mut lines)?;
        let base_ooo = take_sim_block(&mut lines)?;
        let ssp_ooo = take_sim_block(&mut lines)?;
        Ok(WorkloadEntry {
            name,
            seed,
            plan_digest,
            slices,
            skipped,
            base_io,
            ssp_io,
            base_ooo,
            ssp_ooo,
        })
    }

    /// The suite row this entry answers with — same shape (and hence
    /// byte-identical JSON) as the one-shot harness's
    /// [`ssp_bench::BenchmarkRun::suite_row`].
    pub fn suite_row(&self) -> SuiteRow {
        SuiteRow {
            name: self.name.clone(),
            base_io: self.base_io.cycles,
            ssp_io: self.ssp_io.cycles,
            base_ooo: self.base_ooo.cycles,
            ssp_ooo: self.ssp_ooo.cycles,
            noop: self.slices == 0,
            regression_io: self.ssp_io.cycles > self.base_io.cycles,
            regression_ooo: self.ssp_ooo.cycles > self.base_ooo.cycles,
        }
    }
}

/// A persisted oracle verdict for one fuzz case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseEntry {
    /// The case, in its reproducible one-line form.
    pub spec: String,
    /// Outcome wire name (`pass` / `baseline-capped` / `violations`).
    pub outcome: String,
    /// Deduplicated violation kinds (empty unless `violations`).
    pub kinds: Vec<String>,
    /// Slices the tool emitted.
    pub slices: u64,
    /// Speculative threads spawned across the adapted runs.
    pub threads_spawned: u64,
}

impl CaseEntry {
    /// Serialize as a versioned text payload.
    pub fn encode(&self) -> String {
        format!(
            "{CASE_ENTRY_FORMAT}\nspec={}\noutcome={}\nkinds={}\nslices={}\nthreads_spawned={}\n",
            self.spec,
            self.outcome,
            self.kinds.join(","),
            self.slices,
            self.threads_spawned,
        )
    }

    /// Parse a payload produced by [`CaseEntry::encode`].
    pub fn decode(text: &str) -> Result<CaseEntry, PersistError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != CASE_ENTRY_FORMAT {
            return Err(PersistError::Header {
                expected: CASE_ENTRY_FORMAT,
                found: header.to_owned(),
            });
        }
        let spec = field(lines.next(), "spec")?.to_owned();
        let outcome = field(lines.next(), "outcome")?.to_owned();
        let kinds = field(lines.next(), "kinds")?;
        let kinds: Vec<String> = if kinds.is_empty() {
            Vec::new()
        } else {
            kinds.split(',').map(str::to_owned).collect()
        };
        let slices = num(field(lines.next(), "slices")?, "slices")?;
        let threads_spawned = num(field(lines.next(), "threads_spawned")?, "threads_spawned")?;
        Ok(CaseEntry { spec, outcome, kinds, slices, threads_spawned })
    }

    /// Render via the canonical [`ssp_fuzz::oracle::case_json`] — the
    /// same function a cold answer uses, so warm answers are
    /// byte-identical.
    pub fn to_json(&self) -> String {
        ssp_fuzz::oracle::case_json(
            &self.spec,
            &self.outcome,
            &self.kinds,
            self.slices,
            self.threads_spawned,
        )
    }
}

/// A persisted auto-tune answer: both machine models' tuned rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TuneEntry {
    /// Benchmark name.
    pub name: String,
    /// Builder seed.
    pub seed: u64,
    /// Round cap the tuner ran under.
    pub rounds: u64,
    /// Tuned row targeting the in-order model.
    pub io_row: ssp_tune::TuneRow,
    /// Tuned row targeting the out-of-order model.
    pub ooo_row: ssp_tune::TuneRow,
}

impl TuneEntry {
    /// Serialize as a versioned text payload: the header fields
    /// followed by two concatenated `ssp-tune-row/1` blocks.
    pub fn encode(&self) -> String {
        format!(
            "{TUNE_ENTRY_FORMAT}\nname={}\nseed={}\nrounds={}\n{}{}",
            self.name,
            self.seed,
            self.rounds,
            ssp_tune::report::encode_row(&self.io_row),
            ssp_tune::report::encode_row(&self.ooo_row),
        )
    }

    /// Parse a payload produced by [`TuneEntry::encode`].
    pub fn decode(text: &str) -> Result<TuneEntry, PersistError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != TUNE_ENTRY_FORMAT {
            return Err(PersistError::Header {
                expected: TUNE_ENTRY_FORMAT,
                found: header.to_owned(),
            });
        }
        let name = field(lines.next(), "name")?.to_owned();
        let seed = num(field(lines.next(), "seed")?, "seed")?;
        let rounds = num(field(lines.next(), "rounds")?, "rounds")?;
        let io_row = ssp_tune::report::decode_row_stream(&mut lines)
            .ok_or_else(|| PersistError::Malformed("bad in-order tune row".to_owned()))?;
        let ooo_row = ssp_tune::report::decode_row_stream(&mut lines)
            .ok_or_else(|| PersistError::Malformed("bad out-of-order tune row".to_owned()))?;
        Ok(TuneEntry { name, seed, rounds, io_row, ooo_row })
    }
}

fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, PersistError> {
    let line = line.ok_or_else(|| PersistError::Malformed(format!("missing field {key}")))?;
    match line.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(PersistError::Malformed(format!("expected field {key}, found {line:?}"))),
    }
}

fn num<T: std::str::FromStr>(v: &str, key: &str) -> Result<T, PersistError> {
    v.parse().map_err(|_| PersistError::Malformed(format!("field {key}: bad value {v:?}")))
}

/// Consume one `ssp-sim-result/1` block from a shared line cursor: the
/// 15 fixed lines (header, 13 scalar fields, `loads=N`) followed by the
/// `N` per-load rows, re-joined and handed to
/// [`ssp_bench::persist::decode_sim_result`].
fn take_sim_block(lines: &mut std::str::Lines<'_>) -> Result<SimResult, PersistError> {
    let mut block = String::new();
    let mut n_loads = 0usize;
    for i in 0..15 {
        let line = lines
            .next()
            .ok_or_else(|| PersistError::Malformed("truncated sim-result block".to_owned()))?;
        if i == 14 {
            n_loads = num(field(Some(line), "loads")?, "loads")?;
        }
        block.push_str(line);
        block.push('\n');
    }
    for _ in 0..n_loads {
        let line = lines
            .next()
            .ok_or_else(|| PersistError::Malformed("truncated load list".to_owned()))?;
        block.push_str(line);
        block.push('\n');
    }
    decode_sim_result(&block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::MachineConfig;

    #[test]
    fn workload_entry_round_trips() {
        let w = ssp_workloads::mcf::build(11);
        let mut cfg = MachineConfig::in_order();
        cfg.max_cycles = 30_000;
        let r = ssp_core::simulate(&w.program, &cfg);
        let entry = WorkloadEntry {
            name: "mcf".to_owned(),
            seed: 11,
            plan_digest: "0123456789abcdef".to_owned(),
            slices: 2,
            skipped: 1,
            base_io: r.clone(),
            ssp_io: SimResult { cycles: r.cycles / 2, ..r.clone() },
            base_ooo: r.clone(),
            ssp_ooo: r.clone(),
        };
        let decoded = WorkloadEntry::decode(&entry.encode()).unwrap();
        assert_eq!(decoded, entry);
        let row = decoded.suite_row();
        assert!(!row.noop);
        assert!(!row.regression_io, "ssp_io is faster");
    }

    #[test]
    fn case_entry_round_trips() {
        for entry in [
            CaseEntry {
                spec: "seed=1 chase=48 loads=2".to_owned(),
                outcome: "pass".to_owned(),
                kinds: vec![],
                slices: 3,
                threads_spawned: 40,
            },
            CaseEntry {
                spec: "seed=9 chase=8 loads=1".to_owned(),
                outcome: "violations".to_owned(),
                kinds: vec!["reg-mismatch".to_owned(), "mem-mismatch".to_owned()],
                slices: 0,
                threads_spawned: 0,
            },
        ] {
            assert_eq!(CaseEntry::decode(&entry.encode()).unwrap(), entry);
        }
    }

    #[test]
    fn tune_entry_round_trips() {
        let row = |model: &str, moves: Vec<(String, u64)>| ssp_tune::TuneRow {
            name: "em3d".to_owned(),
            model: model.to_owned(),
            base_cycles: 98634,
            default_cycles: 139867,
            default_noop: false,
            tuned_cycles: 98580,
            tuned_slices: 2,
            tuned_plan_digest: "ab12".to_owned(),
            tuned_opts: "ssp-adapt-options/1 coverage=0.99".to_owned(),
            verdict: "win".to_owned(),
            rounds: 3,
            candidates: 38,
            emitting_candidates: 30,
            best_candidate_cycles: 98580,
            timeliness: ssp_sim::TimelinessCounts { early: 1, timely: 2, late: 3, useless: 4 },
            moves,
        };
        let entry = TuneEntry {
            name: "em3d".to_owned(),
            seed: 11,
            rounds: 8,
            io_row: row("in-order", vec![]),
            ooo_row: row("out-of-order", vec![("force_model=basic".to_owned(), 99537)]),
        };
        assert_eq!(TuneEntry::decode(&entry.encode()).unwrap(), entry);
    }

    #[test]
    fn decode_rejects_foreign_headers() {
        assert!(matches!(
            WorkloadEntry::decode("ssp-serve-workload/999\n"),
            Err(PersistError::Header { .. })
        ));
        assert!(matches!(
            CaseEntry::decode("ssp-serve-workload/1\n"),
            Err(PersistError::Header { .. })
        ));
    }
}
