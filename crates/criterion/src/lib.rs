//! A minimal, fully offline benchmarking shim exposing the subset of the
//! `criterion` crate's API this workspace uses.
//!
//! The real `criterion` cannot be resolved without network access, so the
//! `harness = false` bench targets (gated behind the `bench` feature of
//! `ssp-bench`) link against this stand-in instead. It runs each
//! benchmark closure `sample_size` times after one warm-up pass and
//! prints min/mean/max wall times — no statistics, plots, or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, sample_size: 10 }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Finish the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Run `routine` once per sample (after one untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), target_samples: samples };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
        min,
        mean,
        max,
        b.samples.len()
    );
}

/// Declare a benchmark group: `criterion_group!(benches, f, g, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }
}
