//! `tune` — run the closed-loop auto-tuner over the workload suite and
//! emit the `ssp-tune-report/1` document on stdout.
//!
//! ```text
//! tune [--seed N] [--rounds N] [--max-cycles N] [--workers N]
//!      [--store DIR] [--workloads a,b,...] [--out FILE]
//! ```
//!
//! The report goes to stdout (and `--out` when given); the human
//! summary table and cache statistics go to stderr. Exits nonzero on
//! bad arguments or if any row breaks the tuner's own invariants
//! (a structural-cap verdict with a sub-baseline candidate, or a win
//! verdict that does not beat its baseline).

use ssp_bench::persist::Store;
use ssp_tune::{render_report, TuneConfig, Tuner};

fn usage() -> ! {
    eprintln!(
        "usage: tune [--seed N] [--rounds N] [--max-cycles N] [--workers N] \
         [--store DIR] [--workloads a,b,...] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = TuneConfig::default();
    let mut store_dir: Option<String> = None;
    let mut names: Vec<String> = ssp_workloads::NAMES.iter().map(|s| s.to_string()).collect();
    let mut out_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("tune: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--rounds" => config.max_rounds = value("--rounds").parse().unwrap_or_else(|_| usage()),
            "--max-cycles" => {
                let n: u64 = value("--max-cycles").parse().unwrap_or_else(|_| usage());
                config.io.max_cycles = n;
                config.ooo.max_cycles = n;
            }
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--store" => store_dir = Some(value("--store")),
            "--workloads" => {
                names = value("--workloads").split(',').map(|s| s.trim().to_owned()).collect()
            }
            "--out" => out_file = Some(value("--out")),
            _ => {
                eprintln!("tune: unknown argument {arg:?}");
                usage()
            }
        }
    }

    let mut workloads = Vec::new();
    for name in &names {
        match ssp_workloads::by_name(name, config.seed) {
            Ok(w) => workloads.push(w),
            Err(e) => {
                eprintln!("tune: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut tuner = Tuner::new(config.clone());
    if let Some(dir) = &store_dir {
        match Store::open(dir) {
            Ok(store) => tuner = tuner.with_store(store),
            Err(e) => {
                eprintln!("tune: cannot open store {dir:?}: {e}");
                std::process::exit(2);
            }
        }
    }

    let rows = tuner.tune_suite(&workloads);

    let mut bad = 0;
    eprintln!(
        "{:<12} {:<13} {:>12} {:>12} {:>12} {:>8} verdict",
        "workload", "model", "base", "default", "tuned", "speedup"
    );
    for r in &rows {
        eprintln!(
            "{:<12} {:<13} {:>12} {:>12} {:>12} {:>7.3}x {} ({} moves, {} candidates)",
            r.name,
            r.model,
            r.base_cycles,
            r.default_cycles,
            r.tuned_cycles,
            r.speedup(),
            r.verdict,
            r.moves.len(),
            r.candidates,
        );
        let consistent = if r.is_win() {
            r.tuned_cycles < r.base_cycles
        } else {
            r.tuned_cycles >= r.base_cycles && r.best_candidate_cycles >= r.base_cycles
        };
        if !consistent {
            eprintln!("tune: INCONSISTENT ROW for {} {}", r.name, r.model);
            bad += 1;
        }
    }
    let stats = tuner.stats();
    eprintln!("cache: {} hits, {} disk hits, {} misses", stats.hits, stats.disk_hits, stats.misses);

    let report = render_report(
        config.seed,
        config.max_rounds,
        &config.io.fingerprint(),
        &config.ooo.fingerprint(),
        &rows,
    );
    print!("{report}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("tune: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
    }
    if bad > 0 {
        std::process::exit(1);
    }
}
