//! The `ssp-tune-report/1` document and the per-row `ssp-tune-row/1`
//! line encoding (what `ssp-serve` persists for `tune` requests).
//!
//! Rendering is fully deterministic: fields in fixed order, integers
//! only (speedup is rendered with four fixed decimals), moves in
//! acceptance order. Two tune runs over the same inputs produce
//! byte-identical documents regardless of worker count or cache
//! temperature.

use ssp_trace::TimelinessCounts;

/// Versioned schema name of the report document.
pub const REPORT_FORMAT: &str = "ssp-tune-report/1";
/// Versioned line encoding of one row.
pub const ROW_FORMAT: &str = "ssp-tune-row/1";

/// The outcome of tuning one workload on one machine model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TuneRow {
    /// Workload name.
    pub name: String,
    /// Target model name (`in-order` / `out-of-order`).
    pub model: String,
    /// Unadapted cycles on the target model.
    pub base_cycles: u64,
    /// Cycles of the default-options plan (baseline cycles if that
    /// plan is a no-op or was rejected).
    pub default_cycles: u64,
    /// The default plan emitted nothing.
    pub default_noop: bool,
    /// Cycles of the tuned plan (== `base_cycles` when the best plan
    /// is the no-op).
    pub tuned_cycles: u64,
    /// Slices in the tuned plan.
    pub tuned_slices: u64,
    /// `AdaptReport::plan_digest` of the tuned plan (`-` for no-op).
    pub tuned_plan_digest: String,
    /// `AdaptOptions::fingerprint` of the tuned options.
    pub tuned_opts: String,
    /// `win` (strictly below baseline) or `structural-cap`.
    pub verdict: String,
    /// Greedy rounds executed (including the plateau round).
    pub rounds: u64,
    /// Candidates evaluated (default plan included).
    pub candidates: u64,
    /// Clean candidates that emitted at least one slice.
    pub emitting_candidates: u64,
    /// Minimum target-model cycles over every clean candidate — the
    /// machine-checked evidence behind a `structural-cap` verdict
    /// (must be `>= base_cycles` there).
    pub best_candidate_cycles: u64,
    /// Figure-9 timeliness totals of the tuned plan on the target.
    pub timeliness: TimelinessCounts,
    /// Accepted moves: (knob label, cycles after accepting it).
    pub moves: Vec<(String, u64)>,
}

impl TuneRow {
    /// `base / tuned` (1.0 when the tuned plan is the baseline no-op).
    pub fn speedup(&self) -> f64 {
        self.base_cycles as f64 / self.tuned_cycles as f64
    }

    /// The tuned plan beat the baseline.
    pub fn is_win(&self) -> bool {
        self.verdict == "win"
    }
}

/// One row as a single JSON line.
pub fn row_json(r: &TuneRow) -> String {
    let moves: Vec<String> = r
        .moves
        .iter()
        .map(|(label, cycles)| format!("{{\"move\": \"{label}\", \"cycles\": {cycles}}}"))
        .collect();
    format!(
        concat!(
            "{{\"name\": \"{}\", \"model\": \"{}\", \"base_cycles\": {}, ",
            "\"default_cycles\": {}, \"default_noop\": {}, \"tuned_cycles\": {}, ",
            "\"tuned_slices\": {}, \"speedup\": {:.4}, \"verdict\": \"{}\", ",
            "\"rounds\": {}, \"candidates\": {}, \"emitting_candidates\": {}, ",
            "\"best_candidate_cycles\": {}, ",
            "\"timeliness\": {{\"early\": {}, \"timely\": {}, \"late\": {}, \"useless\": {}}}, ",
            "\"moves\": [{}], \"plan_digest\": \"{}\", \"tuned_opts\": \"{}\"}}"
        ),
        r.name,
        r.model,
        r.base_cycles,
        r.default_cycles,
        r.default_noop,
        r.tuned_cycles,
        r.tuned_slices,
        r.speedup(),
        r.verdict,
        r.rounds,
        r.candidates,
        r.emitting_candidates,
        r.best_candidate_cycles,
        r.timeliness.early,
        r.timeliness.timely,
        r.timeliness.late,
        r.timeliness.useless,
        moves.join(", "),
        r.tuned_plan_digest,
        r.tuned_opts,
    )
}

/// The full report document: schema header, run parameters, one row
/// per line.
pub fn render_report(
    seed: u64,
    max_rounds: usize,
    io_fp: &str,
    ooo_fp: &str,
    rows: &[TuneRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{REPORT_FORMAT}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"max_rounds\": {max_rounds},\n"));
    out.push_str(&format!("  \"io\": \"{io_fp}\",\n"));
    out.push_str(&format!("  \"ooo\": \"{ooo_fp}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", row_json(r)));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Encode one row in the key=value line format the serve store uses.
pub fn encode_row(r: &TuneRow) -> String {
    let mut out = format!(
        concat!(
            "{}\nname={}\nmodel={}\nbase_cycles={}\ndefault_cycles={}\n",
            "default_noop={}\ntuned_cycles={}\ntuned_slices={}\nplan_digest={}\n",
            "verdict={}\nrounds={}\ncandidates={}\nemitting_candidates={}\n",
            "best_candidate_cycles={}\ntimeliness={},{},{},{}\nopts={}\nmoves={}\n"
        ),
        ROW_FORMAT,
        r.name,
        r.model,
        r.base_cycles,
        r.default_cycles,
        r.default_noop,
        r.tuned_cycles,
        r.tuned_slices,
        r.tuned_plan_digest,
        r.verdict,
        r.rounds,
        r.candidates,
        r.emitting_candidates,
        r.best_candidate_cycles,
        r.timeliness.early,
        r.timeliness.timely,
        r.timeliness.late,
        r.timeliness.useless,
        r.tuned_opts,
        r.moves.len(),
    );
    for (label, cycles) in &r.moves {
        out.push_str(&format!("{cycles} {label}\n"));
    }
    out
}

fn field<'a>(lines: &mut impl Iterator<Item = &'a str>, name: &str) -> Option<&'a str> {
    let line = lines.next()?;
    let (k, v) = line.split_once('=')?;
    (k == name).then_some(v)
}

/// Decode [`encode_row`] output. `None` on any structural mismatch
/// (treat as a cache miss and recompute).
pub fn decode_row(text: &str) -> Option<TuneRow> {
    decode_row_stream(&mut text.lines())
}

/// Decode one row from a shared line cursor, consuming exactly the
/// lines [`encode_row`] produced — callers holding several
/// concatenated rows (the serve store's tune entry) call this per row.
pub fn decode_row_stream(lines: &mut std::str::Lines<'_>) -> Option<TuneRow> {
    if lines.next()? != ROW_FORMAT {
        return None;
    }
    let name = field(&mut *lines, "name")?.to_owned();
    let model = field(&mut *lines, "model")?.to_owned();
    let base_cycles = field(&mut *lines, "base_cycles")?.parse().ok()?;
    let default_cycles = field(&mut *lines, "default_cycles")?.parse().ok()?;
    let default_noop = field(&mut *lines, "default_noop")?.parse().ok()?;
    let tuned_cycles = field(&mut *lines, "tuned_cycles")?.parse().ok()?;
    let tuned_slices = field(&mut *lines, "tuned_slices")?.parse().ok()?;
    let tuned_plan_digest = field(&mut *lines, "plan_digest")?.to_owned();
    let verdict = field(&mut *lines, "verdict")?.to_owned();
    let rounds = field(&mut *lines, "rounds")?.parse().ok()?;
    let candidates = field(&mut *lines, "candidates")?.parse().ok()?;
    let emitting_candidates = field(&mut *lines, "emitting_candidates")?.parse().ok()?;
    let best_candidate_cycles = field(&mut *lines, "best_candidate_cycles")?.parse().ok()?;
    let mut counts = field(&mut *lines, "timeliness")?.split(',');
    let mut n = || counts.next().and_then(|v| v.parse().ok());
    let timeliness = TimelinessCounts { early: n()?, timely: n()?, late: n()?, useless: n()? };
    let tuned_opts = field(&mut *lines, "opts")?.to_owned();
    let count: usize = field(&mut *lines, "moves")?.parse().ok()?;
    let mut moves = Vec::with_capacity(count);
    for _ in 0..count {
        let (cycles, label) = lines.next()?.split_once(' ')?;
        moves.push((label.to_owned(), cycles.parse().ok()?));
    }
    Some(TuneRow {
        name,
        model,
        base_cycles,
        default_cycles,
        default_noop,
        tuned_cycles,
        tuned_slices,
        tuned_plan_digest,
        tuned_opts,
        verdict,
        rounds,
        candidates,
        emitting_candidates,
        best_candidate_cycles,
        timeliness,
        moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneRow {
        TuneRow {
            name: "em3d".to_owned(),
            model: "out-of-order".to_owned(),
            base_cycles: 98634,
            default_cycles: 139867,
            default_noop: false,
            tuned_cycles: 98509,
            tuned_slices: 2,
            tuned_plan_digest: "ab12cd34".to_owned(),
            tuned_opts: "ssp-adapt-options/1 coverage=0.99".to_owned(),
            verdict: "win".to_owned(),
            rounds: 4,
            candidates: 41,
            emitting_candidates: 30,
            best_candidate_cycles: 98509,
            timeliness: TimelinessCounts { early: 1, timely: 22, late: 3, useless: 4 },
            moves: vec![
                ("force_model=basic".to_owned(), 99537),
                ("coverage=0.99".to_owned(), 98738),
            ],
        }
    }

    #[test]
    fn row_roundtrips_through_the_codec() {
        let r = sample();
        assert_eq!(decode_row(&encode_row(&r)), Some(r.clone()));
        let bare = TuneRow { moves: Vec::new(), ..r };
        assert_eq!(decode_row(&encode_row(&bare)), Some(bare));
        assert_eq!(decode_row("not a row"), None);
    }

    #[test]
    fn report_rendering_is_stable() {
        let text = render_report(2002, 8, "io-fp", "ooo-fp", &[sample()]);
        assert!(text.starts_with("{\n  \"schema\": \"ssp-tune-report/1\",\n"));
        assert!(text.contains("\"seed\": 2002"));
        assert!(text.contains("\"verdict\": \"win\""));
        assert!(text.contains("\"speedup\": 1.0013"));
        assert!(text.contains("{\"move\": \"force_model=basic\", \"cycles\": 99537}"));
        // Render twice: byte-identical.
        assert_eq!(text, render_report(2002, 8, "io-fp", "ooo-fp", &[sample()]));
    }
}
