//! Closed-loop feedback-directed auto-tuning of the SSP post-pass tool.
//!
//! The one-shot experiment pipeline runs every workload through
//! [`AdaptOptions::default`] and reports whatever falls out — including
//! the pinned dead rows: treeadd.df adapts to a no-op (every candidate
//! slice is rejected for insufficient slack) and em3d/health regress on
//! the out-of-order model under the default chaining plans. This crate
//! closes the loop: it reads the Figure-9 prefetch-timeliness telemetry
//! of the *current* plan, maps the dominant signal to a small menu of
//! knob moves, evaluates every candidate (adapt → oracle-check →
//! simulate on both machine models), and greedily accepts the best
//! strict cycle improvement until the search plateaus or the round cap
//! is hit.
//!
//! # Telemetry signals → move menus
//!
//! | signal | meaning | menu |
//! |---|---|---|
//! | `noop` | tool emitted nothing | relax the gates: `min_slack`, `coverage`, size/depth caps, force a model |
//! | `mostly-late` | prefetches arrive after the consuming load | hoist: deepen chaining, raise region depth, predict colder branches |
//! | `mostly-early-useless` | prefetches are wasted work | prune: walk `chain_budget` down a ladder, cut coverage, force basic |
//! | `timely-capped` | prefetches land well but wins are thin | widen coverage, drop `min_slack`, try the other model |
//!
//! Whenever the current plan *regresses* against its own baseline the
//! prune and recovery menus are appended regardless of signal, so a
//! mis-signaled regression can still reach the empirically winning
//! plans (em3d wants `force_model=basic` + wider coverage; health wants
//! a tiny `chain_budget`).
//!
//! # Safety gates
//!
//! Every candidate goes through [`PostPassTool::run_with_profile`]
//! (which rejects on `ssp-lint` diagnostics and emit-verify failures)
//! and then through the fuzz oracle's
//! [`ssp_fuzz::oracle::check_adapted`] invariants: baseline
//! architectural equivalence on both machine models plus the
//! SSP-specific spec-store and spawn-leak checks. A candidate with any
//! violation is never accepted, no matter its cycle count.
//!
//! # Determinism and caching
//!
//! Move menus are generated in a fixed order, candidates are evaluated
//! with [`parallel::map_indexed`] (order-preserving), and acceptance
//! breaks ties by menu position — so a tune run is byte-identical
//! across worker counts. Every evaluation and telemetry read is
//! memoized in an instance-level sharded cache keyed by the workload
//! identity, both machine fingerprints, and the candidate's
//! [`AdaptOptions::fingerprint`]; attach a [`Store`] and a warm restart
//! replays the whole search from disk without re-simulating.

pub mod report;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ssp_bench::parallel;
use ssp_bench::persist::{fnv64, Store};
use ssp_core::{
    prefetch_targets, simulate_traced, AdaptError, AdaptOptions, MachineConfig, PostPassTool,
    Profile, SpModel,
};
use ssp_fuzz::oracle::{self, BaselineSnapshots};
use ssp_trace::TimelinessCounts;
use ssp_workloads::Workload;

pub use report::{render_report, TuneRow};

/// Workload builder seed shared with `ssp-bench`.
pub const SEED: u64 = ssp_bench::SEED;
/// Default cap on greedy rounds per (workload, model) pair.
pub const DEFAULT_MAX_ROUNDS: usize = 8;
/// Versioned encoding of one candidate evaluation.
pub const EVAL_FORMAT: &str = "ssp-tune-eval/1";
/// Versioned encoding of one telemetry read.
pub const TELEMETRY_FORMAT: &str = "ssp-tune-telemetry/1";
/// In-memory cache shards (same layout as `ssp_bench::cache`).
const SHARDS: usize = 16;

/// Everything a [`Tuner`] is parameterized over. The default mirrors
/// the one-shot experiment pipeline: paper machine models, [`SEED`],
/// `SSP_THREADS` workers.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Workload builder seed.
    pub seed: u64,
    /// In-order machine model (also the tool's profiling machine).
    pub io: MachineConfig,
    /// Out-of-order machine model.
    pub ooo: MachineConfig,
    /// Greedy rounds per (workload, model) pair.
    pub max_rounds: usize,
    /// Worker threads candidate evaluation fans out across.
    pub workers: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: SEED,
            io: MachineConfig::in_order(),
            ooo: MachineConfig::out_of_order(),
            max_rounds: DEFAULT_MAX_ROUNDS,
            workers: parallel::threads(),
        }
    }
}

/// Which machine model the tuner is optimizing cycles on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetModel {
    /// Optimize in-order cycles.
    InOrder,
    /// Optimize out-of-order cycles.
    OutOfOrder,
}

impl TargetModel {
    /// Both models, in report order.
    pub const BOTH: [TargetModel; 2] = [TargetModel::InOrder, TargetModel::OutOfOrder];

    /// Stable name used in keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            TargetModel::InOrder => "in-order",
            TargetModel::OutOfOrder => "out-of-order",
        }
    }
}

/// Dominant Figure-9 telemetry signal of the current plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Signal {
    /// The tool emitted no slices — the plan IS the baseline.
    Noop,
    /// Late dominates: prefetches arrive after the consuming load.
    MostlyLate,
    /// Early + useless dominate: prefetched work is wasted.
    MostlyEarlyUseless,
    /// Timely dominates but the win is thin or negative.
    TimelyCapped,
}

impl Signal {
    /// Stable name used in docs and traces.
    pub fn name(self) -> &'static str {
        match self {
            Signal::Noop => "noop",
            Signal::MostlyLate => "mostly-late",
            Signal::MostlyEarlyUseless => "mostly-early-useless",
            Signal::TimelyCapped => "timely-capped",
        }
    }
}

/// Classify summed timeliness counts into the dominant [`Signal`].
/// Zero classified prefetches (slices ran but nothing was consumed or
/// even issued) reads as wasted work.
pub fn classify(t: &TimelinessCounts) -> Signal {
    let wasted = t.early + t.useless;
    if t.total() == 0 {
        return Signal::MostlyEarlyUseless;
    }
    if t.late >= wasted && t.late >= t.timely {
        Signal::MostlyLate
    } else if wasted >= t.timely {
        Signal::MostlyEarlyUseless
    } else {
        Signal::TimelyCapped
    }
}

fn mv(
    base: &AdaptOptions,
    label: &str,
    f: impl FnOnce(&mut AdaptOptions),
) -> (String, AdaptOptions) {
    let mut o = base.clone();
    f(&mut o);
    (label.to_owned(), o)
}

/// Descending `chain_budget` candidates: coarse divisions first, then
/// the absolute low end — health's win lives at budget 3, which plain
/// halving from 512 never reaches in one round.
fn budget_ladder(b: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for c in [b / 2, b / 8, b / 32, 8, 6, 4, 3, 2] {
        if c >= 1 && c < b && !out.contains(&c) {
            out.push(c);
        }
    }
    out.truncate(6);
    out
}

fn enable_menu(o: &AdaptOptions) -> Vec<(String, AdaptOptions)> {
    vec![
        mv(o, "min_slack=0", |o| o.select.min_slack = 0),
        mv(o, "min_slack=-1000", |o| o.select.min_slack = -1000),
        mv(o, "coverage=0.99", |o| o.coverage = 0.99),
        mv(o, "max_slice_size=128", |o| o.select.max_slice_size = 128),
        mv(o, "max_region_depth=5", |o| o.select.max_region_depth = 5),
        mv(o, "force_model=basic", |o| o.select.force_model = Some(SpModel::Basic)),
        mv(o, "force_model=chaining", |o| o.select.force_model = Some(SpModel::Chaining)),
    ]
}

fn hoist_menu(o: &AdaptOptions) -> Vec<(String, AdaptOptions)> {
    let mut v = Vec::new();
    let b = (o.emit.chain_budget * 2).min(4096);
    if b > o.emit.chain_budget {
        v.push(mv(o, &format!("chain_budget={b}"), |o| o.emit.chain_budget = b));
    }
    if o.select.max_region_depth < 8 {
        let d = o.select.max_region_depth + 1;
        v.push(mv(o, &format!("max_region_depth={d}"), |o| o.select.max_region_depth = d));
    }
    v.push(mv(o, "predict_threshold=0.7", |o| o.select.sched.predict_threshold = 0.7));
    if !o.select.sched.loop_rotation {
        v.push(mv(o, "loop_rotation=true", |o| o.select.sched.loop_rotation = true));
    }
    v.push(mv(o, "force_model=chaining", |o| o.select.force_model = Some(SpModel::Chaining)));
    v
}

fn prune_menu(o: &AdaptOptions) -> Vec<(String, AdaptOptions)> {
    let mut v = Vec::new();
    for b in budget_ladder(o.emit.chain_budget) {
        v.push(mv(o, &format!("chain_budget={b}"), |o| o.emit.chain_budget = b));
    }
    v.push(mv(o, "coverage=0.7", |o| o.coverage = 0.7));
    v.push(mv(o, "force_model=basic", |o| o.select.force_model = Some(SpModel::Basic)));
    v.push(mv(o, "predict_threshold=1.1", |o| o.select.sched.predict_threshold = 1.1));
    v.push(mv(o, "min_block_count=8", |o| o.slice.min_block_count = 8));
    v.push(mv(o, "max_slice_size=32", |o| o.select.max_slice_size = 32));
    v
}

fn recover_menu(o: &AdaptOptions) -> Vec<(String, AdaptOptions)> {
    let mut v = vec![
        mv(o, "coverage=0.99", |o| o.coverage = 0.99),
        mv(o, "min_slack=0", |o| o.select.min_slack = 0),
        mv(o, "force_model=basic", |o| o.select.force_model = Some(SpModel::Basic)),
    ];
    if o.select.max_region_depth < 8 {
        let d = o.select.max_region_depth + 1;
        v.push(mv(o, &format!("max_region_depth={d}"), |o| o.select.max_region_depth = d));
    }
    let b = o.emit.chain_budget / 2;
    if b >= 1 {
        v.push(mv(o, &format!("chain_budget={b}"), |o| o.emit.chain_budget = b));
    }
    v
}

/// The candidate menu for one greedy round: the signal's own menu,
/// plus — when the current plan regresses against baseline — the full
/// prune + recovery menus, so every known escape hatch stays reachable
/// regardless of which signal dominates. Deduplicated by
/// [`AdaptOptions::fingerprint`] with the current options excluded;
/// order is deterministic (menu order, first occurrence wins).
pub fn moves_for(
    signal: Signal,
    current: &AdaptOptions,
    regressing: bool,
) -> Vec<(String, AdaptOptions)> {
    let mut menu = match signal {
        Signal::Noop => enable_menu(current),
        Signal::MostlyLate => hoist_menu(current),
        Signal::MostlyEarlyUseless => prune_menu(current),
        Signal::TimelyCapped => recover_menu(current),
    };
    if regressing {
        menu.extend(prune_menu(current));
        menu.extend(recover_menu(current));
    }
    let mut seen = vec![current.fingerprint()];
    menu.retain(|(_, o)| {
        let f = o.fingerprint();
        if seen.contains(&f) {
            false
        } else {
            seen.push(f);
            true
        }
    });
    menu
}

/// Outcome of evaluating one candidate option set on one workload:
/// adapt (lint + verify gated), oracle invariants on both machine
/// models, and cycle counts. What the tuner's cache stores.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Eval {
    /// `Some("lint")` / `Some("verify")` when the tool itself rejected
    /// the candidate; such candidates are never accepted.
    pub adapt_error: Option<String>,
    /// Slices emitted (0 = no-op plan).
    pub slices: u64,
    /// Delinquent loads skipped.
    pub skipped: u64,
    /// `AdaptReport::plan_digest` of the emitted plan (`-` if no-op or
    /// the adapt failed).
    pub plan_digest: String,
    /// Deduplicated oracle violation kinds, detection order.
    pub violations: Vec<String>,
    /// Adapted cycles on the in-order model (baseline cycles if no-op).
    pub io_cycles: u64,
    /// Adapted cycles on the out-of-order model (baseline if no-op).
    pub ooo_cycles: u64,
}

impl Eval {
    /// Adapt succeeded and the oracle found nothing.
    pub fn clean(&self) -> bool {
        self.adapt_error.is_none() && self.violations.is_empty()
    }

    /// The plan emitted at least one slice.
    pub fn emitting(&self) -> bool {
        self.slices > 0
    }

    /// Cycles on the tuning target's model.
    pub fn cycles(&self, target: TargetModel) -> u64 {
        match target {
            TargetModel::InOrder => self.io_cycles,
            TargetModel::OutOfOrder => self.ooo_cycles,
        }
    }
}

fn encode_eval(e: &Eval) -> String {
    let viol = if e.violations.is_empty() { "-".to_owned() } else { e.violations.join(",") };
    format!(
        "{EVAL_FORMAT}\nadapt_error={}\nslices={}\nskipped={}\nplan_digest={}\nviolations={}\nio_cycles={}\nooo_cycles={}\n",
        e.adapt_error.as_deref().unwrap_or("-"),
        e.slices,
        e.skipped,
        e.plan_digest,
        viol,
        e.io_cycles,
        e.ooo_cycles,
    )
}

fn field<'a>(lines: &mut impl Iterator<Item = &'a str>, name: &str) -> Option<&'a str> {
    let line = lines.next()?;
    let (k, v) = line.split_once('=')?;
    (k == name).then_some(v)
}

fn decode_eval(text: &str) -> Option<Eval> {
    let mut lines = text.lines();
    if lines.next()? != EVAL_FORMAT {
        return None;
    }
    let adapt_error = match field(&mut lines, "adapt_error")? {
        "-" => None,
        e => Some(e.to_owned()),
    };
    let slices = field(&mut lines, "slices")?.parse().ok()?;
    let skipped = field(&mut lines, "skipped")?.parse().ok()?;
    let plan_digest = field(&mut lines, "plan_digest")?.to_owned();
    let violations = match field(&mut lines, "violations")? {
        "-" => Vec::new(),
        v => v.split(',').map(str::to_owned).collect(),
    };
    let io_cycles = field(&mut lines, "io_cycles")?.parse().ok()?;
    let ooo_cycles = field(&mut lines, "ooo_cycles")?.parse().ok()?;
    Some(Eval { adapt_error, slices, skipped, plan_digest, violations, io_cycles, ooo_cycles })
}

/// Traced-simulation summary of one plan on one machine model: the
/// Figure-9 ingredients the signal classifier feeds on.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TelemetrySummary {
    /// `chk.c` executions that fired.
    pub triggers_fired: u64,
    /// Speculative threads started.
    pub slices_spawned: u64,
    /// Prefetching accesses issued by speculative threads.
    pub prefetches_issued: u64,
    /// Per-load timeliness histograms (raw tag, counts), sorted.
    pub per_load: Vec<(u32, TimelinessCounts)>,
}

impl TelemetrySummary {
    /// Sum of all per-load histograms.
    pub fn totals(&self) -> TimelinessCounts {
        let mut t = TimelinessCounts::default();
        for (_, h) in &self.per_load {
            t.merge(h);
        }
        t
    }
}

fn encode_telemetry(t: &TelemetrySummary) -> String {
    let mut out = format!(
        "{TELEMETRY_FORMAT}\ntriggers_fired={}\nslices_spawned={}\nprefetches_issued={}\nloads={}\n",
        t.triggers_fired,
        t.slices_spawned,
        t.prefetches_issued,
        t.per_load.len(),
    );
    for (tag, h) in &t.per_load {
        out.push_str(&format!("{tag} {} {} {} {}\n", h.early, h.timely, h.late, h.useless));
    }
    out
}

fn decode_telemetry(text: &str) -> Option<TelemetrySummary> {
    let mut lines = text.lines();
    if lines.next()? != TELEMETRY_FORMAT {
        return None;
    }
    let triggers_fired = field(&mut lines, "triggers_fired")?.parse().ok()?;
    let slices_spawned = field(&mut lines, "slices_spawned")?.parse().ok()?;
    let prefetches_issued = field(&mut lines, "prefetches_issued")?.parse().ok()?;
    let loads: usize = field(&mut lines, "loads")?.parse().ok()?;
    let mut per_load = Vec::with_capacity(loads);
    for _ in 0..loads {
        let mut it = lines.next()?.split(' ');
        let tag = it.next()?.parse().ok()?;
        let mut n = || it.next().and_then(|v| v.parse().ok());
        let h = TimelinessCounts { early: n()?, timely: n()?, late: n()?, useless: n()? };
        per_load.push((tag, h));
    }
    Some(TelemetrySummary { triggers_fired, slices_spawned, prefetches_issued, per_load })
}

type Shard = Mutex<HashMap<String, Arc<OnceLock<String>>>>;

/// Instance-based auto-tuner (the `ssp-serve` pattern: "restart the
/// tuner" in a test is a second `Tuner` on the same store directory).
pub struct Tuner {
    config: TuneConfig,
    store: Option<Store>,
    shards: Vec<Shard>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

/// Schedule-independent cache counters of a [`Tuner`] instance:
/// `misses` counts distinct keys computed, `disk_hits` distinct keys
/// loaded from the store, `hits` everything else.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TunerStats {
    /// In-memory answers.
    pub hits: u64,
    /// Distinct keys loaded from the persistent store.
    pub disk_hits: u64,
    /// Distinct keys computed from scratch.
    pub misses: u64,
}

impl Tuner {
    /// A tuner with no persistent store (memory-only memoization).
    pub fn new(config: TuneConfig) -> Tuner {
        Tuner {
            config,
            store: None,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Attach a persistent store: memory misses probe it, computed
    /// evaluations are written back.
    pub fn with_store(mut self, store: Store) -> Tuner {
        self.store = Some(store);
        self
    }

    /// The configuration this instance tunes under.
    pub fn config(&self) -> &TuneConfig {
        &self.config
    }

    /// Current cache counters.
    pub fn stats(&self) -> TunerStats {
        TunerStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn answer(&self, key: &str, compute: impl FnOnce() -> String) -> String {
        let shard = &self.shards[(fnv64(key) as usize) % SHARDS];
        let cell = shard.lock().expect("shard poisoned").entry(key.to_owned()).or_default().clone();
        // 0 = memory hit, 1 = disk hit, 2 = computed.
        let mut source = 0u8;
        let payload = cell.get_or_init(|| {
            if let Some(store) = &self.store {
                if let Some(text) = store.load(&Store::shard_of(key), key) {
                    source = 1;
                    return text;
                }
            }
            source = 2;
            let text = compute();
            if let Some(store) = &self.store {
                if let Err(e) = store.save(&Store::shard_of(key), key, &text) {
                    eprintln!("ssp-tune: store write failed for {key:?}: {e}");
                }
            }
            text
        });
        match source {
            0 => &self.hits,
            1 => &self.disk_hits,
            _ => &self.misses,
        }
        .fetch_add(1, Ordering::Relaxed);
        payload.clone()
    }

    fn identity(&self, w: &Workload) -> String {
        format!(
            "name={} seed={} next_tag={} image_len={} io={} ooo={}",
            w.name,
            w.seed,
            w.program.next_tag,
            w.program.image.len(),
            self.config.io.fingerprint(),
            self.config.ooo.fingerprint(),
        )
    }

    /// Evaluate one candidate option set: adapt with the shared
    /// profile, run the oracle gate, simulate on both models. Memoized
    /// by workload identity + machine fingerprints + options
    /// fingerprint.
    pub fn evaluate(
        &self,
        w: &Workload,
        profile: &Profile,
        base: &BaselineSnapshots,
        opts: &AdaptOptions,
    ) -> Eval {
        let key = format!("tune-eval {} {}", self.identity(w), opts.fingerprint());
        let payload = self.answer(&key, || encode_eval(&self.compute_eval(w, profile, base, opts)));
        decode_eval(&payload).unwrap_or_else(|| self.compute_eval(w, profile, base, opts))
    }

    fn compute_eval(
        &self,
        w: &Workload,
        profile: &Profile,
        base: &BaselineSnapshots,
        opts: &AdaptOptions,
    ) -> Eval {
        let tool = PostPassTool::new(self.config.io.clone()).with_options(opts.clone());
        match tool.run_with_profile(&w.program, profile.clone()) {
            Err(e) => Eval {
                adapt_error: Some(
                    match e {
                        AdaptError::Lint(_) => "lint",
                        AdaptError::EmitVerify(_) => "verify",
                    }
                    .to_owned(),
                ),
                slices: 0,
                skipped: 0,
                plan_digest: "-".to_owned(),
                violations: Vec::new(),
                io_cycles: 0,
                ooo_cycles: 0,
            },
            Ok(adapted) => {
                let slices = adapted.report.slice_count() as u64;
                let skipped = adapted.report.skipped.len() as u64;
                if adapted.report.is_noop() {
                    return Eval {
                        adapt_error: None,
                        slices,
                        skipped,
                        plan_digest: "-".to_owned(),
                        violations: Vec::new(),
                        io_cycles: base.io.0.cycles,
                        ooo_cycles: base.ooo.0.cycles,
                    };
                }
                let (violations, io_res, ooo_res) = oracle::check_adapted(
                    &adapted.program,
                    base,
                    &self.config.io,
                    &self.config.ooo,
                );
                let mut kinds: Vec<String> = Vec::new();
                for v in &violations {
                    if !kinds.iter().any(|k| k == v.kind) {
                        kinds.push(v.kind.to_owned());
                    }
                }
                Eval {
                    adapt_error: None,
                    slices,
                    skipped,
                    plan_digest: adapted.report.plan_digest(),
                    violations: kinds,
                    io_cycles: io_res.cycles,
                    ooo_cycles: ooo_res.cycles,
                }
            }
        }
    }

    /// Traced-simulation telemetry of `opts`'s plan on `target`.
    /// Memoized like [`Tuner::evaluate`], additionally keyed by the
    /// target model.
    pub fn telemetry(
        &self,
        w: &Workload,
        profile: &Profile,
        opts: &AdaptOptions,
        target: TargetModel,
    ) -> TelemetrySummary {
        let key = format!(
            "tune-telemetry {} target={} {}",
            self.identity(w),
            target.name(),
            opts.fingerprint()
        );
        let payload = self
            .answer(&key, || encode_telemetry(&self.compute_telemetry(w, profile, opts, target)));
        decode_telemetry(&payload)
            .unwrap_or_else(|| self.compute_telemetry(w, profile, opts, target))
    }

    fn compute_telemetry(
        &self,
        w: &Workload,
        profile: &Profile,
        opts: &AdaptOptions,
        target: TargetModel,
    ) -> TelemetrySummary {
        let tool = PostPassTool::new(self.config.io.clone()).with_options(opts.clone());
        let Ok(adapted) = tool.run_with_profile(&w.program, profile.clone()) else {
            return TelemetrySummary::default();
        };
        if adapted.report.is_noop() {
            return TelemetrySummary::default();
        }
        let targets = prefetch_targets(&adapted);
        let cfg = match target {
            TargetModel::InOrder => &self.config.io,
            TargetModel::OutOfOrder => &self.config.ooo,
        };
        let (_, trace) = simulate_traced(&adapted.program, cfg, &targets);
        TelemetrySummary {
            triggers_fired: trace.triggers_fired,
            slices_spawned: trace.slices_spawned,
            prefetches_issued: trace.prefetches_issued,
            per_load: trace.per_load,
        }
    }

    /// Run the closed loop for one workload on one target model.
    ///
    /// Guarantees encoded in the returned [`TuneRow`]:
    ///
    /// * the tuned plan is lint-clean and oracle-clean (only clean
    ///   candidates are ever accepted);
    /// * `verdict == "win"` iff `tuned_cycles < base_cycles`;
    /// * `verdict == "structural-cap"` implies
    ///   `best_candidate_cycles >= base_cycles`: *no* evaluated clean
    ///   candidate beat the baseline (checked, not asserted away).
    pub fn tune_workload(&self, w: &Workload, target: TargetModel) -> TuneRow {
        let profile = ssp_core::profile(&w.program, &self.config.io);
        let base = oracle::baseline_snapshots(&w.program, &self.config.io, &self.config.ooo);
        let base_cycles = match target {
            TargetModel::InOrder => base.io.0.cycles,
            TargetModel::OutOfOrder => base.ooo.0.cycles,
        };
        let default_opts = AdaptOptions::default();
        let default_eval = self.evaluate(w, &profile, &base, &default_opts);

        let mut candidates = 1u64;
        let mut emitting = u64::from(default_eval.clean() && default_eval.emitting());
        let mut best_candidate =
            if default_eval.clean() { default_eval.cycles(target) } else { u64::MAX };

        // The search starts from the default plan; a dirty default
        // (tool bug) degrades to the baseline no-op so the loop still
        // has a clean current point.
        let mut cur_opts = default_opts.clone();
        let mut cur_eval = if default_eval.clean() {
            default_eval.clone()
        } else {
            Eval {
                adapt_error: None,
                slices: 0,
                skipped: 0,
                plan_digest: "-".to_owned(),
                violations: Vec::new(),
                io_cycles: base.io.0.cycles,
                ooo_cycles: base.ooo.0.cycles,
            }
        };

        let mut moves: Vec<(String, u64)> = Vec::new();
        let mut rounds = 0u64;
        for _ in 0..self.config.max_rounds {
            rounds += 1;
            let improving = cur_eval.cycles(target) < base_cycles;
            let signal = if !cur_eval.emitting() {
                Signal::Noop
            } else {
                classify(&self.telemetry(w, &profile, &cur_opts, target).totals())
            };
            let menu = moves_for(signal, &cur_opts, !improving);
            if menu.is_empty() {
                break;
            }
            let evals = parallel::map_indexed(&menu, self.config.workers, |_, (_, o)| {
                self.evaluate(w, &profile, &base, o)
            });
            let mut accepted: Option<usize> = None;
            for (i, e) in evals.iter().enumerate() {
                candidates += 1;
                if !e.clean() {
                    continue;
                }
                if e.emitting() {
                    emitting += 1;
                }
                best_candidate = best_candidate.min(e.cycles(target));
                let bar = match accepted {
                    None => cur_eval.cycles(target),
                    Some(j) => evals[j].cycles(target),
                };
                if e.cycles(target) < bar {
                    accepted = Some(i);
                }
            }
            match accepted {
                None => break,
                Some(i) => {
                    cur_opts = menu[i].1.clone();
                    cur_eval = evals[i].clone();
                    moves.push((menu[i].0.clone(), cur_eval.cycles(target)));
                }
            }
        }

        let tuned_cycles = cur_eval.cycles(target);
        let verdict = if tuned_cycles < base_cycles { "win" } else { "structural-cap" };
        // The machine-checked half of a structural-cap verdict: greedy
        // acceptance takes the round minimum, so any clean candidate
        // below baseline forces a win unless the loop is buggy.
        assert!(
            verdict == "win" || best_candidate >= base_cycles,
            "structural-cap verdict with a sub-baseline candidate ({best_candidate} < {base_cycles})"
        );
        let timeliness = if cur_eval.emitting() {
            self.telemetry(w, &profile, &cur_opts, target).totals()
        } else {
            TimelinessCounts::default()
        };
        TuneRow {
            name: w.name.to_owned(),
            model: target.name().to_owned(),
            base_cycles,
            default_cycles: if default_eval.clean() {
                default_eval.cycles(target)
            } else {
                base_cycles
            },
            default_noop: !default_eval.emitting(),
            tuned_cycles,
            tuned_slices: cur_eval.slices,
            tuned_plan_digest: cur_eval.plan_digest.clone(),
            tuned_opts: cur_opts.fingerprint(),
            verdict: verdict.to_owned(),
            rounds,
            candidates,
            emitting_candidates: emitting,
            best_candidate_cycles: best_candidate,
            timeliness,
            moves,
        }
    }

    /// [`Tuner::tune_workload`] over every workload on both machine
    /// models, in suite order (rows: workload-major, in-order first).
    pub fn tune_suite(&self, ws: &[Workload]) -> Vec<TuneRow> {
        let mut rows = Vec::new();
        for w in ws {
            for t in TargetModel::BOTH {
                rows.push(self.tune_workload(w, t));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_dominant_counts_to_signals() {
        let t = |early, timely, late, useless| TimelinessCounts { early, timely, late, useless };
        assert_eq!(classify(&t(0, 0, 0, 0)), Signal::MostlyEarlyUseless);
        assert_eq!(classify(&t(0, 1, 5, 0)), Signal::MostlyLate);
        assert_eq!(classify(&t(4, 1, 2, 3)), Signal::MostlyEarlyUseless);
        assert_eq!(classify(&t(1, 10, 2, 1)), Signal::TimelyCapped);
        // Ties lean toward acting on lateness first.
        assert_eq!(classify(&t(1, 1, 1, 0)), Signal::MostlyLate);
    }

    #[test]
    fn budget_ladder_reaches_the_small_budgets() {
        assert_eq!(budget_ladder(512), vec![256, 64, 16, 8, 6, 4]);
        assert_eq!(budget_ladder(4), vec![2, 3]);
        assert_eq!(budget_ladder(3), vec![1, 2]);
        assert_eq!(budget_ladder(1), Vec::<u64>::new());
    }

    #[test]
    fn moves_exclude_the_current_fingerprint_and_duplicates() {
        let cur = AdaptOptions::default();
        let menu = moves_for(Signal::Noop, &cur, true);
        let cur_fp = cur.fingerprint();
        let mut seen = Vec::new();
        for (_, o) in &menu {
            let f = o.fingerprint();
            assert_ne!(f, cur_fp);
            assert!(!seen.contains(&f), "duplicate candidate {f}");
            seen.push(f);
        }
        // The regression escape hatches are present regardless of menu.
        assert!(menu.iter().any(|(l, _)| l == "force_model=basic"));
        assert!(menu.iter().any(|(l, _)| l == "coverage=0.99"));
        assert!(menu.iter().any(|(l, _)| l == "chain_budget=4"));
    }

    #[test]
    fn eval_roundtrips_through_the_codec() {
        let e = Eval {
            adapt_error: None,
            slices: 3,
            skipped: 2,
            plan_digest: "ab12".to_owned(),
            violations: vec!["reg-mismatch".to_owned(), "spec-store".to_owned()],
            io_cycles: 1234,
            ooo_cycles: 987,
        };
        assert_eq!(decode_eval(&encode_eval(&e)), Some(e.clone()));
        let err = Eval { adapt_error: Some("lint".to_owned()), violations: Vec::new(), ..e };
        assert_eq!(decode_eval(&encode_eval(&err)), Some(err));
        assert_eq!(decode_eval("garbage"), None);
    }

    #[test]
    fn telemetry_roundtrips_through_the_codec() {
        let t = TelemetrySummary {
            triggers_fired: 9,
            slices_spawned: 7,
            prefetches_issued: 40,
            per_load: vec![
                (3, TimelinessCounts { early: 1, timely: 2, late: 3, useless: 4 }),
                (9, TimelinessCounts { early: 0, timely: 5, late: 0, useless: 1 }),
            ],
        };
        let decoded = decode_telemetry(&encode_telemetry(&t)).expect("roundtrip");
        assert_eq!(decoded, t);
        assert_eq!(decoded.totals().total(), 16);
        assert_eq!(decode_telemetry(""), None);
    }
}
