//! Tier-1 property: a tune run is a pure function of its inputs. The
//! `ssp-tune-report/1` document must be byte-identical across worker
//! counts and across a warm persistent-store restart (a second
//! [`Tuner`] on the same directory), mirroring the `ssp-serve`
//! differential suite.
//!
//! Machine configs are cycle-capped because tier-1 runs this in a
//! debug build; capped configs fingerprint differently from the paper
//! configs, so these cache entries can never pollute a real store.

use ssp_bench::persist::Store;
use ssp_core::MachineConfig;
use ssp_tune::report::{decode_row, encode_row};
use ssp_tune::{render_report, TuneConfig, Tuner, SEED};
use std::path::PathBuf;

const MAX_CYCLES: u64 = 120_000;
/// A small, shape-diverse slice of the suite: one workload whose
/// default plan regresses out-of-order (em3d) and the pinned
/// default-no-op workload (treeadd.df). Two is enough for the
/// determinism properties; the full-suite outcomes live in the bench
/// diagnostics and the committed BENCH_9 report.
const WORKLOADS: [&str; 2] = ["em3d", "treeadd.df"];

fn capped_config(workers: usize) -> TuneConfig {
    let mut io = MachineConfig::in_order();
    let mut ooo = MachineConfig::out_of_order();
    io.max_cycles = MAX_CYCLES;
    ooo.max_cycles = MAX_CYCLES;
    TuneConfig { seed: SEED, io, ooo, max_rounds: 2, workers }
}

fn workloads(cfg: &TuneConfig) -> Vec<ssp_workloads::Workload> {
    WORKLOADS.iter().map(|n| ssp_workloads::by_name(n, cfg.seed).expect("suite name")).collect()
}

fn report_for(tuner: &Tuner) -> String {
    let cfg = tuner.config().clone();
    let rows = tuner.tune_suite(&workloads(&cfg));
    render_report(cfg.seed, cfg.max_rounds, &cfg.io.fingerprint(), &cfg.ooo.fingerprint(), &rows)
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ssp-tune-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let serial = report_for(&Tuner::new(capped_config(1)));
    let parallel = report_for(&Tuner::new(capped_config(4)));
    assert_eq!(serial, parallel, "tune report depends on worker count");
    assert!(serial.starts_with("{\n  \"schema\": \"ssp-tune-report/1\""));
}

#[test]
fn warm_store_restart_replays_byte_identically() {
    let dir = tmpdir("restart");

    let cold = Tuner::new(capped_config(2)).with_store(Store::open(&dir).expect("open store"));
    let cold_report = report_for(&cold);
    let cold_stats = cold.stats();
    assert!(cold_stats.misses > 0, "cold run must compute something");
    assert_eq!(cold_stats.disk_hits, 0, "cold run found a dirty store");

    // "Restart": a fresh instance, empty memory, same directory.
    let warm = Tuner::new(capped_config(2)).with_store(Store::open(&dir).expect("reopen store"));
    let warm_report = report_for(&warm);
    let warm_stats = warm.stats();

    assert_eq!(cold_report, warm_report, "warm restart drifted from the cold run");
    assert_eq!(warm_stats.misses, 0, "warm restart re-computed evaluations");
    assert_eq!(
        warm_stats.disk_hits, cold_stats.misses,
        "every cold computation should be answered from disk on restart"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn produced_rows_roundtrip_through_the_row_codec() {
    let cfg = capped_config(2);
    let tuner = Tuner::new(cfg.clone());
    let w = ssp_workloads::by_name("em3d", cfg.seed).expect("suite name");
    for target in ssp_tune::TargetModel::BOTH {
        let row = tuner.tune_workload(&w, target);
        let decoded = decode_row(&encode_row(&row));
        assert_eq!(decoded.as_ref(), Some(&row), "row codec drift for {} {}", row.name, row.model);
    }
}
