//! Structural tests of the emitted SSP code: the Figure-7 layout, the
//! chaining vs. basic slice shapes, prefetch demotion, and the skip
//! conditions.

use ssp_codegen::{adapt, AdaptOptions, SkipReason};
use ssp_ir::{BlockId, CmpKind, Op, Operand, Program, ProgramBuilder, Reg};
use ssp_sim::MachineConfig;

fn chase(n: u64, use_value: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        let perm = (i * 7919) % n;
        pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
        pb.data_word(0x0800_0000 + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (ptr, k, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69));
    f.at(e).movi(ptr, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64).movi(sum, 0).br(body);
    let mut c = f.at(body).ld(u, ptr, 0).ld(v, u, 0);
    if use_value {
        c = c.add(sum, sum, Operand::Reg(v));
    }
    c.add(ptr, ptr, 64).cmp(CmpKind::Lt, p, ptr, Operand::Reg(k)).br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    pb.finish_with(main)
}

fn adapt_default(prog: &Program) -> (Program, ssp_codegen::AdaptReport) {
    let mc = MachineConfig::in_order();
    let profile = ssp_sim::profile(prog, &mc);
    adapt(prog, &profile, &mc, &AdaptOptions::default()).expect("adaptation succeeds")
}

fn block_ops(prog: &Program, f: ssp_ir::FuncId, b: BlockId) -> Vec<&Op> {
    prog.func(f).block(b).insts.iter().map(|i| &i.op).collect()
}

#[test]
fn stub_block_has_figure7_shape() {
    let prog = chase(300, true);
    let (out, report) = adapt_default(&prog);
    assert_eq!(report.slice_count(), 1);
    let s = &report.slices[0];
    let ops = block_ops(&out, s.trigger.func, s.stub);
    // lib.alloc, one lib.st per live-in, budget movi + lib.st (chaining),
    // spawn, resume br.
    assert!(matches!(ops[0], Op::LibAlloc { .. }));
    let st_count = ops.iter().filter(|o| matches!(o, Op::LibSt { .. })).count();
    assert_eq!(st_count, s.live_ins.len() + 1, "live-ins plus the chain budget");
    assert!(ops.iter().any(|o| matches!(o, Op::Movi { .. })), "budget constant");
    assert!(ops.iter().any(|o| matches!(o, Op::Spawn { .. })));
    assert!(matches!(ops.last().unwrap(), Op::Br { .. }), "resume branch last");
    // The stub block is an attachment; the slice entry too.
    assert!(out.func(s.trigger.func).block(s.stub).attachment);
    assert!(out.func(s.trigger.func).block(s.slice_entry).attachment);
}

#[test]
fn chaining_slice_reads_live_ins_then_frees_slot() {
    let prog = chase(300, true);
    let (out, report) = adapt_default(&prog);
    let s = &report.slices[0];
    let ops = block_ops(&out, s.trigger.func, s.slice_entry);
    // live-in loads (one per live-in + budget), then lib.free.
    let ld_count = ops.iter().filter(|o| matches!(o, Op::LibLd { .. })).count();
    assert_eq!(ld_count, s.live_ins.len() + 1);
    let free_pos = ops.iter().position(|o| matches!(o, Op::LibFree { .. })).unwrap();
    assert!(free_pos >= ld_count, "free only after all live-ins are read");
    // Somewhere in the slice blocks: a spawn back to the entry and a kill.
    let func = out.func(s.trigger.func);
    let all_attachment_ops: Vec<&Op> = func
        .blocks
        .iter()
        .filter(|b| b.attachment)
        .flat_map(|b| b.insts.iter().map(|i| &i.op))
        .collect();
    assert!(all_attachment_ops
        .iter()
        .any(|o| matches!(o, Op::Spawn { entry, .. } if *entry == s.slice_entry)));
    assert!(all_attachment_ops.iter().any(|o| matches!(o, Op::KillThread)));
}

#[test]
fn dead_value_root_becomes_prefetch_used_value_stays_load() {
    // When the loaded value feeds the sum, the cloned root must stay a
    // load; when it is dead, it must be demoted to lfetch.
    for use_value in [true, false] {
        let prog = chase(300, use_value);
        let (out, report) = adapt_default(&prog);
        let s = &report.slices[0];
        let func = out.func(s.trigger.func);
        let slice_ops: Vec<&Op> = func
            .blocks
            .iter()
            .filter(|b| b.attachment)
            .flat_map(|b| b.insts.iter().map(|i| &i.op))
            .collect();
        let lfetches = slice_ops.iter().filter(|o| matches!(o, Op::Lfetch { .. })).count();
        assert!(
            lfetches >= 1,
            "use_value={use_value}: delinquent load demoted to a prefetch somewhere"
        );
        assert!(!slice_ops.iter().any(|o| o.is_store()), "slices never contain stores");
    }
}

#[test]
fn trigger_split_preserves_main_path() {
    let prog = chase(300, true);
    let (out, report) = adapt_default(&prog);
    let s = &report.slices[0];
    // The trigger block ends with chk.c -> br(resume); chk.c points at
    // the stub.
    let tb = block_ops(&out, s.trigger.func, s.trigger.block);
    let chk_pos = tb.iter().position(|o| matches!(o, Op::ChkC { .. })).unwrap();
    assert!(
        matches!(tb[chk_pos], Op::ChkC { stub } if *stub == s.stub),
        "chk.c targets this slice's stub"
    );
    assert!(matches!(tb[chk_pos + 1], Op::Br { .. }), "resume branch follows");
    // The split block (resume target) is a normal main-thread block.
    if let Op::Br { target } = tb[chk_pos + 1] {
        assert!(!out.func(s.trigger.func).block(*target).attachment);
    }
}

#[test]
fn too_many_live_ins_is_skipped() {
    // Address = sum of 16 loop-invariant registers: more live-ins than a
    // 16-word LIB slot can carry alongside the chain budget.
    let n = 300u64;
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        pb.data_word(0x0100_0000 + 64 * i, i);
    }
    let mut f = pb.function("main");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (ptr, k, u, p) = (Reg(64), Reg(65), Reg(66), Reg(67));
    let mut c = f.at(e).movi(ptr, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64);
    for j in 0..16u16 {
        c = c.movi(Reg(80 + j), j as i64);
    }
    c.br(body);
    let mut c = f.at(body).mov(u, ptr);
    for j in 0..16u16 {
        c = c.add(u, u, Operand::Reg(Reg(80 + j)));
    }
    c.ld(u, u, 0)
        .add(ptr, ptr, 64)
        .cmp(CmpKind::Lt, p, ptr, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    let prog = pb.finish_with(main);
    let (_, report) = adapt_default(&prog);
    assert!(
        report.slices.is_empty()
            || report.skipped.iter().any(|(_, r)| matches!(r, SkipReason::TooManyLiveIns(_))),
        "either nothing planned or explicitly skipped for live-ins: {report:?}"
    );
}

#[test]
fn original_program_is_untouched_by_adapt() {
    let prog = chase(200, true);
    let before = prog.clone();
    let _ = adapt_default(&prog);
    assert_eq!(prog, before, "adapt works on a clone");
}
