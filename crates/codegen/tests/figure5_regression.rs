//! Regression tests pinning the tool's output on the paper's running
//! example (Figure 3's mcf loop): the generated schedule must match
//! Figure 5(b)'s structure and the adapted binary must deliver the
//! speedup class the paper reports.

use ssp_ir::{BlockId, CmpKind, InstRef, Operand, Program, ProgramBuilder, Reg};
use ssp_sim::{simulate, MachineConfig};
use ssp_slicing::{SliceOptions, Slicer};

fn pointer_chase(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        let perm = (i * 7919) % n;
        pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
        pb.data_word(0x0800_0000 + 64 * perm, perm);
    }
    let mut f = pb.function("primal_bea_map");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64).movi(sum, 0).br(body);
    f.at(body)
        .mov(t, arc) // A
        .ld(u, t, 0) // B
        .ld(v, u, 0) // C (delinquent)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, t, 64) // D
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // E
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    pb.finish_with(main)
}

/// The generated chaining schedule must put A and D (the arc chain)
/// before the spawn and B, C after it — Figure 5(b) exactly.
#[test]
fn schedule_matches_figure_5b() {
    let prog = pointer_chase(400);
    let mc = MachineConfig::in_order();
    let profile = ssp_sim::profile(&prog, &mc);
    let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
    let body = BlockId(1);
    let root = InstRef { func: prog.entry, block: body, idx: 2 };
    let plan =
        ssp_codegen::plan_for_load(&mut slicer, &prog, &profile, &mc, root, &Default::default())
            .expect("the slice root is a load")
            .expect("mcf-like loop must be adaptable");

    assert_eq!(plan.model, ssp_sched::SpModel::Chaining);
    let pos = |idx: usize| {
        plan.sched
            .order
            .iter()
            .position(|r| r.block == body && r.idx == idx)
            .unwrap_or_else(|| panic!("instruction {idx} missing from schedule"))
    };
    let (a, b, c, d) = (pos(0), pos(1), pos(2), pos(4));
    assert!(a < plan.sched.spawn_pos, "A before spawn");
    assert!(d < plan.sched.spawn_pos, "D before spawn");
    assert!(b >= plan.sched.spawn_pos, "B after spawn");
    assert!(c >= plan.sched.spawn_pos, "C after spawn");
    assert!(a < d && d < b && b < c, "dependences respected: A<D<B<C");
    // The cheap ALU condition is gated exactly, not predicted (§3.2.1.1
    // only pays off when a load leaves the critical sub-slice).
    assert!(plan.sched.predicted.is_none());
}

/// End-to-end speedup class on the in-order model: the paper's mcf is
/// +37% automatic; our kernel version lands well above that.
#[test]
fn adapted_pointer_chase_speedup_regression() {
    let prog = pointer_chase(400);
    let mc = MachineConfig::in_order();
    let profile = ssp_sim::profile(&prog, &mc);
    let (adapted, report) = ssp_codegen::adapt(&prog, &profile, &mc, &Default::default()).unwrap();
    assert_eq!(report.slice_count(), 1, "overlapping slices merge into one");
    assert_eq!(report.slices[0].root_tags.len(), 2, "both loads covered");
    let base = simulate(&prog, &mc);
    let ssp = simulate(&adapted.clone(), &mc);
    let speedup = base.cycles as f64 / ssp.cycles as f64;
    assert!(speedup > 1.5, "regression: speedup {speedup:.2} < 1.5x");
    // The chain must actually run long-range: most delinquent accesses
    // leave the memory bucket.
    let before = base.load_stats_for(&report.delinquent);
    let after = ssp.load_stats_for(&report.delinquent);
    assert!(after.mem < before.mem / 2, "memory hits at least halved");
}
