//! Region and precomputation-model selection (§3.4.1).
//!
//! For each delinquent load the selector walks the region graph outward
//! from the innermost region containing the load — loop body, enclosing
//! loop bodies, finally the procedure — and picks "the first region in
//! which the reduced miss cycles for basic or chaining SP is greater than
//! a threshold value", where the threshold is a cutoff percentage of the
//! load's profiled miss cycles. If no region qualifies, the region with
//! the largest reduction wins; inner regions are preferred on ties.

use ssp_ir::loops::LoopId;
use ssp_ir::{BlockId, FuncId, InstRef, Op, Program};
use ssp_sched::{
    reduced_miss_cycles, schedule_basic, schedule_chaining, slack_basic, slack_chaining,
    spawn_copy_latency, ScheduleOptions, ScheduledSlice, SpModel,
};
use ssp_sim::{MachineConfig, Profile};
use ssp_slicing::{RegionDepGraph, Slice, SliceError, Slicer};
use ssp_trace::{Stopwatch, ToolTrace};

/// Options controlling selection.
#[derive(Clone, Debug)]
pub struct SelectOptions {
    /// Fraction of the load's miss cycles a region must recover to be
    /// selected outright ("the cutoff percentage").
    pub cutoff_pct: f64,
    /// Stop walking outward after this many nesting levels ("we also
    /// stop the traversal when it is nested several levels deep").
    pub max_region_depth: usize,
    /// Slices bigger than this are rejected ("to avoid a slice becoming
    /// too big that often leads to wrong address calculations").
    pub max_slice_size: usize,
    /// Loops with fewer expected iterations use basic SP.
    pub small_trip_count: f64,
    /// Minimum estimated first-iteration slack for a plan to be worth
    /// its trigger/flush overhead ("slices that contain large enough
    /// slack", §3). Marginal slices whose speculative thread would run
    /// neck-and-neck with the main thread are rejected.
    pub min_slack: i64,
    /// Force one model for ablation studies.
    pub force_model: Option<SpModel>,
    /// Scheduler knobs.
    pub sched: ScheduleOptions,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            cutoff_pct: 0.10,
            max_region_depth: 3,
            max_slice_size: 64,
            small_trip_count: 6.0,
            min_slack: 100,
            force_model: None,
            sched: ScheduleOptions::default(),
        }
    }
}

/// The chosen region/model/schedule for one delinquent load.
#[derive(Clone, Debug)]
pub struct SlicePlan {
    /// The delinquent load.
    pub root: InstRef,
    /// Further delinquent loads folded into this slice by merging
    /// (§3.4.1: "different slices are combined if they share nodes").
    pub extra_roots: Vec<InstRef>,
    /// Function holding the region.
    pub func: FuncId,
    /// Region blocks.
    pub blocks: Vec<BlockId>,
    /// The loop whose iterations the prefetching loop follows, if the
    /// region is a loop body.
    pub loop_id: Option<LoopId>,
    /// Loop header (spawn hand-off point for chaining), if a loop region.
    pub header: Option<BlockId>,
    /// The latch branch instruction (the spawn condition), if any.
    pub latch_branch: Option<InstRef>,
    /// Expected iterations per region entry.
    pub trip_count: f64,
    /// Chosen model.
    pub model: SpModel,
    /// The p-slice.
    pub slice: Slice,
    /// The scheduled execution slice.
    pub sched: ScheduledSlice,
    /// Estimated reduced miss cycles for the chosen model.
    pub reduced: u64,
    /// Estimated slack at the first iteration.
    pub slack_1: i64,
}

/// Walk the region chain for `root` and plan its precomputation.
/// Returns `Ok(None)` when no region yields a usable slice (e.g. every
/// slice exceeds the size limit or recovers nothing), and `Err` when the
/// slicer rejects the root outright (e.g. it is not a load).
pub fn plan_for_load(
    slicer: &mut Slicer<'_>,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    root: InstRef,
    opts: &SelectOptions,
) -> Result<Option<SlicePlan>, SliceError> {
    plan_for_load_traced(slicer, prog, profile, mc, root, opts, None)
}

/// [`plan_for_load`] with optional tracing: when `trace` is set, the
/// `slicing` span accrues wall time plus slice-size/live-in counters and
/// the `sched` span accrues wall time plus schedule/SCC counters for
/// every candidate region examined. With `trace == None` no clock is
/// read and no SCC partition is computed.
pub fn plan_for_load_traced(
    slicer: &mut Slicer<'_>,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    root: InstRef,
    opts: &SelectOptions,
    mut trace: Option<&mut ToolTrace>,
) -> Result<Option<SlicePlan>, SliceError> {
    let fid = root.func;
    // Candidate regions: innermost loop body outward, then the procedure.
    #[derive(Clone)]
    struct Cand {
        blocks: Vec<BlockId>,
        loop_id: Option<LoopId>,
        header: Option<BlockId>,
        trips: f64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    {
        let fa = slicer.analyses.get(prog, fid);
        let mut lid = fa.loops.innermost(root.block);
        while let Some(l) = lid {
            let lp = fa.loops.get(l);
            let outside: Vec<BlockId> =
                fa.cfg.preds(lp.header).iter().copied().filter(|p| !lp.contains(*p)).collect();
            cands.push(Cand {
                blocks: lp.blocks.clone(),
                loop_id: Some(l),
                header: Some(lp.header),
                trips: profile.trip_count(fid, lp.header, &outside).max(1.0),
            });
            lid = lp.parent;
        }
        cands.push(Cand { blocks: fa.cfg.rpo().to_vec(), loop_id: None, header: None, trips: 1.0 });
    }
    cands.truncate(opts.max_region_depth.max(1));

    let Some(lp) = profile.loads.get(&prog.inst(root).tag) else {
        return Ok(None);
    };
    if lp.accesses == 0 || lp.miss_cycles == 0 {
        return Ok(None);
    }
    let avg_miss = lp.miss_cycles / lp.accesses;

    let mut best: Option<SlicePlan> = None;
    for cand in &cands {
        let sw = trace.is_some().then(Stopwatch::start);
        let slice = slicer.slice_in_region(root, &cand.blocks)?;
        if let Some(t) = trace.as_deref_mut() {
            t.add_wall("slicing", sw.map_or(0, |s| s.elapsed_nanos()));
            t.add("slicing", "slices_extracted", 1);
            t.add("slicing", "slice_insts", slice.size() as u64);
            t.add("slicing", "slice_live_ins", slice.live_in_count() as u64);
        }
        if slice.size() > opts.max_slice_size {
            continue;
        }
        let sw = trace.is_some().then(Stopwatch::start);
        let g = {
            let fa = slicer.analyses.get(prog, fid);
            RegionDepGraph::build_with_header(prog, fid, &cand.blocks, cand.header, fa, profile, mc)
        };
        let keep: std::collections::HashSet<InstRef> = slice.insts.iter().copied().collect();
        // Inner-loop-carried dependences serialize the nested loop, not
        // the chain; the schedulers see the per-region-iteration view.
        let sg = g.induced(&keep).without_inner_carried();
        if sg.nodes.is_empty() {
            if let Some(t) = trace.as_deref_mut() {
                t.add_wall("sched", sw.map_or(0, |s| s.elapsed_nanos()));
            }
            continue;
        }
        let region_height = g.critical_path(profile, prog, mc);

        let chain = schedule_chaining(&sg, prog, profile, mc, &opts.sched);
        let basic = schedule_basic(&sg, prog, profile, mc);
        if let Some(t) = trace.as_deref_mut() {
            t.add_wall("sched", sw.map_or(0, |s| s.elapsed_nanos()));
            t.add("sched", "schedules", 2); // one chaining + one basic
            let sccs = ssp_sched::SccPartition::new(&sg);
            t.add("sched", "sccs", sccs.components.len() as u64);
            let cyclic = sccs.components.iter().enumerate().filter(|(i, _)| sccs.is_cycle(*i));
            t.add("sched", "cyclic_sccs", cyclic.count() as u64);
        }
        let copy_cost = spawn_copy_latency(slice.live_in_count(), mc.lib_latency, mc.spawn_latency);
        let trips = cand.trips.round().max(1.0) as u64;

        let mut slack_c1 = slack_chaining(region_height, chain.critical_height, copy_cost, 1);
        let mut slack_b1 = slack_basic(region_height, basic.slice_height, 1);
        if cand.loop_id.is_none() || trips <= 1 {
            // Non-loop region: the load runs once per entry, at its depth
            // from the region entry — the region's total height is not
            // main-thread work that the speculative thread can hide
            // behind.
            let depth = g.node_of(root).map(|n| g.depth_to(n, profile, prog, mc)).unwrap_or(0);
            slack_c1 = depth as i64 - chain.critical_height as i64 - copy_cost as i64;
            slack_b1 = depth as i64 - basic.slice_height as i64;
        }

        // Model choice: small trip counts or better basic slack — basic;
        // chaining otherwise. Chaining also requires a loop region.
        let model = match opts.force_model {
            Some(m) => m,
            None => {
                if cand.loop_id.is_none()
                    || cand.trips < opts.small_trip_count
                    || slack_b1 > slack_c1
                {
                    SpModel::Basic
                } else {
                    SpModel::Chaining
                }
            }
        };
        let (sched, slack_1) = match model {
            SpModel::Chaining if cand.loop_id.is_some() => (chain, slack_c1),
            _ => (basic, slack_b1),
        };
        let reduced = match sched.model {
            SpModel::Chaining => reduced_miss_cycles(avg_miss, trips, |i| {
                slack_chaining(region_height, sched.critical_height, copy_cost, i)
            }),
            SpModel::Basic => reduced_miss_cycles(avg_miss, trips, |i| {
                slack_basic(region_height, sched.slice_height, i)
            }),
        };
        // The loop's *exit branch* — the conditional branch with one
        // successor inside the region and one outside — is the spawn
        // condition. (A loop's latch may be unconditional, e.g. a
        // bottom `br header` with the exit test at the top.) Prefer an
        // exit branch that the slice already contains.
        let exit_branches: Vec<InstRef> = cand
            .blocks
            .iter()
            .filter_map(|&b| {
                let idx = prog.func(fid).block(b).insts.len() - 1;
                let at = InstRef { func: fid, block: b, idx };
                if let Op::BrCond { if_true, if_false, .. } = prog.inst(at).op {
                    let t_in = cand.blocks.contains(&if_true);
                    let f_in = cand.blocks.contains(&if_false);
                    (t_in != f_in).then_some(at)
                } else {
                    None
                }
            })
            .collect();
        let latch_branch = exit_branches
            .iter()
            .copied()
            .find(|at| slice.insts.contains(at))
            .or_else(|| exit_branches.first().copied());

        let plan = SlicePlan {
            root,
            extra_roots: Vec::new(),
            func: fid,
            blocks: cand.blocks.clone(),
            loop_id: cand.loop_id,
            header: cand.header,
            latch_branch,
            trip_count: cand.trips,
            model: sched.model,
            slice,
            sched,
            reduced,
            slack_1,
        };
        if plan.slack_1 < opts.min_slack {
            // Not enough slack to outrun the main thread: keep walking
            // outward for a bigger region.
            continue;
        }
        let threshold = (opts.cutoff_pct * (avg_miss * trips) as f64) as u64;
        if reduced > threshold && reduced > 0 {
            // First (innermost) region clearing the cutoff wins.
            return Ok(Some(plan));
        }
        let better = match &best {
            None => reduced > 0,
            // Prefer the inner region when "about the same" (within 10%).
            Some(b) => reduced as f64 > b.reduced as f64 * 1.1,
        };
        if better {
            best = Some(plan);
        }
    }
    Ok(best)
}

/// Re-derive the schedule and slack for a (possibly merged) slice against
/// the same region and model as `base`. Used after slice combining.
pub fn reschedule(
    slicer: &mut Slicer<'_>,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    base: &SlicePlan,
    slice: Slice,
    opts: &SelectOptions,
) -> SlicePlan {
    let g = {
        let fa = slicer.analyses.get(prog, base.func);
        RegionDepGraph::build_with_header(
            prog,
            base.func,
            &base.blocks,
            base.header,
            fa,
            profile,
            mc,
        )
    };
    let keep: std::collections::HashSet<InstRef> = slice.insts.iter().copied().collect();
    let sg = g.induced(&keep).without_inner_carried();
    let region_height = g.critical_path(profile, prog, mc);
    let copy_cost = spawn_copy_latency(slice.live_in_count(), mc.lib_latency, mc.spawn_latency);
    let sched = match base.model {
        SpModel::Chaining => schedule_chaining(&sg, prog, profile, mc, &opts.sched),
        SpModel::Basic => schedule_basic(&sg, prog, profile, mc),
    };
    let slack_1 = match sched.model {
        SpModel::Chaining => slack_chaining(region_height, sched.critical_height, copy_cost, 1),
        SpModel::Basic => slack_basic(region_height, sched.slice_height, 1),
    };
    SlicePlan { slice, sched, slack_1, ..base.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};
    use ssp_slicing::SliceOptions;

    /// The mcf-style loop with scattered pointers: chaining SP over the
    /// loop body should be chosen.
    fn pointer_chase() -> (Program, BlockId, InstRef) {
        let mut pb = ProgramBuilder::new();
        for i in 0..400u64 {
            let perm = (i * 7919) % 400;
            pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
            pb.data_word(0x0800_0000 + 64 * perm, perm);
        }
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, sum, p) =
            (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
        f.at(e).movi(arc, 0x0100_0000).movi(k, 0x0100_0000 + 64 * 400).movi(sum, 0).br(body);
        f.at(body)
            .mov(t, arc)
            .ld(u, t, 0)
            .ld(v, u, 0)
            .add(sum, sum, Operand::Reg(v))
            .add(arc, t, 64)
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
            .br_cond(p, body, exit);
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let root = InstRef { func: prog.entry, block: body, idx: 2 };
        (prog, body, root)
    }

    #[test]
    fn selects_loop_body_with_chaining() {
        let (prog, body, root) = pointer_chase();
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let plan =
            plan_for_load(&mut slicer, &prog, &profile, &mc, root, &SelectOptions::default())
                .expect("slicing succeeds")
                .expect("a plan is found");
        assert_eq!(plan.model, SpModel::Chaining);
        assert!(plan.loop_id.is_some());
        assert!(plan.blocks.contains(&body));
        assert!(plan.trip_count > 100.0);
        assert!(plan.reduced > 0);
        assert!(plan.slack_1 > 0, "chaining must produce positive slack: {}", plan.slack_1);
        assert!(plan.latch_branch.is_some());
    }

    #[test]
    fn force_model_override() {
        let (prog, _, root) = pointer_chase();
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let opts = SelectOptions {
            force_model: Some(SpModel::Basic),
            min_slack: i64::MIN, // ablation mode: accept whatever basic SP gives
            ..Default::default()
        };
        let plan = plan_for_load(&mut slicer, &prog, &profile, &mc, root, &opts).unwrap().unwrap();
        assert_eq!(plan.model, SpModel::Basic);
    }

    #[test]
    fn no_plan_for_unprofiled_load() {
        let (prog, body, _) = pointer_chase();
        let mc = MachineConfig::in_order();
        let profile = Profile::default(); // empty: load never profiled
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let root = InstRef { func: prog.entry, block: body, idx: 2 };
        assert!(plan_for_load(&mut slicer, &prog, &profile, &mc, root, &SelectOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn slice_size_limit_rejects() {
        let (prog, _, root) = pointer_chase();
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let opts = SelectOptions { max_slice_size: 1, ..Default::default() };
        assert!(plan_for_load(&mut slicer, &prog, &profile, &mc, root, &opts).unwrap().is_none());
    }
}
