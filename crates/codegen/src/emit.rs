//! SSP-enabled code generation (§3.4.2, Figure 7).
//!
//! Each adapted delinquent load gets:
//!
//! * a **trigger**: a `chk.c` placed at its trigger point (the paper
//!   replaces a padding `nop`; our elastic IR inserts the instruction and
//!   splits the block so the stub can branch back to the resume point);
//! * a **stub block** (main-thread recovery code): allocate a live-in
//!   buffer slot, copy the live-ins (plus the chain budget for chaining
//!   SP), spawn the slice, resume;
//! * **slice blocks** (the speculative thread): copy live-ins from the
//!   buffer, run the scheduled execution slice with the delinquent load
//!   turned into an `lfetch` where its value is dead, spawn the next
//!   chaining thread after the critical sub-slice (gated by the spawn
//!   condition and a chain budget), and kill itself. Basic-SP slices
//!   loop over iterations in one thread instead (Figure 6(b)).
//!
//! Slices contain no stores, by construction; the emitter re-verifies.
//!
//! Cloned slice instructions keep their original *registers* (the child
//! context starts zeroed and live-ins land in the same register numbers
//! the original code used) but receive fresh instruction tags.
//!
//! Control flow inside a slice is resolved speculatively: cold-path
//! branches were already pruned by speculative slicing, remaining
//! non-latch branches are dropped and the hot path is emitted straight
//! line; the loop latch branch becomes the spawn condition (chaining) or
//! the slice's own loop branch (basic). Interprocedural slices inline the
//! callee's extracted instructions when they are simple straight-line
//! code; otherwise the call's result is captured as a live-in at spawn
//! time — a stale-value speculation the SSP paradigm tolerates, and the
//! reason the automatic tool loses against hand adaptation on deeply
//! recursive slices (§4.5).

use crate::select::SlicePlan;
use ssp_ir::reg::{conv, NUM_REGS};
use ssp_ir::{Block, BlockId, CmpKind, FuncId, Inst, InstRef, InstTag, Op, Operand, Program, Reg};
use ssp_sched::SpModel;
use ssp_trigger::TriggerPoint;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Emission knobs.
#[derive(Clone, Debug)]
pub struct EmitOptions {
    /// Chaining threads stop re-spawning after this many links (the
    /// chain budget passed through the live-in buffer).
    pub chain_budget: u64,
}

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions { chain_budget: 512 }
    }
}

/// What was emitted for one plan.
#[derive(Clone, Debug)]
pub struct EmittedSlice {
    /// Tags of the delinquent loads this slice covers.
    pub root_tags: Vec<InstTag>,
    /// The trigger location used.
    pub trigger: TriggerPoint,
    /// Stub block id.
    pub stub: BlockId,
    /// Slice entry block id.
    pub slice_entry: BlockId,
    /// Precomputation model.
    pub model: SpModel,
    /// Live-in registers copied at spawn.
    pub live_ins: Vec<Reg>,
    /// Instructions in the emitted slice body (excluding live-in copies
    /// and spawn machinery).
    pub slice_len: usize,
    /// Whether callee instructions were inlined.
    pub interprocedural: bool,
}

/// Why a plan could not be emitted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// Not enough never-used registers in the function for the stub and
    /// slice machinery.
    NoScratchRegisters,
    /// More live-ins than live-in buffer words.
    TooManyLiveIns(usize),
    /// The scheduled order was empty.
    EmptySlice,
    /// The slicer rejected the load (e.g. the profiled root turned out
    /// not to be a load instruction).
    SliceFailed(ssp_slicing::SliceError),
    /// The profiled delinquent tag is not present in the program's tag
    /// index — stale or foreign profile data.
    UnknownTag,
}

/// Registers never mentioned in the function (safe scratch space for the
/// stub, which runs in the main thread's context).
fn unused_regs(prog: &Program, fid: FuncId, extra_exclude: &BTreeSet<Reg>) -> Vec<Reg> {
    let mut used = [false; NUM_REGS];
    used[conv::ZERO.index()] = true;
    used[conv::SLOT.index()] = true;
    used[conv::SP.index()] = true;
    for block in &prog.func(fid).blocks {
        for inst in &block.insts {
            if let Some(d) = inst.op.def() {
                used[d.index()] = true;
            }
            for u in inst.op.uses() {
                used[u.index()] = true;
            }
        }
    }
    for r in extra_exclude {
        used[r.index()] = true;
    }
    (0..NUM_REGS as u16).rev().map(Reg).filter(|r| !used[r.index()]).collect()
}

/// Per-instruction emission decision for the slice body.
enum BodyInst {
    /// Clone the op as is.
    Clone(Op),
    /// The delinquent load, demoted to a prefetch.
    Prefetch { base: Reg, off: i64 },
    /// The latch branch: becomes the spawn gate / loop branch.
    Latch { pred: Reg, continue_on_true: bool },
    /// Dropped (straight-line speculation or unemittable call).
    Skip,
}

struct BodyPlan {
    insts: Vec<BodyInst>,
    extra_live_ins: BTreeSet<Reg>,
    interprocedural: bool,
}

/// Decide how each scheduled instruction is emitted.
fn plan_body(prog: &Program, plan: &SlicePlan) -> BodyPlan {
    let order = &plan.sched.order;
    let mut extra_live_ins = BTreeSet::new();
    let mut interprocedural = false;

    // Callee inlining feasibility: simple = no calls, branches, stores.
    let callee_simple = !plan.slice.callee_insts.is_empty()
        && plan.slice.callee_insts.iter().all(|&at| {
            let op = &prog.inst(at).op;
            !(op.is_call() || op.is_branch() || op.is_store() || op.is_terminator())
        });

    // Does the root load's value feed anything later in the order?
    let value_needed = |root: InstRef, pos: usize| -> bool {
        let Op::Ld { dst, .. } = prog.inst(root).op else { return true };
        order.iter().skip(pos + 1).any(|&at| prog.inst(at).op.uses().contains(&dst))
            || plan.slice.callee_insts.iter().any(|&at| prog.inst(at).op.uses().contains(&dst))
    };
    let is_root = |at: InstRef| at == plan.root || plan.extra_roots.contains(&at);

    let mut insts = Vec::with_capacity(order.len());
    for (pos, &at) in order.iter().enumerate() {
        let op = prog.inst(at).op.clone();
        let emitted = if is_root(at) {
            if value_needed(at, pos) {
                BodyInst::Clone(op)
            } else {
                let Op::Ld { base, off, .. } = op else { unreachable!("root is a load") };
                BodyInst::Prefetch { base, off }
            }
        } else if Some(at) == plan.latch_branch {
            let Op::BrCond { pred, if_true, .. } = op else {
                unreachable!("latch is a conditional branch")
            };
            // Continue when the taken target stays inside the region.
            let continue_on_true = plan.blocks.contains(&if_true);
            BodyInst::Latch { pred, continue_on_true }
        } else {
            match op {
                // Straight-line speculation: other branches vanish.
                Op::Br { .. } | Op::BrCond { .. } => BodyInst::Skip,
                Op::Call { .. } | Op::CallInd { .. } => {
                    if callee_simple {
                        interprocedural = true;
                        BodyInst::Clone(op) // placeholder; expanded at emit
                    } else {
                        // Stale-value speculation: capture the result at
                        // spawn time instead of computing it.
                        extra_live_ins.insert(conv::RV);
                        BodyInst::Skip
                    }
                }
                // Never allowed in slices.
                Op::St { .. } => BodyInst::Skip,
                other => BodyInst::Clone(other),
            }
        };
        insts.push(emitted);
    }
    BodyPlan { insts, extra_live_ins, interprocedural }
}

/// Emit the slice and stub blocks for `plan` into `prog` (phase 1: no
/// existing block is modified, only new blocks appended). The stub's
/// final branch is left to phase 2 ([`insert_triggers`]).
///
/// # Errors
///
/// Returns a [`SkipReason`] when the plan cannot be emitted.
pub fn emit_slice(
    prog: &mut Program,
    plan: &SlicePlan,
    opts: &EmitOptions,
) -> Result<PendingStub, SkipReason> {
    if plan.sched.order.is_empty() {
        return Err(SkipReason::EmptySlice);
    }
    let fid = plan.func;
    let body = plan_body(prog, plan);

    // Live-in layout: slice live-ins plus any stale-value captures.
    let mut live_ins: Vec<Reg> = plan
        .slice
        .live_ins
        .iter()
        .chain(body.extra_live_ins.iter())
        .copied()
        .collect::<BTreeSet<Reg>>()
        .into_iter()
        .collect();
    live_ins.retain(|r| !r.is_zero());
    // One word per live-in, plus the chain budget word for chaining SP.
    let budget_idx = live_ins.len() as u8;
    let words_needed = live_ins.len() + usize::from(plan.model == SpModel::Chaining);
    if words_needed > 16 {
        return Err(SkipReason::TooManyLiveIns(live_ins.len()));
    }

    let slice_regs: BTreeSet<Reg> = plan
        .sched
        .order
        .iter()
        .chain(plan.slice.callee_insts.iter())
        .flat_map(|&at| {
            let op = &prog.inst(at).op;
            op.uses().into_iter().chain(op.def())
        })
        .chain(live_ins.iter().copied())
        .collect();
    let scratch = unused_regs(prog, fid, &slice_regs);
    // Needs: stub slot + stub budget, slice slot + count + 2 predicates.
    if scratch.len() < 6 {
        return Err(SkipReason::NoScratchRegisters);
    }
    let (r_stub_slot, r_stub_tmp) = (scratch[0], scratch[1]);
    let (r_slot2, r_cnt, r_p1, r_cnt2) = (scratch[2], scratch[3], scratch[4], scratch[5]);

    // ---- Slice blocks ----
    let func_len = |prog: &Program| prog.func(fid).blocks.len() as u32;
    let entry_blk = BlockId(func_len(prog));
    let mut new_blocks: Vec<Block> = Vec::new();
    // Local tag minting that works with &mut Program later.
    let fresh = |prog: &mut Program, op: Op| {
        let t = prog.fresh_tag();
        Inst::new(t, op)
    };

    let mut slice_len = 0usize;
    match plan.model {
        SpModel::Chaining => {
            // entry -> (gate) -> spawn -> cont [-> work | kill] .
            // When the latch was predicted out of the critical sub-slice
            // it re-appears post-spawn as an *early-kill* gate: the
            // condition chain runs first and a link past the loop end
            // dies without issuing wild prefetches.
            let post = &body.insts[plan.sched.spawn_pos..];
            let post_latch = post.iter().find_map(|bi| match bi {
                BodyInst::Latch { pred, continue_on_true } => Some((*pred, *continue_on_true)),
                _ => None,
            });
            let spawn_blk = BlockId(entry_blk.0 + 1);
            let cont_blk = BlockId(entry_blk.0 + 2);
            let work_blk = BlockId(entry_blk.0 + 3); // used only with post_latch
            let killb_blk = BlockId(entry_blk.0 + 4);
            let mut entry = Block { insts: Vec::new(), attachment: true };
            for (i, &r) in live_ins.iter().enumerate() {
                entry.insts.push(fresh(prog, Op::LibLd { dst: r, slot: conv::SLOT, idx: i as u8 }));
            }
            entry
                .insts
                .push(fresh(prog, Op::LibLd { dst: r_cnt, slot: conv::SLOT, idx: budget_idx }));
            entry.insts.push(fresh(prog, Op::LibFree { slot: conv::SLOT }));
            // Critical sub-slice.
            let mut gate_pred: Option<(Reg, bool)> = None;
            for (pos, bi) in body.insts.iter().enumerate().take(plan.sched.spawn_pos) {
                emit_body_inst(
                    prog,
                    plan,
                    bi,
                    pos,
                    &mut entry.insts,
                    &mut gate_pred,
                    &mut slice_len,
                );
            }
            // Gate: chain budget, AND the spawn condition when the latch
            // was computed pre-spawn (unpredicted).
            entry.insts.push(fresh(
                prog,
                Op::Cmp { kind: CmpKind::Gt, dst: r_p1, a: r_cnt, b: Operand::Imm(0) },
            ));
            if let Some((pred, cont_on_true)) = gate_pred {
                if cont_on_true {
                    entry.insts.push(fresh(
                        prog,
                        Op::Alu {
                            kind: ssp_ir::AluKind::And,
                            dst: r_p1,
                            a: r_p1,
                            b: Operand::Reg(pred),
                        },
                    ));
                } else {
                    // Continue when pred == 0: invert into the gate.
                    entry.insts.push(fresh(
                        prog,
                        Op::Cmp { kind: CmpKind::Eq, dst: r_cnt2, a: pred, b: Operand::Imm(0) },
                    ));
                    entry.insts.push(fresh(
                        prog,
                        Op::Alu {
                            kind: ssp_ir::AluKind::And,
                            dst: r_p1,
                            a: r_p1,
                            b: Operand::Reg(r_cnt2),
                        },
                    ));
                }
            }
            entry.insts.push(fresh(
                prog,
                Op::BrCond { pred: r_p1, if_true: spawn_blk, if_false: cont_blk },
            ));
            new_blocks.push(entry);

            // Spawn block: pass the live-in registers (now holding the
            // next iteration's values — the critical sub-slice computed
            // them) and the decremented budget.
            let mut spawn = Block { insts: Vec::new(), attachment: true };
            spawn.insts.push(fresh(
                prog,
                Op::Alu { kind: ssp_ir::AluKind::Sub, dst: r_cnt2, a: r_cnt, b: Operand::Imm(1) },
            ));
            spawn.insts.push(fresh(prog, Op::LibAlloc { dst: r_slot2 }));
            for (i, &r) in live_ins.iter().enumerate() {
                spawn.insts.push(fresh(prog, Op::LibSt { slot: r_slot2, idx: i as u8, src: r }));
            }
            spawn
                .insts
                .push(fresh(prog, Op::LibSt { slot: r_slot2, idx: budget_idx, src: r_cnt2 }));
            spawn.insts.push(fresh(prog, Op::Spawn { entry: entry_blk, slot: r_slot2 }));
            spawn.insts.push(fresh(prog, Op::Br { target: cont_blk }));
            new_blocks.push(spawn);

            // Non-critical sub-slice, then die.
            match post_latch {
                None => {
                    let mut cont = Block { insts: Vec::new(), attachment: true };
                    let mut gate2: Option<(Reg, bool)> = None;
                    for (pos, bi) in body.insts.iter().enumerate().skip(plan.sched.spawn_pos) {
                        emit_body_inst(
                            prog,
                            plan,
                            bi,
                            pos,
                            &mut cont.insts,
                            &mut gate2,
                            &mut slice_len,
                        );
                    }
                    cont.insts.push(fresh(prog, Op::KillThread));
                    new_blocks.push(cont);
                }
                Some((pred, continue_on_true)) => {
                    // Split the post section into the condition chain
                    // (what the latch's predicate transitively needs) and
                    // the prefetch work.
                    let mut needed: HashSet<Reg> = HashSet::from([pred]);
                    let mut feeds = vec![false; post.len()];
                    for (i, bi) in post.iter().enumerate().rev() {
                        if let BodyInst::Clone(op) = bi {
                            if op.def().is_some_and(|d| needed.contains(&d)) {
                                feeds[i] = true;
                                needed.extend(op.uses());
                            }
                        }
                    }
                    let mut cont = Block { insts: Vec::new(), attachment: true };
                    let mut unused_gate: Option<(Reg, bool)> = None;
                    for (i, bi) in post.iter().enumerate() {
                        if feeds[i] {
                            emit_body_inst(
                                prog,
                                plan,
                                bi,
                                plan.sched.spawn_pos + i,
                                &mut cont.insts,
                                &mut unused_gate,
                                &mut slice_len,
                            );
                        }
                    }
                    let (t, f) = if continue_on_true {
                        (work_blk, killb_blk)
                    } else {
                        (killb_blk, work_blk)
                    };
                    cont.insts.push(fresh(prog, Op::BrCond { pred, if_true: t, if_false: f }));
                    new_blocks.push(cont);

                    let mut workb = Block { insts: Vec::new(), attachment: true };
                    for (i, bi) in post.iter().enumerate() {
                        if !feeds[i] && !matches!(bi, BodyInst::Latch { .. }) {
                            emit_body_inst(
                                prog,
                                plan,
                                bi,
                                plan.sched.spawn_pos + i,
                                &mut workb.insts,
                                &mut unused_gate,
                                &mut slice_len,
                            );
                        }
                    }
                    workb.insts.push(fresh(prog, Op::KillThread));
                    new_blocks.push(workb);

                    let mut killb = Block { insts: Vec::new(), attachment: true };
                    killb.insts.push(fresh(prog, Op::KillThread));
                    new_blocks.push(killb);
                }
            }
        }
        SpModel::Basic => {
            // entry -> loop -> loop | done; done -> kill (Figure 6(b)).
            let loop_blk = BlockId(entry_blk.0 + 1);
            let done_blk = BlockId(entry_blk.0 + 2);
            let mut entry = Block { insts: Vec::new(), attachment: true };
            for (i, &r) in live_ins.iter().enumerate() {
                entry.insts.push(fresh(prog, Op::LibLd { dst: r, slot: conv::SLOT, idx: i as u8 }));
            }
            entry.insts.push(fresh(prog, Op::LibFree { slot: conv::SLOT }));
            entry.insts.push(fresh(prog, Op::Br { target: loop_blk }));
            new_blocks.push(entry);

            let mut lp = Block { insts: Vec::new(), attachment: true };
            let mut gate_pred: Option<(Reg, bool)> = None;
            for (pos, bi) in body.insts.iter().enumerate() {
                emit_body_inst(prog, plan, bi, pos, &mut lp.insts, &mut gate_pred, &mut slice_len);
            }
            match gate_pred {
                Some((pred, true)) => {
                    lp.insts.push(fresh(
                        prog,
                        Op::BrCond { pred, if_true: loop_blk, if_false: done_blk },
                    ));
                }
                Some((pred, false)) => {
                    lp.insts.push(fresh(
                        prog,
                        Op::BrCond { pred, if_true: done_blk, if_false: loop_blk },
                    ));
                }
                // No latch in the slice: single pass.
                None => lp.insts.push(fresh(prog, Op::Br { target: done_blk })),
            }
            new_blocks.push(lp);

            let mut done = Block { insts: Vec::new(), attachment: true };
            done.insts.push(fresh(prog, Op::KillThread));
            new_blocks.push(done);
        }
    }

    // ---- Stub block (main-thread recovery code) ----
    let stub_blk = BlockId(entry_blk.0 + new_blocks.len() as u32);
    let mut stub = Block { insts: Vec::new(), attachment: true };
    stub.insts.push(fresh(prog, Op::LibAlloc { dst: r_stub_slot }));
    for (i, &r) in live_ins.iter().enumerate() {
        stub.insts.push(fresh(prog, Op::LibSt { slot: r_stub_slot, idx: i as u8, src: r }));
    }
    if plan.model == SpModel::Chaining {
        // Chain budget: roughly twice the expected remaining iterations,
        // clamped — chains self-terminate on the spawn condition, the
        // budget bounds predicted (ungated) chains and broken profiles.
        let budget = ((plan.trip_count * 2.0) as u64).max(16).min(opts.chain_budget.max(1));
        stub.insts.push(fresh(prog, Op::Movi { dst: r_stub_tmp, imm: budget as i64 }));
        stub.insts
            .push(fresh(prog, Op::LibSt { slot: r_stub_slot, idx: budget_idx, src: r_stub_tmp }));
    }
    stub.insts.push(fresh(prog, Op::Spawn { entry: entry_blk, slot: r_stub_slot }));
    // Final `br resume` appended by `insert_trigger`.
    new_blocks.push(stub);

    prog.func_mut(fid).blocks.extend(new_blocks);

    Ok(PendingStub {
        func: fid,
        stub: stub_blk,
        slice_entry: entry_blk,
        live_ins,
        slice_len,
        interprocedural: body.interprocedural,
        model: plan.model,
        root_tags: vec![prog.inst(plan.root).tag],
    })
}

/// Emit one body instruction into `out`.
fn emit_body_inst(
    prog: &mut Program,
    plan: &SlicePlan,
    bi: &BodyInst,
    pos: usize,
    out: &mut Vec<Inst>,
    gate_pred: &mut Option<(Reg, bool)>,
    slice_len: &mut usize,
) {
    match bi {
        BodyInst::Clone(op) => {
            if op.is_call() {
                // Inline the callee's extracted instructions in callee
                // program order ("the tool can form a slice block by
                // extracting instructions from various procedures").
                let callee_ops: Vec<Op> =
                    plan.slice.callee_insts.iter().map(|&at| prog.inst(at).op.clone()).collect();
                for cop in callee_ops {
                    let t = prog.fresh_tag();
                    out.push(Inst::new(t, cop));
                    *slice_len += 1;
                }
            } else {
                let t = prog.fresh_tag();
                out.push(Inst::new(t, op.clone()));
                *slice_len += 1;
            }
        }
        BodyInst::Prefetch { base, off } => {
            let t = prog.fresh_tag();
            out.push(Inst::new(t, Op::Lfetch { base: *base, off: *off }));
            *slice_len += 1;
        }
        BodyInst::Latch { pred, continue_on_true } => {
            let _ = pos;
            *gate_pred = Some((*pred, *continue_on_true));
        }
        BodyInst::Skip => {}
    }
}

/// A stub awaiting its resume branch (phase 2).
#[derive(Clone, Debug)]
pub struct PendingStub {
    /// Function everything lives in.
    pub func: FuncId,
    /// Stub block (no terminator yet).
    pub stub: BlockId,
    /// Slice entry block.
    pub slice_entry: BlockId,
    /// Live-in registers in slot order.
    pub live_ins: Vec<Reg>,
    /// Emitted slice body length.
    pub slice_len: usize,
    /// Whether callee code was inlined.
    pub interprocedural: bool,
    /// Model emitted.
    pub model: SpModel,
    /// Root tags covered.
    pub root_tags: Vec<InstTag>,
}

/// Phase 2 helper: insert the `chk.c` trigger at `point`, splitting the
/// block so the stub can branch back to the resume point (Figure 7's
/// layout). Triggers must be inserted in descending `(block, position)`
/// order so earlier splits do not invalidate later positions;
/// [`insert_triggers`] handles the ordering.
fn insert_trigger(prog: &mut Program, point: &TriggerPoint, pending: &PendingStub) {
    let fid = point.func;
    let split_at = point.after.map_or(0, |i| i + 1);
    let cont_blk = BlockId(prog.func(fid).blocks.len() as u32);
    let func = prog.func_mut(fid);
    let tail: Vec<Inst> = func.block_mut(point.block).insts.split_off(split_at);
    debug_assert!(!tail.is_empty(), "trigger split must leave a terminator in the tail");
    let was_attachment = func.block(point.block).attachment;
    func.blocks.push(Block { insts: tail, attachment: was_attachment });
    let chk = Inst::new(InstTag(0), Op::ChkC { stub: pending.stub });
    let br = Inst::new(InstTag(0), Op::Br { target: cont_blk });
    let block = &mut prog.func_mut(fid).blocks[point.block.index()].insts;
    block.push(chk);
    block.push(br);
    // Fresh tags (fresh_tag needs &mut prog, so patch afterwards).
    let t1 = prog.fresh_tag();
    let t2 = prog.fresh_tag();
    let block = &mut prog.func_mut(fid).blocks[point.block.index()].insts;
    let n = block.len();
    block[n - 2].tag = t1;
    block[n - 1].tag = t2;
    // Stub resumes at the split-off tail.
    let t3 = prog.fresh_tag();
    prog.func_mut(fid).blocks[pending.stub.index()]
        .insts
        .push(Inst::new(t3, Op::Br { target: cont_blk }));
}

/// Insert all triggers, ordering by descending position so splits never
/// invalidate pending positions.
pub fn insert_triggers(prog: &mut Program, work: Vec<(TriggerPoint, PendingStub)>) {
    let mut work = work;
    work.sort_by(|a, b| {
        (b.0.func, b.0.block, b.0.after.map_or(-1, |i| i as i64)).cmp(&(
            a.0.func,
            a.0.block,
            a.0.after.map_or(-1, |i| i as i64),
        ))
    });
    for (point, pending) in &work {
        insert_trigger(prog, point, pending);
    }
}

/// Check that the emitted program still verifies, including the
/// no-stores-in-slices rule.
///
/// # Errors
///
/// Propagates the verifier error.
pub fn verify_emitted(prog: &Program) -> Result<(), ssp_ir::verify::VerifyError> {
    ssp_ir::verify::verify(prog)?;
    ssp_ir::verify::verify_speculative(prog)
}

/// Convenience map from tags to the plans covering them.
pub fn coverage_map(emitted: &[EmittedSlice]) -> HashMap<InstTag, usize> {
    let mut m = HashMap::new();
    for (i, e) in emitted.iter().enumerate() {
        for &t in &e.root_tags {
            m.insert(t, i);
        }
    }
    m
}
