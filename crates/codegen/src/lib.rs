//! SSP-enabled binary adaptation: the code-generation half of the
//! post-pass tool (§3.4).
//!
//! [`adapt`] takes an original program, its profile, and a machine model,
//! and produces the SSP-enhanced binary: for every delinquent load it
//! selects a region and precomputation model ([`select`]), schedules the
//! p-slice (via [`ssp_sched`]), places a trigger (via [`ssp_trigger`]),
//! and rewrites the binary with stub and slice attachments ([`emit`]).

#![warn(missing_docs)]

pub mod emit;
pub mod select;

pub use emit::{EmitOptions, EmittedSlice, PendingStub, SkipReason};
pub use select::{plan_for_load, plan_for_load_traced, SelectOptions, SlicePlan};

use ssp_ir::verify::VerifyError;
use ssp_ir::{InstTag, Program};
use ssp_lint::{LintReport, PlanView};
use ssp_sim::{MachineConfig, Profile};
use ssp_slicing::{SliceOptions, Slicer};
use ssp_trace::{Stopwatch, ToolTrace};
use ssp_trigger::TriggerPoint;
use std::fmt;

/// Why a whole adaptation failed.
///
/// Per-load problems (unusable slices, no scratch registers, too many
/// live-ins) never surface here — they degrade into
/// [`AdaptReport::skipped`] entries so one bad load cannot kill a batch
/// run. `AdaptError` is reserved for failures that invalidate the whole
/// output binary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdaptError {
    /// The emitted binary failed re-verification. This is a bug in the
    /// tool (not in the input program); the diagnostic is preserved so
    /// fuzzing harnesses can report and minimize the offending case
    /// instead of aborting the process.
    EmitVerify(VerifyError),
    /// The emitted binary failed the static SSP linter (`ssp-lint`):
    /// trigger coverage, live-in completeness, slice hygiene, or
    /// stub well-formedness. Like [`AdaptError::EmitVerify`], this is a
    /// tool bug, and the full report is preserved for harnesses.
    Lint(LintReport),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::EmitVerify(e) => write!(f, "adapted binary failed verification: {e}"),
            AdaptError::Lint(r) => write!(f, "adapted binary failed the static linter: {r}"),
        }
    }
}

impl std::error::Error for AdaptError {}

/// Options for the whole adaptation.
#[derive(Clone, Debug)]
pub struct AdaptOptions {
    /// Fraction of total miss cycles the delinquent-load set must cover
    /// (the paper uses "at least 90% of the cache misses").
    pub coverage: f64,
    /// Slicer knobs.
    pub slice: SliceOptions,
    /// Region/model selection knobs.
    pub select: SelectOptions,
    /// Emission knobs.
    pub emit: EmitOptions,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            coverage: 0.9,
            slice: SliceOptions::default(),
            select: SelectOptions::default(),
            emit: EmitOptions::default(),
        }
    }
}

impl AdaptOptions {
    /// Versioned field-explicit canonical encoding of the full option
    /// tree — the adaptation-side half of a cache key, alongside
    /// [`MachineConfig::fingerprint`] for the machine-side half.
    ///
    /// Two option sets that compare field-equal always fingerprint
    /// identically, and the encoding never goes through `Debug`
    /// formatting (whose output is not stable across field reorders or
    /// rustc versions — which disk-persistent cache layers could not
    /// tolerate). Floats are rendered with `Display`, whose
    /// shortest-round-trip output is pinned by the golden test below.
    ///
    /// The full-struct destructuring (of every nested options struct
    /// too) is deliberate: adding a knob anywhere in the tree breaks
    /// this function at compile time, forcing the encoding — and the
    /// `ssp-adapt-options` version, if the change is semantic — to be
    /// updated. This is what lets tuned and default plans coexist in the
    /// `ssp-bench`/`ssp-serve` caches: before this encoding existed,
    /// adapted results could only be keyed by workload+seed+machine, so
    /// non-default options could not participate in a stable key at all.
    pub fn fingerprint(&self) -> String {
        let AdaptOptions { coverage, slice, select, emit } = self;
        let ssp_slicing::SliceOptions { speculative, min_block_count, control_deps } = slice;
        let SelectOptions {
            cutoff_pct,
            max_region_depth,
            max_slice_size,
            small_trip_count,
            min_slack,
            force_model,
            sched,
        } = select;
        let ssp_sched::ScheduleOptions { loop_rotation, condition_prediction, predict_threshold } =
            sched;
        let EmitOptions { chain_budget } = emit;
        let force = match force_model {
            None => "none",
            Some(ssp_sched::SpModel::Basic) => "basic",
            Some(ssp_sched::SpModel::Chaining) => "chaining",
        };
        format!(
            "ssp-adapt-options/1 coverage={coverage} speculative={speculative} \
             min_block_count={min_block_count} control_deps={control_deps} \
             cutoff_pct={cutoff_pct} max_region_depth={max_region_depth} \
             max_slice_size={max_slice_size} small_trip_count={small_trip_count} \
             min_slack={min_slack} force_model={force} loop_rotation={loop_rotation} \
             condition_prediction={condition_prediction} predict_threshold={predict_threshold} \
             chain_budget={chain_budget}"
        )
    }
}

/// What the adaptation did — the source of Table 2.
#[derive(Clone, Debug, Default)]
pub struct AdaptReport {
    /// Delinquent loads identified from the profile.
    pub delinquent: Vec<InstTag>,
    /// Emitted slices.
    pub slices: Vec<EmittedSlice>,
    /// Loads that could not be adapted, with reasons.
    pub skipped: Vec<(InstTag, SkipReason)>,
}

impl AdaptReport {
    /// Number of emitted slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Whether the adaptation was a no-op: no slice was emitted, so the
    /// output binary is byte-identical to the input. A no-op is not an
    /// error — a program with no delinquent loads needs no adaptation —
    /// but a no-op on a load-bound workload deserves a diagnostic, which
    /// is why every skipped delinquent load carries a [`SkipReason`]
    /// and the suite harnesses surface this flag per row.
    pub fn is_noop(&self) -> bool {
        self.slices.is_empty()
    }

    /// Structural digest of the emitted plan: a 64-bit FNV-1a hash (hex)
    /// over a field-explicit canonical encoding of every emitted slice,
    /// plus the delinquent and skipped sets. Two adaptations that placed
    /// the same slices, triggers, and live-ins digest identically; the
    /// encoding never goes through `Debug` formatting, so the digest is
    /// stable across rustc versions — it is persisted in the `ssp-serve`
    /// on-disk store as the identity of a cached adaptation.
    pub fn plan_digest(&self) -> String {
        let mut text = String::from("ssp-plan/1");
        for tag in &self.delinquent {
            text.push_str(&format!(" d{}", tag.0));
        }
        for s in &self.slices {
            // Full destructuring: adding a field to `EmittedSlice`
            // breaks this at compile time, forcing the encoding to
            // cover it (and the `ssp-plan` version to be bumped if the
            // change is semantic).
            let EmittedSlice {
                root_tags,
                trigger,
                stub,
                slice_entry,
                model,
                live_ins,
                slice_len,
                interprocedural,
            } = s;
            let roots: Vec<String> = root_tags.iter().map(|t| t.0.to_string()).collect();
            let lives: Vec<String> = live_ins.iter().map(|r| r.0.to_string()).collect();
            let model = match model {
                ssp_sched::SpModel::Chaining => "chaining",
                ssp_sched::SpModel::Basic => "basic",
            };
            let after = trigger.after.map_or_else(|| "-".to_string(), |i| i.to_string());
            text.push_str(&format!(
                " slice roots={} trigger={}:{}:{after} stub={} entry={} model={model} \
                 live_ins={} len={slice_len} interproc={interprocedural}",
                roots.join(","),
                trigger.func.0,
                trigger.block.0,
                stub.0,
                slice_entry.0,
                lives.join(","),
            ));
        }
        for (tag, reason) in &self.skipped {
            let reason = match reason {
                SkipReason::NoScratchRegisters => "no-scratch".to_string(),
                SkipReason::TooManyLiveIns(n) => format!("live-ins-{n}"),
                SkipReason::EmptySlice => "empty".to_string(),
                SkipReason::SliceFailed(_) => "slice-failed".to_string(),
                SkipReason::UnknownTag => "unknown-tag".to_string(),
            };
            text.push_str(&format!(" skip{}={reason}", tag.0));
        }
        // FNV-1a, 64-bit.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Number of interprocedural slices.
    pub fn interprocedural_count(&self) -> usize {
        self.slices.iter().filter(|s| s.interprocedural).count()
    }

    /// Average slice size in instructions.
    pub fn average_size(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        self.slices.iter().map(|s| s.slice_len as f64).sum::<f64>() / self.slices.len() as f64
    }

    /// Average number of live-in values.
    pub fn average_live_ins(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        self.slices.iter().map(|s| s.live_ins.len() as f64).sum::<f64>() / self.slices.len() as f64
    }
}

/// The linter's view of a report's emitted slices — the plan facts
/// `ssp_lint::lint` verifies the adapted binary against.
pub fn lint_views(report: &AdaptReport) -> Vec<PlanView> {
    report
        .slices
        .iter()
        .map(|s| PlanView {
            root_tags: s.root_tags.clone(),
            trigger: s.trigger,
            stub: s.stub,
            slice_entry: s.slice_entry,
            model: s.model,
            live_ins: s.live_ins.clone(),
        })
        .collect()
}

/// Adapt `prog` for software-based speculative precomputation.
///
/// Returns the enhanced binary and a report. The input program is not
/// modified; the result is re-verified (structure + no stores in slices),
/// and a verification failure is returned as [`AdaptError::EmitVerify`]
/// rather than aborting the process. Per-load failures never abort the
/// adaptation: they become [`AdaptReport::skipped`] entries.
pub fn adapt(
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    opts: &AdaptOptions,
) -> Result<(Program, AdaptReport), AdaptError> {
    adapt_traced(prog, profile, mc, opts, None)
}

/// [`adapt`] with optional tracing: when `trace` is set, the `slicing`,
/// `sched`, `trigger`, and `codegen` phase spans accrue wall time and
/// counters (slice sizes, SCC counts, triggers placed, live-ins per
/// trigger, instructions added). With `trace == None` the behaviour and
/// cost are exactly those of [`adapt`], including its error surface.
pub fn adapt_traced(
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    opts: &AdaptOptions,
    mut trace: Option<&mut ToolTrace>,
) -> Result<(Program, AdaptReport), AdaptError> {
    let mut report = AdaptReport {
        delinquent: profile.delinquent_loads(opts.coverage),
        ..AdaptReport::default()
    };
    if let Some(t) = trace.as_deref_mut() {
        t.add("profile", "delinquent_loads", report.delinquent.len() as u64);
    }
    let index = prog.tag_index();

    let mut slicer = Slicer::new(prog, profile, opts.slice.clone());
    let mut plans = Vec::new();
    for &tag in &report.delinquent {
        let Some(&root) = index.get(&tag) else {
            report.skipped.push((tag, SkipReason::UnknownTag));
            continue;
        };
        let plan = select::plan_for_load_traced(
            &mut slicer,
            prog,
            profile,
            mc,
            root,
            &opts.select,
            trace.as_deref_mut(),
        );
        match plan {
            Ok(Some(plan)) => plans.push(plan),
            Ok(None) => report.skipped.push((tag, SkipReason::EmptySlice)),
            Err(e) => report.skipped.push((tag, SkipReason::SliceFailed(e))),
        }
    }

    // Combine slices sharing dependence-graph nodes in the same region
    // (§3.4.1), union-merging the instruction sets and rescheduling.
    let mut groups: Vec<(SlicePlan, bool)> = Vec::new();
    'next: for plan in plans {
        for (g, dirty) in &mut groups {
            if g.func == plan.func
                && g.blocks == plan.blocks
                && g.slice.insts.iter().any(|i| plan.slice.insts.contains(i))
            {
                g.extra_roots.push(plan.root);
                g.extra_roots.extend(plan.extra_roots.iter().copied());
                g.slice.insts.extend(plan.slice.insts.iter().copied());
                g.slice.callee_insts.extend(plan.slice.callee_insts.iter().copied());
                g.slice.live_ins.extend(plan.slice.live_ins.iter().copied());
                g.slice.speculative_values |= plan.slice.speculative_values;
                g.reduced = g.reduced.max(plan.reduced);
                *dirty = true;
                continue 'next;
            }
        }
        groups.push((plan, false));
    }
    let merged: Vec<SlicePlan> = groups
        .into_iter()
        .map(|(plan, dirty)| {
            if dirty {
                let slice = plan.slice.clone();
                select::reschedule(&mut slicer, prog, profile, mc, &plan, slice, &opts.select)
            } else {
                plan
            }
        })
        .collect();

    // Trigger placement on the *original* program: chaining triggers
    // re-fire per iteration; basic triggers fire once per region entry.
    let mut placed: Vec<(SlicePlan, TriggerPoint)> = Vec::new();
    for plan in merged {
        let style = match plan.model {
            ssp_sched::SpModel::Chaining => ssp_trigger::TriggerStyle::PerIteration,
            ssp_sched::SpModel::Basic => ssp_trigger::TriggerStyle::PerRegionEntry,
        };
        let sw = trace.is_some().then(Stopwatch::start);
        let fa = slicer.analyses.get(prog, plan.func);
        let tp = ssp_trigger::place_trigger(prog, fa, profile, &plan.slice, style);
        if let Some(t) = trace.as_deref_mut() {
            t.add_wall("trigger", sw.map_or(0, |s| s.elapsed_nanos()));
            t.add("trigger", "triggers_placed", 1);
            t.add("trigger", "trigger_live_ins", plan.slice.live_in_count() as u64);
        }
        placed.push((plan, tp));
    }

    // Phase 1: append slice + stub blocks. Phase 2: insert triggers.
    let sw = trace.is_some().then(Stopwatch::start);
    let mut out = prog.clone();
    let mut work = Vec::new();
    for (plan, tp) in placed {
        match emit::emit_slice(&mut out, &plan, &opts.emit) {
            Ok(mut pending) => {
                pending.root_tags.extend(plan.extra_roots.iter().map(|&r| prog.inst(r).tag));
                report.slices.push(EmittedSlice {
                    root_tags: pending.root_tags.clone(),
                    trigger: tp,
                    stub: pending.stub,
                    slice_entry: pending.slice_entry,
                    model: pending.model,
                    live_ins: pending.live_ins.clone(),
                    slice_len: pending.slice_len,
                    interprocedural: pending.interprocedural,
                });
                work.push((tp, pending));
            }
            Err(reason) => {
                report.skipped.push((prog.inst(plan.root).tag, reason));
            }
        }
    }
    emit::insert_triggers(&mut out, work);

    emit::verify_emitted(&out).map_err(AdaptError::EmitVerify)?;
    let lint_report = ssp_lint::lint(prog, &out, profile, &lint_views(&report));
    if !lint_report.is_clean() {
        return Err(AdaptError::Lint(lint_report));
    }
    if let Some(t) = trace {
        t.add_wall("codegen", sw.map_or(0, |s| s.elapsed_nanos()));
        t.add("codegen", "slices_emitted", report.slices.len() as u64);
        t.add("codegen", "slices_skipped", report.skipped.len() as u64);
        t.add("codegen", "insts_added", (out.inst_count() - prog.inst_count()) as u64);
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};
    use ssp_sim::{simulate, MemoryMode};

    /// The pointer-chase program used throughout: arcs -> scattered nodes.
    fn pointer_chase(n: u64) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..n {
            let perm = (i * 7919) % n;
            pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
            pb.data_word(0x0800_0000 + 64 * perm, perm);
        }
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, sum, p) =
            (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
        f.at(e).movi(arc, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64).movi(sum, 0).br(body);
        f.at(body)
            .mov(t, arc)
            .ld(u, t, 0)
            .ld(v, u, 0)
            .add(sum, sum, Operand::Reg(v))
            .add(arc, t, 64)
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
            .br_cond(p, body, exit);
        f.at(exit).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn adapt_produces_verified_binary_with_slices() {
        let prog = pointer_chase(400);
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let (adapted, report) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        assert!(!report.delinquent.is_empty());
        assert!(report.slice_count() >= 1, "skipped: {:?}", report.skipped);
        assert!(adapted.inst_count() > prog.inst_count());
        // Original instructions keep their tags.
        let orig_tags: std::collections::HashSet<_> = prog.tag_index().keys().copied().collect();
        let new_tags: std::collections::HashSet<_> = adapted.tag_index().keys().copied().collect();
        assert!(orig_tags.is_subset(&new_tags));
    }

    #[test]
    fn adapted_binary_speeds_up_in_order_machine() {
        let prog = pointer_chase(400);
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let (adapted, report) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        assert!(report.slice_count() >= 1);
        let base = simulate(&prog, &mc);
        let ssp = simulate(&adapted, &mc);
        assert!(ssp.halted);
        assert!(ssp.threads_spawned > 0, "speculative threads must run");
        assert!(
            ssp.cycles * 10 < base.cycles * 9,
            "automatic SSP must save at least 10%: base={} ssp={}",
            base.cycles,
            ssp.cycles
        );
    }

    #[test]
    fn adapted_binary_preserves_semantics() {
        // The main thread must execute the same loop: per-tag main-thread
        // load counts must match under perfect memory.
        let prog = pointer_chase(300);
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let (adapted, _) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        let base = simulate(&prog, &mc.clone().with_memory_mode(MemoryMode::PerfectAll));
        let ssp = simulate(&adapted, &mc.clone().with_memory_mode(MemoryMode::PerfectAll));
        for (tag, stats) in &base.loads {
            let ssp_stats = ssp.loads.get(tag).map(|s| s.accesses).unwrap_or(0);
            assert_eq!(stats.accesses, ssp_stats, "load {tag} executes equally often");
        }
        assert!(ssp.halted && base.halted);
    }

    #[test]
    fn plan_digest_identifies_the_plan() {
        let prog = pointer_chase(200);
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let (_, a) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        let (_, b) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        assert_eq!(a.plan_digest(), b.plan_digest(), "adaptation is deterministic");
        assert!(!a.is_noop());
        let empty = AdaptReport::default();
        assert!(empty.is_noop());
        assert_ne!(a.plan_digest(), empty.plan_digest());
    }

    #[test]
    fn adapt_options_fingerprint_is_golden_pinned() {
        // The exact default encoding is pinned: a drift here means every
        // persisted tuned/default entry silently re-keys, so any change
        // must be deliberate (and bump the ssp-adapt-options version if
        // the meaning of a knob changed).
        assert_eq!(
            AdaptOptions::default().fingerprint(),
            "ssp-adapt-options/1 coverage=0.9 speculative=true min_block_count=1 \
             control_deps=true cutoff_pct=0.1 max_region_depth=3 max_slice_size=64 \
             small_trip_count=6 min_slack=100 force_model=none loop_rotation=true \
             condition_prediction=true predict_threshold=0.9 chain_budget=512"
        );
    }

    #[test]
    fn adapt_options_fingerprint_separates_tuned_from_default() {
        let base = AdaptOptions::default();
        let mut tuned = base.clone();
        tuned.emit.chain_budget = 3;
        assert_ne!(base.fingerprint(), tuned.fingerprint());
        let mut forced = base.clone();
        forced.select.force_model = Some(ssp_sched::SpModel::Basic);
        assert_ne!(base.fingerprint(), forced.fingerprint());
        assert_ne!(tuned.fingerprint(), forced.fingerprint());
        assert_eq!(base.fingerprint(), AdaptOptions::default().fingerprint());
    }

    #[test]
    fn report_metrics_are_consistent() {
        let prog = pointer_chase(200);
        let mc = MachineConfig::in_order();
        let profile = ssp_sim::profile(&prog, &mc);
        let (_, report) = adapt(&prog, &profile, &mc, &AdaptOptions::default()).unwrap();
        assert_eq!(report.slice_count(), report.slices.len());
        assert!(report.average_size() > 0.0);
        assert!(report.average_live_ins() >= 1.0, "arc and K are live-ins");
        assert!(report.interprocedural_count() <= report.slice_count());
    }
}
