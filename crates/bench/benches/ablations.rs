//! Ablation benches for the design choices DESIGN.md calls out: chaining
//! vs basic SP, condition prediction, loop rotation, the chain budget,
//! and dominator-heuristic vs min-cut trigger placement. Each bench
//! returns the SSP cycle count so `cargo bench` records how the knob
//! moves the bottom line.

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_bench::SEED;
use ssp_core::{simulate, AdaptOptions, MachineConfig, PostPassTool, ScheduleOptions, SpModel};

fn ssp_cycles(w: &ssp_workloads::Workload, mc: &MachineConfig, opts: AdaptOptions) -> u64 {
    let tool = PostPassTool::new(mc.clone()).with_options(opts);
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    simulate(&adapted.program, mc).cycles
}

fn bench_model_choice(c: &mut Criterion) {
    let w = ssp_workloads::mcf::build(SEED);
    let mc = MachineConfig::in_order();
    let mut g = c.benchmark_group("ablation_chaining_vs_basic");
    g.sample_size(10);
    g.bench_function("mcf/auto", |b| b.iter(|| ssp_cycles(&w, &mc, AdaptOptions::default())));
    g.bench_function("mcf/forced-basic", |b| {
        let mut o = AdaptOptions::default();
        o.select.force_model = Some(SpModel::Basic);
        o.select.min_slack = i64::MIN;
        b.iter(|| ssp_cycles(&w, &mc, o.clone()))
    });
    g.finish();
}

fn bench_dependence_reduction(c: &mut Criterion) {
    let w = ssp_workloads::treeadd::build_bf(SEED);
    let mc = MachineConfig::in_order();
    let mut g = c.benchmark_group("ablation_dependence_reduction");
    g.sample_size(10);
    g.bench_function("treeadd.bf/full", |b| {
        b.iter(|| ssp_cycles(&w, &mc, AdaptOptions::default()))
    });
    g.bench_function("treeadd.bf/no-condition-prediction", |b| {
        let mut o = AdaptOptions::default();
        o.select.sched = ScheduleOptions { condition_prediction: false, ..Default::default() };
        b.iter(|| ssp_cycles(&w, &mc, o.clone()))
    });
    g.bench_function("treeadd.bf/no-loop-rotation", |b| {
        let mut o = AdaptOptions::default();
        o.select.sched = ScheduleOptions { loop_rotation: false, ..Default::default() };
        b.iter(|| ssp_cycles(&w, &mc, o.clone()))
    });
    g.finish();
}

fn bench_chain_budget(c: &mut Criterion) {
    let w = ssp_workloads::vpr::build(SEED);
    let mc = MachineConfig::in_order();
    let mut g = c.benchmark_group("ablation_chain_budget");
    g.sample_size(10);
    for budget in [8u64, 64, 512] {
        g.bench_function(format!("vpr/budget-{budget}"), |b| {
            let mut o = AdaptOptions::default();
            o.emit.chain_budget = budget;
            b.iter(|| ssp_cycles(&w, &mc, o.clone()))
        });
    }
    g.finish();
}

fn bench_trigger_placement(c: &mut Criterion) {
    // Min-cut vs dominator heuristic: compare the *placement cost
    // computation* itself (the emitted binaries use the heuristic).
    let w = ssp_workloads::mcf::build(SEED);
    let mc = MachineConfig::in_order();
    let profile = ssp_core::profile(&w.program, &mc);
    let fid = w.program.entry;
    let func = w.program.func(fid);
    let cfg = ssp_ir::cfg::Cfg::new(func);
    // The delinquent load's block.
    let index = w.program.tag_index();
    let root = index[&profile.delinquent_loads(0.9)[0]];
    let mut g = c.benchmark_group("ablation_trigger_placement");
    g.sample_size(20);
    g.bench_function("mcf/min-cut", |b| {
        b.iter(|| {
            ssp_trigger::min_cut_triggers(fid, &cfg, func.entry, root.block, &profile, 20, 2)
                .edges
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_choice,
    bench_dependence_reduction,
    bench_chain_budget,
    bench_trigger_placement
);
criterion_main!(benches);
