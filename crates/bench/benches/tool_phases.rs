//! Benches of the post-pass tool's individual phases — profiling,
//! slicing, scheduling, trigger placement — on the mcf workload, so
//! regressions in any compiler pass are visible in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_bench::SEED;
use ssp_core::MachineConfig;
use ssp_ir::InstRef;
use ssp_slicing::{Analyses, RegionDepGraph, SliceOptions, Slicer};

fn bench_phases(c: &mut Criterion) {
    let w = ssp_workloads::mcf::build(SEED);
    let mc = MachineConfig::in_order();
    let mut g = c.benchmark_group("tool_phases");
    g.sample_size(10);

    g.bench_function("profile", |b| b.iter(|| ssp_core::profile(&w.program, &mc).loads.len()));

    let profile = ssp_core::profile(&w.program, &mc);
    let index = w.program.tag_index();
    let root: InstRef = index[&profile.delinquent_loads(0.9)[0]];

    g.bench_function("slice_in_region", |b| {
        b.iter(|| {
            let mut slicer = Slicer::new(&w.program, &profile, SliceOptions::default());
            let fa_blocks: Vec<ssp_ir::BlockId> = {
                let fa = slicer.analyses.get(&w.program, root.func);
                let l = fa.loops.innermost(root.block).unwrap();
                fa.loops.get(l).blocks.clone()
            };
            slicer.slice_in_region(root, &fa_blocks).expect("root is a load").size()
        })
    });

    g.bench_function("schedule_chaining", |b| {
        let mut slicer = Slicer::new(&w.program, &profile, SliceOptions::default());
        let blocks: Vec<ssp_ir::BlockId> = {
            let fa = slicer.analyses.get(&w.program, root.func);
            let l = fa.loops.innermost(root.block).unwrap();
            fa.loops.get(l).blocks.clone()
        };
        let slice = slicer.slice_in_region(root, &blocks).expect("root is a load");
        let graph = {
            let fa = slicer.analyses.get(&w.program, root.func);
            RegionDepGraph::build(&w.program, root.func, &blocks, fa, &profile, &mc)
        };
        let keep: std::collections::HashSet<_> = slice.insts.iter().copied().collect();
        let sg = graph.induced(&keep);
        b.iter(|| {
            ssp_sched::schedule_chaining(
                &sg,
                &w.program,
                &profile,
                &mc,
                &ssp_sched::ScheduleOptions::default(),
            )
            .order
            .len()
        })
    });

    g.bench_function("place_trigger", |b| {
        let mut slicer = Slicer::new(&w.program, &profile, SliceOptions::default());
        let blocks: Vec<ssp_ir::BlockId> = {
            let fa = slicer.analyses.get(&w.program, root.func);
            let l = fa.loops.innermost(root.block).unwrap();
            fa.loops.get(l).blocks.clone()
        };
        let slice = slicer.slice_in_region(root, &blocks).expect("root is a load");
        let mut analyses = Analyses::new();
        b.iter(|| {
            let fa = analyses.get(&w.program, root.func);
            ssp_trigger::place_trigger(
                &w.program,
                fa,
                &profile,
                &slice,
                ssp_trigger::TriggerStyle::PerIteration,
            )
        })
    });

    g.bench_function("full_adapt", |b| {
        let tool = ssp_core::PostPassTool::new(mc.clone());
        b.iter(|| tool.run(&w.program).expect("adaptation succeeds").report.slice_count())
    });
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
