//! Criterion benches, one group per paper experiment: they time the
//! simulations that regenerate each figure so `cargo bench` exercises
//! every harness end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_bench::SEED;
use ssp_core::{simulate, MachineConfig, MemoryMode, PostPassTool};

fn bench_fig2(c: &mut Criterion) {
    let w = ssp_workloads::mcf::build(SEED);
    let io = MachineConfig::in_order();
    let perfect = io.clone().with_memory_mode(MemoryMode::PerfectAll);
    let mut g = c.benchmark_group("fig2_perfect_memory");
    g.sample_size(10);
    g.bench_function("mcf/in-order/baseline", |b| b.iter(|| simulate(&w.program, &io).cycles));
    g.bench_function("mcf/in-order/perfect-mem", |b| {
        b.iter(|| simulate(&w.program, &perfect).cycles)
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let w = ssp_workloads::treeadd::build_bf(SEED);
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    let tool = PostPassTool::new(io.clone());
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    let mut g = c.benchmark_group("fig8_speedups");
    g.sample_size(10);
    g.bench_function("treeadd.bf/in-order/base", |b| b.iter(|| simulate(&w.program, &io).cycles));
    g.bench_function("treeadd.bf/in-order/ssp", |b| {
        b.iter(|| simulate(&adapted.program, &io).cycles)
    });
    g.bench_function("treeadd.bf/ooo/base", |b| b.iter(|| simulate(&w.program, &ooo).cycles));
    g.bench_function("treeadd.bf/ooo/ssp", |b| b.iter(|| simulate(&adapted.program, &ooo).cycles));
    g.finish();
}

fn bench_fig9_fig10_stats(c: &mut Criterion) {
    // The per-load stats and cycle breakdown come from the same timed
    // runs; this group times the instrumented simulation that feeds
    // Figures 9 and 10.
    let w = ssp_workloads::em3d::build(SEED);
    let io = MachineConfig::in_order();
    let tool = PostPassTool::new(io.clone());
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    let mut g = c.benchmark_group("fig9_fig10_instrumented_runs");
    g.sample_size(10);
    g.bench_function("em3d/in-order/ssp-with-stats", |b| {
        b.iter(|| {
            let r = simulate(&adapted.program, &io);
            (r.breakdown.l3_miss, r.load_stats_all().accesses)
        })
    });
    g.finish();
}

fn bench_table2_adaptation(c: &mut Criterion) {
    // Table 2 is produced by the tool itself: time the full post-pass
    // adaptation per benchmark.
    let io = MachineConfig::in_order();
    let tool = PostPassTool::new(io.clone());
    let mut g = c.benchmark_group("table2_post_pass_tool");
    g.sample_size(10);
    for w in ssp_workloads::suite(SEED) {
        g.bench_function(w.name, |b| {
            b.iter(|| tool.run(&w.program).expect("adaptation succeeds").report.slice_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2, bench_fig8, bench_fig9_fig10_stats, bench_table2_adaptation);
criterion_main!(benches);
