//! Hand-tuned SSP adaptations of `mcf` and `health` (§4.5).
//!
//! Wang et al. \[31\] adapted these two benchmarks manually; the paper
//! compares the automatic tool against them on the same simulator. Our
//! hand versions play the same role and use the same tricks the paper
//! credits the manual work with:
//!
//! * **mcf** — a two-arc-unrolled chaining slice (half the chain hand-off
//!   overhead per prefetch) that prefetches both node potentials;
//! * **health** — a chaining slice over the village worklist that
//!   *inlines the callee's patient-list walk* across the procedure
//!   boundary, chasing several patients deep — "the inlining of a few
//!   levels of recursive function calls by the programmer's hand
//!   adaptation" the automatic tool declines to do.
//!
//! Both are built directly against the known shape of the corresponding
//! [`ssp_workloads`] builders (asserted at construction time), using the
//! same stub/trigger machinery as the tool so the comparison isolates
//! slice quality.

use ssp_codegen::emit::{insert_triggers, PendingStub};
use ssp_ir::reg::conv;
use ssp_ir::{AluKind, Block, BlockId, CmpKind, FuncId, Inst, Op, Operand, Program, Reg};
use ssp_sched::SpModel;
use ssp_trigger::TriggerPoint;

fn push_block(
    prog: &mut Program,
    fid: FuncId,
    mut make: impl FnMut(&mut Vec<(u32, Op)>),
) -> BlockId {
    let mut ops: Vec<(u32, Op)> = Vec::new();
    make(&mut ops);
    let insts = ops
        .into_iter()
        .map(|(_, op)| {
            let t = prog.fresh_tag();
            Inst::new(t, op)
        })
        .collect();
    let id = BlockId(prog.func(fid).blocks.len() as u32);
    prog.func_mut(fid).blocks.push(Block { insts, attachment: true });
    id
}

/// Hand-adapt the `mcf` workload program.
///
/// # Panics
///
/// Panics if `prog` does not have the shape `ssp_workloads::mcf::build`
/// produces.
pub fn adapt_mcf(prog: &Program) -> Program {
    let fid = prog.entry;
    let func = prog.func(fid);
    assert_eq!(func.name, "primal_bea_map", "expects the mcf workload");
    assert!(func.blocks.len() >= 7, "mcf builder layout changed");
    let cont = BlockId(4);
    assert!(
        matches!(func.block(cont).insts[0].op, Op::Alu { kind: AluKind::Add, .. }),
        "cont block starts with the arc update"
    );

    let mut out = prog.clone();
    // Registers: live-ins are arc (r70) and K (r65); slice temps high.
    let (arc, k) = (Reg(70), Reg(65));
    let (a, kk, cnt, a2, a4, p, c, s2) =
        (Reg(100), Reg(101), Reg(102), Reg(103), Reg(104), Reg(105), Reg(106), Reg(107));
    let (t1, h1, t2, h2) = (Reg(108), Reg(109), Reg(110), Reg(111));

    let n0 = out.func(fid).blocks.len() as u32;
    let (entry_s, spawn_s, work_s) = (BlockId(n0), BlockId(n0 + 1), BlockId(n0 + 2));
    push_block(&mut out, fid, |ops| {
        ops.push((0, Op::LibLd { dst: a, slot: conv::SLOT, idx: 0 }));
        ops.push((0, Op::LibLd { dst: kk, slot: conv::SLOT, idx: 1 }));
        ops.push((0, Op::LibLd { dst: cnt, slot: conv::SLOT, idx: 2 }));
        ops.push((0, Op::LibFree { slot: conv::SLOT }));
        ops.push((0, Op::Alu { kind: AluKind::Add, dst: a2, a, b: Operand::Imm(64) }));
        ops.push((0, Op::Alu { kind: AluKind::Add, dst: a4, a, b: Operand::Imm(128) }));
        ops.push((0, Op::Cmp { kind: CmpKind::Lt, dst: p, a: a4, b: Operand::Reg(kk) }));
        ops.push((0, Op::Cmp { kind: CmpKind::Gt, dst: c, a: cnt, b: Operand::Imm(0) }));
        ops.push((0, Op::Alu { kind: AluKind::And, dst: p, a: p, b: Operand::Reg(c) }));
        ops.push((0, Op::BrCond { pred: p, if_true: spawn_s, if_false: work_s }));
    });
    push_block(&mut out, fid, |ops| {
        ops.push((0, Op::Alu { kind: AluKind::Sub, dst: cnt, a: cnt, b: Operand::Imm(1) }));
        ops.push((0, Op::LibAlloc { dst: s2 }));
        ops.push((0, Op::LibSt { slot: s2, idx: 0, src: a4 }));
        ops.push((0, Op::LibSt { slot: s2, idx: 1, src: kk }));
        ops.push((0, Op::LibSt { slot: s2, idx: 2, src: cnt }));
        ops.push((0, Op::Spawn { entry: entry_s, slot: s2 }));
        ops.push((0, Op::Br { target: work_s }));
    });
    push_block(&mut out, fid, |ops| {
        // Prefetch both potentials of this arc and the next one.
        ops.push((0, Op::Ld { dst: t1, base: a, off: 0 }));
        ops.push((0, Op::Lfetch { base: t1, off: 0 }));
        ops.push((0, Op::Ld { dst: h1, base: a, off: 8 }));
        ops.push((0, Op::Lfetch { base: h1, off: 0 }));
        ops.push((0, Op::Ld { dst: t2, base: a2, off: 0 }));
        ops.push((0, Op::Lfetch { base: t2, off: 0 }));
        ops.push((0, Op::Ld { dst: h2, base: a2, off: 8 }));
        ops.push((0, Op::Lfetch { base: h2, off: 0 }));
        ops.push((0, Op::KillThread));
    });
    // Stub: copy {arc, K}, chain budget; spawn.
    let (rs, rt) = (Reg(112), Reg(113));
    let stub = push_block(&mut out, fid, |ops| {
        ops.push((0, Op::LibAlloc { dst: rs }));
        ops.push((0, Op::LibSt { slot: rs, idx: 0, src: arc }));
        ops.push((0, Op::LibSt { slot: rs, idx: 1, src: k }));
        ops.push((0, Op::Movi { dst: rt, imm: 4000 }));
        ops.push((0, Op::LibSt { slot: rs, idx: 2, src: rt }));
        ops.push((0, Op::Spawn { entry: entry_s, slot: rs }));
        // Resume branch appended by insert_triggers.
    });
    let pending = PendingStub {
        func: fid,
        stub,
        slice_entry: entry_s,
        live_ins: vec![arc, k],
        slice_len: 12,
        interprocedural: false,
        model: SpModel::Chaining,
        root_tags: Vec::new(),
    };
    let point = TriggerPoint { func: fid, block: cont, after: Some(0) };
    insert_triggers(&mut out, vec![(point, pending)]);
    ssp_ir::verify::verify(&out).expect("hand mcf verifies");
    ssp_ir::verify::verify_speculative(&out).expect("hand mcf slice is store-free");
    out
}

/// Hand-adapt the `health` workload program.
///
/// # Panics
///
/// Panics if `prog` does not have the shape
/// `ssp_workloads::health::build` produces.
pub fn adapt_health(prog: &Program) -> Program {
    let fid = prog.entry;
    let func = prog.func(fid);
    assert_eq!(func.name, "main", "expects the health workload");
    assert!(prog.funcs.len() == 2, "health has main + check_patients");
    let child_l = BlockId(3);
    assert!(
        matches!(func.block(child_l).insts[0].op, Op::Ld { .. }),
        "child_l starts by popping the worklist"
    );

    let mut out = prog.clone();
    // Live-ins: worklist head (r66) and tail (r67) cursors.
    let (headp, tailp) = (Reg(66), Reg(67));
    let (hp, tp, cnt, hp2, p, c, s2) =
        (Reg(100), Reg(101), Reg(102), Reg(103), Reg(104), Reg(105), Reg(106));
    let (v, ph, p1, p2) = (Reg(107), Reg(108), Reg(109), Reg(110));

    let n0 = out.func(fid).blocks.len() as u32;
    let (entry_s, spawn_s, work_s) = (BlockId(n0), BlockId(n0 + 1), BlockId(n0 + 2));
    push_block(&mut out, fid, |ops| {
        ops.push((0, Op::LibLd { dst: hp, slot: conv::SLOT, idx: 0 }));
        ops.push((0, Op::LibLd { dst: tp, slot: conv::SLOT, idx: 1 }));
        ops.push((0, Op::LibLd { dst: cnt, slot: conv::SLOT, idx: 2 }));
        ops.push((0, Op::LibFree { slot: conv::SLOT }));
        ops.push((0, Op::Alu { kind: AluKind::Add, dst: hp2, a: hp, b: Operand::Imm(8) }));
        // Stale tail bound: conservative chain stop.
        ops.push((0, Op::Cmp { kind: CmpKind::Lt, dst: p, a: hp2, b: Operand::Reg(tp) }));
        ops.push((0, Op::Cmp { kind: CmpKind::Gt, dst: c, a: cnt, b: Operand::Imm(0) }));
        ops.push((0, Op::Alu { kind: AluKind::And, dst: p, a: p, b: Operand::Reg(c) }));
        ops.push((0, Op::BrCond { pred: p, if_true: spawn_s, if_false: work_s }));
    });
    push_block(&mut out, fid, |ops| {
        ops.push((0, Op::Alu { kind: AluKind::Sub, dst: cnt, a: cnt, b: Operand::Imm(1) }));
        ops.push((0, Op::LibAlloc { dst: s2 }));
        ops.push((0, Op::LibSt { slot: s2, idx: 0, src: hp2 }));
        ops.push((0, Op::LibSt { slot: s2, idx: 1, src: tp }));
        ops.push((0, Op::LibSt { slot: s2, idx: 2, src: cnt }));
        ops.push((0, Op::Spawn { entry: entry_s, slot: s2 }));
        ops.push((0, Op::Br { target: work_s }));
    });
    push_block(&mut out, fid, |ops| {
        // The hand trick: inline check_patients' pointer chase across the
        // call boundary, three patients deep, plus the village lines.
        ops.push((0, Op::Ld { dst: v, base: hp, off: 0 })); // village ptr
        ops.push((0, Op::Lfetch { base: v, off: 0 })); // children line
        ops.push((0, Op::Ld { dst: ph, base: v, off: 32 })); // patients head
        ops.push((0, Op::Ld { dst: p1, base: ph, off: 0 })); // patient 1 (line: next+time)
        ops.push((0, Op::Ld { dst: p2, base: p1, off: 0 })); // patient 2
        ops.push((0, Op::Lfetch { base: p2, off: 0 })); // patient 3
        ops.push((0, Op::KillThread));
    });
    let (rs, rt) = (Reg(111), Reg(112));
    let stub = push_block(&mut out, fid, |ops| {
        ops.push((0, Op::LibAlloc { dst: rs }));
        ops.push((0, Op::LibSt { slot: rs, idx: 0, src: headp }));
        ops.push((0, Op::LibSt { slot: rs, idx: 1, src: tailp }));
        ops.push((0, Op::Movi { dst: rt, imm: 800 }));
        ops.push((0, Op::LibSt { slot: rs, idx: 2, src: rt }));
        ops.push((0, Op::Spawn { entry: entry_s, slot: rs }));
    });
    let pending = PendingStub {
        func: fid,
        stub,
        slice_entry: entry_s,
        live_ins: vec![headp, tailp],
        slice_len: 10,
        interprocedural: true,
        model: SpModel::Chaining,
        root_tags: Vec::new(),
    };
    // Trigger right after the worklist pop advances headp (idx 1).
    let point = TriggerPoint { func: fid, block: child_l, after: Some(1) };
    insert_triggers(&mut out, vec![(point, pending)]);
    ssp_ir::verify::verify(&out).expect("hand health verifies");
    ssp_ir::verify::verify_speculative(&out).expect("hand health slice is store-free");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_core::{simulate, MachineConfig};

    #[test]
    fn hand_mcf_speeds_up_in_order() {
        let w = ssp_workloads::mcf::build(crate::SEED);
        let hand = adapt_mcf(&w.program);
        let mc = MachineConfig::in_order();
        let base = simulate(&w.program, &mc);
        let h = simulate(&hand, &mc);
        assert!(h.halted);
        assert!(h.threads_spawned > 10);
        assert!(
            h.cycles * 4 < base.cycles * 3,
            "hand mcf saves >25%: base={} hand={}",
            base.cycles,
            h.cycles
        );
    }

    #[test]
    fn hand_health_speeds_up_in_order() {
        let w = ssp_workloads::health::build(crate::SEED);
        let hand = adapt_health(&w.program);
        let mc = MachineConfig::in_order();
        let base = simulate(&w.program, &mc);
        let h = simulate(&hand, &mc);
        assert!(h.halted);
        assert!(h.threads_spawned > 10);
        assert!(
            h.cycles * 10 < base.cycles * 9,
            "hand health saves >10%: base={} hand={}",
            base.cycles,
            h.cycles
        );
    }

    #[test]
    fn hand_adaptations_preserve_main_thread_work() {
        type HandAdapt = fn(&Program) -> Program;
        let cases: Vec<(ssp_workloads::Workload, HandAdapt)> = vec![
            (ssp_workloads::mcf::build(crate::SEED), adapt_mcf),
            (ssp_workloads::health::build(crate::SEED), adapt_health),
        ];
        for (w, adapt) in cases {
            let hand = adapt(&w.program);
            let mc = MachineConfig::in_order().with_memory_mode(ssp_core::MemoryMode::PerfectAll);
            let base = simulate(&w.program, &mc);
            let h = simulate(&hand, &mc);
            for (tag, s) in &base.loads {
                assert_eq!(
                    s.accesses,
                    h.loads.get(tag).map(|x| x.accesses).unwrap_or(0),
                    "{}: load {tag} count preserved",
                    w.name
                );
            }
        }
    }
}
