//! Process-wide memoization of workload simulations, sharded by machine
//! config and optionally spilled to an on-disk store.
//!
//! Every experiment binary re-simulates the same original workloads:
//! `fig8`/`fig9`/`fig10` all need `base_io`/`base_ooo`, `fig2` needs
//! them again as the denominators of its perfect-memory bars, and
//! `perf_report` times the whole lot. Those runs are pure functions of
//! `(program, machine config)`, so each distinct pair needs to be
//! simulated exactly once per process; [`baseline`] guarantees that.
//! Adapted binaries are pure too, once the adaptation options join the
//! identity: [`adapted`] keys on `AdaptOptions::fingerprint` plus the
//! tool's profiling machine, so the auto-tuner's candidate plans, the
//! default suite rows, and ablation runs all coexist in one cache.
//!
//! Programs are identified by `(workload name, builder seed)` — the
//! builders are deterministic, so that pair pins the binary bit-for-bit
//! (`next_tag` and the image length ride along in the key as a cheap
//! integrity check). Machine configs are identified by
//! [`MachineConfig::fingerprint`], the versioned field-explicit
//! canonical encoding (never `Debug` formatting, whose output is not
//! stable across field reorders or rustc versions — which the
//! disk-persistent layer could not tolerate).
//!
//! The in-memory map is split into [`NUM_SHARDS`] mutexed shards
//! selected by the fingerprint's hash, so requests for different
//! machine models never contend on one lock; `ssp-serve` batches mix
//! models freely. When a [`Store`] is attached ([`attach_store`]), a
//! first-in-process request additionally consults the disk before
//! simulating, and every simulated result is written back — that is
//! what makes a daemon restart warm.
//!
//! Concurrency: each key maps to its own [`OnceLock`] cell, so when
//! several workers race on one key the first computes and the rest
//! block on the cell rather than duplicating the simulation. That also
//! makes [`stats`] deterministic for a fixed request stream and store
//! state: misses = distinct keys never on disk, disk hits = distinct
//! keys on disk, memory hits = requests − distinct keys, whatever the
//! thread schedule (asserted by the determinism tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::persist::{decode_sim_result, encode_sim_result, fnv64, Store};
use ssp_core::{simulate, MachineConfig, SimResult};
use ssp_workloads::Workload;

/// In-memory shard count. Shards are selected by the config
/// fingerprint's hash, so every result for one machine model lives in
/// one shard and different models never contend.
pub const NUM_SHARDS: usize = 16;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    /// Entry kind: `"baseline"` (original binary, identified by the
    /// workload alone) or `"adapted"` (identified additionally by
    /// `adaptation` — the options fingerprint plus the tool's profiling
    /// machine). Part of the key, so the two kinds can never collide.
    kind: &'static str,
    name: &'static str,
    seed: u64,
    next_tag: u32,
    image_len: usize,
    /// Adaptation identity (`opts=… tool=… …`); empty for baselines.
    adaptation: String,
    config: String,
}

impl Key {
    /// The canonical key string persisted (inside the entry, as the
    /// collision guard) by the disk layer. Baseline keys render exactly
    /// as they did before adapted entries existed, so stores written by
    /// older binaries stay warm.
    fn disk_key(&self) -> String {
        let adaptation = if self.adaptation.is_empty() {
            String::new()
        } else {
            format!("{} ", self.adaptation)
        };
        format!(
            "{} name={} seed={} next_tag={} image_len={} {}{}",
            self.kind, self.name, self.seed, self.next_tag, self.image_len, adaptation, self.config
        )
    }
}

type Cell = Arc<OnceLock<SimResult>>;

static SHARDS: OnceLock<Vec<Mutex<HashMap<Key, Cell>>>> = OnceLock::new();
static STORE: Mutex<Option<Arc<Store>>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static Vec<Mutex<HashMap<Key, Cell>>> {
    SHARDS.get_or_init(|| (0..NUM_SHARDS).map(|_| Mutex::default()).collect())
}

/// Attach an on-disk store: from now on, first-in-process [`baseline`]
/// requests consult (and populate) the store before simulating. The
/// daemon attaches its `--store` directory here so workload baselines
/// survive restarts along with the serve-level entries.
pub fn attach_store(store: Store) {
    *STORE.lock().expect("store slot poisoned") = Some(Arc::new(store));
}

/// Detach the on-disk store (in-memory memoization continues). Used by
/// tests that simulate cold and warm processes in one binary.
pub fn detach_store() {
    *STORE.lock().expect("store slot poisoned") = None;
}

/// Simulate workload `w`'s *original* binary under `cfg`, memoized for
/// the life of the process (and, with a store attached, across
/// processes). The first request for a `(workload, config)` pair runs
/// [`ssp_core::simulate`] — unless the attached store already holds the
/// result, which is decoded instead; every later request (from any
/// thread) returns a clone of the stored result.
pub fn baseline(w: &Workload, cfg: &MachineConfig) -> SimResult {
    let key = Key {
        kind: "baseline",
        name: w.name,
        seed: w.seed,
        next_tag: w.program.next_tag,
        image_len: w.program.image.len(),
        adaptation: String::new(),
        config: cfg.fingerprint(),
    };
    memoized(key, || simulate(&w.program, cfg))
}

/// Simulate workload `w`'s *adapted* binary under `cfg`, memoized like
/// [`baseline`]. An adapted binary is a pure function of the workload,
/// the adaptation options, and the tool's profiling machine, so the key
/// extends the baseline identity with [`AdaptOptions::fingerprint`]
/// (`opts_fp`) and the profiling machine's fingerprint (`tool_fp`) —
/// before that versioned options encoding existed, tuned and default
/// plans would have collided on workload+seed+machine alone, which is
/// why only baselines used to be cacheable. `adapted_prog` (the emitted
/// binary itself) is simulated on a miss; its `next_tag` rides along in
/// the key as a cheap structural integrity check.
///
/// [`AdaptOptions::fingerprint`]: ssp_core::AdaptOptions::fingerprint
pub fn adapted(
    w: &Workload,
    opts_fp: &str,
    tool_fp: &str,
    adapted_prog: &ssp_ir::Program,
    cfg: &MachineConfig,
) -> SimResult {
    let key = Key {
        kind: "adapted",
        name: w.name,
        seed: w.seed,
        next_tag: w.program.next_tag,
        image_len: w.program.image.len(),
        adaptation: format!(
            "adapted_next_tag={} opts={opts_fp} tool={tool_fp}",
            adapted_prog.next_tag
        ),
        config: cfg.fingerprint(),
    };
    memoized(key, || simulate(adapted_prog, cfg))
}

/// The shared memoization path behind [`baseline`] and [`adapted`]:
/// per-key `OnceLock` in the shard selected by the machine-config
/// fingerprint, disk probe + write-back when a store is attached, and
/// the schedule-independent hit/disk-hit/miss accounting.
fn memoized(key: Key, compute: impl FnOnce() -> SimResult) -> SimResult {
    let shard_idx = (fnv64(&key.config) % NUM_SHARDS as u64) as usize;
    let cell: Cell = {
        let mut map = shards()[shard_idx].lock().expect("baseline cache shard poisoned");
        Arc::clone(map.entry(key.clone()).or_default())
    };
    let store = STORE.lock().expect("store slot poisoned").clone();
    let mut computed = false;
    let mut from_disk = false;
    let result = cell.get_or_init(|| {
        if let Some(store) = &store {
            let shard = Store::shard_of(&key.config);
            if let Some(decoded) =
                store.load(&shard, &key.disk_key()).and_then(|p| decode_sim_result(&p).ok())
            {
                from_disk = true;
                return decoded;
            }
        }
        computed = true;
        compute()
    });
    if computed {
        MISSES.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &store {
            let shard = Store::shard_of(&key.config);
            if let Err(e) = store.save(&shard, &key.disk_key(), &encode_sim_result(result)) {
                eprintln!("ssp-bench: baseline store write failed ({e}); continuing uncached");
            }
        }
    } else if from_disk {
        DISK_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    result.clone()
}

/// Cache effectiveness counters for [`baseline`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Requests answered from the in-memory cache.
    pub hits: u64,
    /// First-in-process requests answered by decoding a store entry.
    pub disk_hits: u64,
    /// Requests that ran a simulation (== distinct keys never on disk).
    pub misses: u64,
}

/// Snapshot the process-wide [`baseline`] hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEED;
    use ssp_sim::MemoryMode;

    #[test]
    fn memoizes_and_counts_deterministically() {
        // Use a config no other test shares so the stats delta is ours.
        let w = ssp_workloads::mcf::build(SEED);
        let mut cfg = MachineConfig::in_order();
        cfg.max_cycles = 31_337;

        let before = stats();
        let first = baseline(&w, &cfg);
        let mid = stats();
        assert_eq!(mid.misses, before.misses + 1, "first request simulates");

        let results = crate::parallel::map_indexed(&[(); 8], 4, |_, ()| baseline(&w, &cfg));
        for r in &results {
            assert_eq!(*r, first, "cached result must be bit-identical");
        }
        let after = stats();
        assert_eq!(after.misses, mid.misses, "repeat requests never re-simulate");
        assert_eq!(after.hits, mid.hits + 8, "every repeat request is a hit");
        assert_eq!(first, ssp_core::simulate_stepped(&w.program, &cfg), "cache returns the truth");
    }

    #[test]
    fn adapted_entries_key_on_the_options_fingerprint() {
        let w = ssp_workloads::mcf::build(SEED);
        let mut cfg = MachineConfig::in_order();
        cfg.max_cycles = 17_389; // unique to this test, so the deltas are ours
        let before = stats();
        let a = adapted(&w, "ssp-adapt-options/1 test=a", "tool", &w.program, &cfg);
        let mid = stats();
        assert_eq!(mid.misses, before.misses + 1, "first request simulates");
        let b = adapted(&w, "ssp-adapt-options/1 test=b", "tool", &w.program, &cfg);
        let after = stats();
        assert_eq!(
            after.misses,
            mid.misses + 1,
            "a different options fingerprint must be a different key"
        );
        assert_eq!(a, b, "same program, same config: same truth under either key");
        let again = adapted(&w, "ssp-adapt-options/1 test=a", "tool", &w.program, &cfg);
        assert_eq!(again, a, "repeat request answers from memory");
        // Baseline and adapted entries never collide, even when the
        // "adapted" binary is byte-identical to the original (a no-op
        // adaptation): the key kind keeps the namespaces disjoint.
        let base = baseline(&w, &cfg);
        assert_eq!(base, a);
        assert_eq!(
            stats().misses,
            after.misses + 1,
            "baseline keys are disjoint from adapted keys"
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let w = ssp_workloads::em3d::build(SEED);
        let mut a = MachineConfig::in_order();
        a.max_cycles = 10_007;
        let mut b = a.clone();
        b.max_cycles = 20_021;
        assert_ne!(baseline(&w, &a), baseline(&w, &b), "different caps, different results");
    }

    #[test]
    fn perfect_delinquent_fingerprint_is_order_independent() {
        use ssp_ir::InstTag;
        // Two HashSets built in different insertion orders must land on
        // the same cache key (HashSet iteration order is not stable);
        // the canonical fingerprint sorts the tags.
        let fwd: std::collections::HashSet<_> = (0..20).map(InstTag).collect();
        let rev: std::collections::HashSet<_> = (0..20).rev().map(InstTag).collect();
        let a = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectDelinquent(fwd));
        let b = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectDelinquent(rev));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            MachineConfig::in_order().fingerprint(),
            "memory mode is part of the identity"
        );
    }
}
