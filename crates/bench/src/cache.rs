//! Process-wide memoization of baseline simulations.
//!
//! Every experiment binary re-simulates the same original workloads:
//! `fig8`/`fig9`/`fig10` all need `base_io`/`base_ooo`, `fig2` needs
//! them again as the denominators of its perfect-memory bars, and
//! `perf_report` times the whole lot. Those runs are pure functions of
//! `(program, machine config)`, so each distinct pair needs to be
//! simulated exactly once per process; [`baseline`] guarantees that.
//!
//! Programs are identified by `(workload name, builder seed)` — the
//! builders are deterministic, so that pair pins the binary bit-for-bit
//! (`next_tag` and the image length ride along in the key as a cheap
//! integrity check). Machine configs are identified by a canonical
//! fingerprint string: the `Debug` rendering with the memory mode
//! normalized separately, because `MemoryMode::PerfectDelinquent` holds
//! a `HashSet` whose iteration (and hence `Debug`) order is not stable
//! across instances.
//!
//! Concurrency: the cache maps each key to its own [`OnceLock`] cell, so
//! when several workers race on one key the first computes and the rest
//! block on the cell rather than duplicating the simulation. That also
//! makes [`stats`] deterministic for a fixed request stream: misses =
//! distinct keys, hits = requests − distinct keys, whatever the thread
//! schedule (asserted by the determinism tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ssp_core::{simulate, MachineConfig, MemoryMode, SimResult};
use ssp_workloads::Workload;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    name: &'static str,
    seed: u64,
    next_tag: u32,
    image_len: usize,
    config: String,
}

type Cell = Arc<OnceLock<SimResult>>;

static CACHE: OnceLock<Mutex<HashMap<Key, Cell>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Canonical identity of a machine configuration, stable across
/// instances that compare equal.
fn config_fingerprint(cfg: &MachineConfig) -> String {
    let mut canon = cfg.clone();
    let mode = std::mem::replace(&mut canon.memory_mode, MemoryMode::Normal);
    let mode = match mode {
        MemoryMode::Normal => "normal".to_string(),
        MemoryMode::PerfectAll => "perfect-all".to_string(),
        MemoryMode::PerfectDelinquent(tags) => {
            let mut tags: Vec<u32> = tags.into_iter().map(|t| t.0).collect();
            tags.sort_unstable();
            format!("perfect-delinquent:{tags:?}")
        }
    };
    format!("{canon:?}|{mode}")
}

/// Simulate workload `w`'s *original* binary under `cfg`, memoized for
/// the life of the process. The first request for a `(workload, config)`
/// pair runs [`ssp_core::simulate`]; every later request (from any
/// thread) returns a clone of the stored result.
///
/// Only baselines belong here: adapted binaries are not pure functions
/// of `(name, seed)` — they depend on the adaptation options — and each
/// suite run adapts once anyway.
pub fn baseline(w: &Workload, cfg: &MachineConfig) -> SimResult {
    let key = Key {
        name: w.name,
        seed: w.seed,
        next_tag: w.program.next_tag,
        image_len: w.program.image.len(),
        config: config_fingerprint(cfg),
    };
    let cell: Cell = {
        let mut map = CACHE.get_or_init(Mutex::default).lock().expect("baseline cache poisoned");
        Arc::clone(map.entry(key).or_default())
    };
    let mut computed = false;
    let result = cell.get_or_init(|| {
        computed = true;
        simulate(&w.program, cfg)
    });
    if computed {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    result.clone()
}

/// Cache effectiveness counters for [`baseline`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran a simulation (== distinct keys ever requested).
    pub misses: u64,
}

/// Snapshot the process-wide [`baseline`] hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats { hits: HITS.load(Ordering::Relaxed), misses: MISSES.load(Ordering::Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEED;

    #[test]
    fn memoizes_and_counts_deterministically() {
        // Use a config no other test shares so the stats delta is ours.
        let w = ssp_workloads::mcf::build(SEED);
        let mut cfg = MachineConfig::in_order();
        cfg.max_cycles = 31_337;

        let before = stats();
        let first = baseline(&w, &cfg);
        let mid = stats();
        assert_eq!(mid.misses, before.misses + 1, "first request simulates");

        let results = crate::parallel::map_indexed(&[(); 8], 4, |_, ()| baseline(&w, &cfg));
        for r in &results {
            assert_eq!(*r, first, "cached result must be bit-identical");
        }
        let after = stats();
        assert_eq!(after.misses, mid.misses, "repeat requests never re-simulate");
        assert_eq!(after.hits, mid.hits + 8, "every repeat request is a hit");
        assert_eq!(first, ssp_core::simulate_stepped(&w.program, &cfg), "cache returns the truth");
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let w = ssp_workloads::em3d::build(SEED);
        let mut a = MachineConfig::in_order();
        a.max_cycles = 10_007;
        let mut b = a.clone();
        b.max_cycles = 20_021;
        assert_ne!(baseline(&w, &a), baseline(&w, &b), "different caps, different results");
    }

    #[test]
    fn perfect_delinquent_fingerprint_is_order_independent() {
        use ssp_ir::InstTag;
        // Two HashSets built in different insertion orders must produce
        // the same fingerprint (HashSet Debug order is not stable).
        let fwd: std::collections::HashSet<_> = (0..20).map(InstTag).collect();
        let rev: std::collections::HashSet<_> = (0..20).rev().map(InstTag).collect();
        let a = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectDelinquent(fwd));
        let b = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectDelinquent(rev));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        assert_ne!(
            config_fingerprint(&a),
            config_fingerprint(&MachineConfig::in_order()),
            "memory mode is part of the identity"
        );
    }
}
