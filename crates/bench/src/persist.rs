//! Canonical serialization and the on-disk store shared by the
//! `ssp-bench` baseline cache and the `ssp-serve` daemon.
//!
//! Two layers live here:
//!
//! * **Payload encoding** — [`encode_sim_result`]/[`decode_sim_result`]
//!   turn a [`SimResult`] into a versioned, line-oriented text block
//!   (`ssp-sim-result/1`) and back. The encoding is field-explicit (a
//!   new `SimResult` field breaks the encoder at compile time) and
//!   canonical (the per-load map is emitted sorted by tag), so equal
//!   results always serialize identically.
//! * **[`Store`]** — a sharded directory of versioned entries with
//!   atomic writes. Entries are keyed by an arbitrary key string; the
//!   file name is the key's 64-bit FNV-1a hash, and the full key is
//!   stored inside the entry as a collision guard (a hash collision
//!   reads back as a miss, never as wrong data). Writers create a
//!   temporary file and `rename` it into place, so concurrent readers
//!   only ever observe complete entries.
//!
//! The store layout under its root directory:
//!
//! ```text
//! <root>/FORMAT              "ssp-serve-store/1\n" (version guard)
//! <root>/<shard>/<fnv64(key):016x>.entry
//! ```
//!
//! where `<shard>` is any caller-chosen shard name — `ssp-serve` and
//! the baseline cache both use [`Store::shard_of`] over the machine
//! config fingerprint, so one machine model's entries live together.

use ssp_core::SimResult;
use ssp_ir::InstTag;
use ssp_sim::{CycleBreakdown, LoadStats};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version header of one serialized [`SimResult`] block.
pub const SIM_RESULT_FORMAT: &str = "ssp-sim-result/1";

/// Version header of the on-disk store (the `FORMAT` file and the first
/// line of every entry).
pub const STORE_FORMAT: &str = "ssp-serve-store/1";

/// 64-bit FNV-1a hash of a string — the store's key-to-filename map and
/// the shard selector. Stable by construction (pure arithmetic on
/// bytes), unlike `std`'s `DefaultHasher`, which is randomly seeded.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a persisted payload could not be decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PersistError {
    /// The payload does not start with the expected version header.
    Header {
        /// The header the decoder requires.
        expected: &'static str,
        /// The first line actually found.
        found: String,
    },
    /// A line is missing, out of order, or fails to parse.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Header { expected, found } => {
                write!(f, "bad header: expected {expected:?}, found {found:?}")
            }
            PersistError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize a [`SimResult`] as a versioned, canonical text block.
///
/// Line-oriented `key=value` pairs in fixed order; the load map is
/// sorted by tag. [`decode_sim_result`] round-trips every field.
pub fn encode_sim_result(r: &SimResult) -> String {
    // Full destructuring: adding a field to `SimResult` breaks this at
    // compile time, forcing the encoding (and, if the change is
    // semantic, the version header) to be updated.
    let SimResult {
        cycles,
        total_cycles,
        main_insts,
        spec_insts,
        breakdown,
        loads,
        spawns_fired,
        spawns_suppressed,
        threads_spawned,
        spawns_dropped,
        runaway_kills,
        branches,
        mispredicts,
        halted,
    } = r;
    let CycleBreakdown { l3_miss, l2_miss, l1_miss, cache_exec, exec, other } = breakdown;
    let mut out = String::new();
    out.push_str(SIM_RESULT_FORMAT);
    out.push('\n');
    out.push_str(&format!("cycles={cycles}\n"));
    out.push_str(&format!("total_cycles={total_cycles}\n"));
    out.push_str(&format!("main_insts={main_insts}\n"));
    out.push_str(&format!("spec_insts={spec_insts}\n"));
    out.push_str(&format!("breakdown={l3_miss}:{l2_miss}:{l1_miss}:{cache_exec}:{exec}:{other}\n"));
    out.push_str(&format!("spawns_fired={spawns_fired}\n"));
    out.push_str(&format!("spawns_suppressed={spawns_suppressed}\n"));
    out.push_str(&format!("threads_spawned={threads_spawned}\n"));
    out.push_str(&format!("spawns_dropped={spawns_dropped}\n"));
    out.push_str(&format!("runaway_kills={runaway_kills}\n"));
    out.push_str(&format!("branches={branches}\n"));
    out.push_str(&format!("mispredicts={mispredicts}\n"));
    out.push_str(&format!("halted={halted}\n"));
    let mut tags: Vec<&InstTag> = loads.keys().collect();
    tags.sort_unstable();
    out.push_str(&format!("loads={}\n", tags.len()));
    for tag in tags {
        let LoadStats { accesses, l1, l2, l2_partial, l3, l3_partial, mem, mem_partial } =
            &loads[tag];
        out.push_str(&format!(
            "{}:{accesses}:{l1}:{l2}:{l2_partial}:{l3}:{l3_partial}:{mem}:{mem_partial}\n",
            tag.0
        ));
    }
    out
}

/// Split `line` as `key=value`, requiring `key` to match.
fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, PersistError> {
    let line = line.ok_or_else(|| PersistError::Malformed(format!("missing field {key}")))?;
    match line.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(PersistError::Malformed(format!("expected field {key}, found {line:?}"))),
    }
}

fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, PersistError> {
    v.parse().map_err(|_| PersistError::Malformed(format!("field {key}: bad value {v:?}")))
}

/// Parse a text block produced by [`encode_sim_result`].
pub fn decode_sim_result(text: &str) -> Result<SimResult, PersistError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != SIM_RESULT_FORMAT {
        return Err(PersistError::Header { expected: SIM_RESULT_FORMAT, found: header.to_owned() });
    }
    let mut r = SimResult {
        cycles: num("cycles", field(lines.next(), "cycles")?)?,
        total_cycles: num("total_cycles", field(lines.next(), "total_cycles")?)?,
        main_insts: num("main_insts", field(lines.next(), "main_insts")?)?,
        spec_insts: num("spec_insts", field(lines.next(), "spec_insts")?)?,
        ..SimResult::default()
    };
    let bd = field(lines.next(), "breakdown")?;
    let parts: Vec<&str> = bd.split(':').collect();
    if parts.len() != 6 {
        return Err(PersistError::Malformed(format!("breakdown needs 6 fields, found {bd:?}")));
    }
    r.breakdown = CycleBreakdown {
        l3_miss: num("breakdown", parts[0])?,
        l2_miss: num("breakdown", parts[1])?,
        l1_miss: num("breakdown", parts[2])?,
        cache_exec: num("breakdown", parts[3])?,
        exec: num("breakdown", parts[4])?,
        other: num("breakdown", parts[5])?,
    };
    r.spawns_fired = num("spawns_fired", field(lines.next(), "spawns_fired")?)?;
    r.spawns_suppressed = num("spawns_suppressed", field(lines.next(), "spawns_suppressed")?)?;
    r.threads_spawned = num("threads_spawned", field(lines.next(), "threads_spawned")?)?;
    r.spawns_dropped = num("spawns_dropped", field(lines.next(), "spawns_dropped")?)?;
    r.runaway_kills = num("runaway_kills", field(lines.next(), "runaway_kills")?)?;
    r.branches = num("branches", field(lines.next(), "branches")?)?;
    r.mispredicts = num("mispredicts", field(lines.next(), "mispredicts")?)?;
    r.halted = match field(lines.next(), "halted")? {
        "true" => true,
        "false" => false,
        v => return Err(PersistError::Malformed(format!("field halted: bad value {v:?}"))),
    };
    let n: usize = num("loads", field(lines.next(), "loads")?)?;
    for _ in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| PersistError::Malformed("truncated load list".to_owned()))?;
        let parts: Vec<&str> = line.split(':').collect();
        if parts.len() != 9 {
            return Err(PersistError::Malformed(format!("load row needs 9 fields: {line:?}")));
        }
        let tag = InstTag(num("load tag", parts[0])?);
        let stats = LoadStats {
            accesses: num("load", parts[1])?,
            l1: num("load", parts[2])?,
            l2: num("load", parts[3])?,
            l2_partial: num("load", parts[4])?,
            l3: num("load", parts[5])?,
            l3_partial: num("load", parts[6])?,
            mem: num("load", parts[7])?,
            mem_partial: num("load", parts[8])?,
        };
        r.loads.insert(tag, stats);
    }
    Ok(r)
}

/// A sharded on-disk store of versioned entries with atomic writes.
///
/// See the module docs for the layout. A `Store` is cheap to open and
/// safe to share across threads (all methods take `&self`; the
/// filesystem provides the synchronization via atomic renames).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if necessary) a store rooted at `root`.
    ///
    /// Writes the `FORMAT` version file on first open; fails with
    /// `InvalidData` if the directory already holds a store of a
    /// different version — silently reading entries across format
    /// versions is exactly what the version guard exists to prevent.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let format_file = root.join("FORMAT");
        match fs::read_to_string(&format_file) {
            Ok(v) if v.trim() == STORE_FORMAT => {}
            Ok(v) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "store at {} has format {:?}, this build reads {STORE_FORMAT:?}",
                        root.display(),
                        v.trim()
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&format_file, format!("{STORE_FORMAT}\n"))?;
            }
            Err(e) => return Err(e),
        }
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shard name for a machine-config fingerprint (or any other
    /// grouping string): two hex digits of its FNV-1a hash, giving up
    /// to 256 shard directories.
    pub fn shard_of(fingerprint: &str) -> String {
        format!("{:02x}", fnv64(fingerprint) & 0xff)
    }

    fn entry_path(&self, shard: &str, key: &str) -> PathBuf {
        self.root.join(shard).join(format!("{:016x}.entry", fnv64(key)))
    }

    /// Load the payload stored under `(shard, key)`, or `None` if the
    /// entry is absent, has a different version, or was written for a
    /// different key (a filename-hash collision) — every failure mode
    /// reads as a miss, never as wrong data.
    pub fn load(&self, shard: &str, key: &str) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(shard, key)).ok()?;
        let rest = text.strip_prefix(STORE_FORMAT)?.strip_prefix('\n')?;
        let (key_line, payload) = rest.split_once('\n')?;
        if key_line.strip_prefix("key=")? != key {
            return None;
        }
        Some(payload.to_owned())
    }

    /// Atomically write `payload` under `(shard, key)`: the entry is
    /// assembled in a temporary file and renamed into place, so a
    /// concurrent [`Store::load`] sees either the old entry or the new
    /// one, never a torn write.
    pub fn save(&self, shard: &str, key: &str, payload: &str) -> io::Result<()> {
        let dir = self.root.join(shard);
        fs::create_dir_all(&dir)?;
        let final_path = self.entry_path(shard, key);
        let tmp = dir.join(format!(".tmp-{:016x}-{}", fnv64(key), std::process::id()));
        fs::write(&tmp, format!("{STORE_FORMAT}\nkey={key}\n{payload}"))?;
        fs::rename(&tmp, final_path)
    }

    /// Entry count per shard, sorted by shard name — the `shards`
    /// section of the daemon's `ssp-serve-report/2`.
    pub fn shard_entry_counts(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        let Ok(dirs) = fs::read_dir(&self.root) else { return out };
        for dir in dirs.flatten() {
            if !dir.file_type().is_ok_and(|t| t.is_dir()) {
                continue;
            }
            let name = dir.file_name().to_string_lossy().into_owned();
            let entries = fs::read_dir(dir.path())
                .map(|d| {
                    d.flatten()
                        .filter(|e| e.file_name().to_string_lossy().ends_with(".entry"))
                        .count()
                })
                .unwrap_or(0);
            out.push((name, entries));
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::MachineConfig;

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ssp-persist-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn sim_result_round_trips() {
        let w = ssp_workloads::mcf::build(7);
        let mut cfg = MachineConfig::in_order();
        cfg.max_cycles = 40_000;
        let r = ssp_core::simulate(&w.program, &cfg);
        assert!(!r.loads.is_empty(), "the round trip must cover the load map");
        let text = encode_sim_result(&r);
        assert_eq!(decode_sim_result(&text).unwrap(), r);
        // Canonical: encoding the decoded result reproduces the text.
        assert_eq!(encode_sim_result(&decode_sim_result(&text).unwrap()), text);
    }

    #[test]
    fn decode_rejects_bad_payloads() {
        assert!(matches!(
            decode_sim_result("nonsense"),
            Err(PersistError::Header { expected: SIM_RESULT_FORMAT, .. })
        ));
        let good = encode_sim_result(&ssp_core::SimResult::default());
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(decode_sim_result(&truncated).is_err());
    }

    #[test]
    fn store_round_trips_and_guards_keys() {
        let root = tmpdir("roundtrip");
        let store = Store::open(&root).unwrap();
        let shard = Store::shard_of("some-fingerprint");
        assert!(store.load(&shard, "k1").is_none(), "empty store misses");
        store.save(&shard, "k1", "payload-1\n").unwrap();
        store.save(&shard, "k2", "payload-2\n").unwrap();
        assert_eq!(store.load(&shard, "k1").as_deref(), Some("payload-1\n"));
        assert_eq!(store.load(&shard, "k2").as_deref(), Some("payload-2\n"));
        // Reopening sees the same entries (this is the warm restart).
        let again = Store::open(&root).unwrap();
        assert_eq!(again.load(&shard, "k1").as_deref(), Some("payload-1\n"));
        assert_eq!(again.shard_entry_counts(), vec![(shard.clone(), 2)]);
        // A forged entry under k3's filename but recording a different
        // key must read as a miss, not as k3's data.
        fs::write(again.entry_path(&shard, "k3"), format!("{STORE_FORMAT}\nkey=not-k3\nforged\n"))
            .unwrap();
        assert!(again.load(&shard, "k3").is_none(), "key guard rejects collisions");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn store_rejects_foreign_formats() {
        let root = tmpdir("format");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("FORMAT"), "ssp-serve-store/999\n").unwrap();
        let err = Store::open(&root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&root);
    }
}
