//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§4). Each `fig*`/`table*` binary in `src/bin/`
//! prints the same rows/series the paper reports; the functions here do
//! the work so the benches and integration tests can reuse them.
//!
//! Every simulation is a pure function of a `(program, machine config)`
//! pair, so whole suites fan out across host cores: [`run_suite`] runs
//! the adaptations and then all `4 × N` simulations through
//! [`parallel::map_indexed`], and [`fig2_rows`] does the same for
//! Figure 2's per-benchmark rows. Results are collected by input index,
//! so row order and every number are identical to a serial run — the
//! `fig8`, `fig2`, `table2`, `fig9`, `fig10`, and `perf_report` binaries
//! all fan out this way (worker count from `SSP_THREADS`, default: all
//! cores), while the remaining binaries are serial. The single-benchmark
//! entry points ([`run_benchmark`], [`fig2_row`]) stay serial and are
//! the reference the parallel paths are tested against.
//!
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! simulator and synthetic workloads; see DESIGN.md), but the *shape* —
//! who wins, by roughly what factor, where the crossovers fall — is the
//! reproduction target recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod cache;
pub mod hand;
pub mod parallel;
pub mod persist;
pub mod trace;

use ssp_core::{AdaptOptions, AdaptReport, MachineConfig, MemoryMode, PostPassTool, SimResult};
use ssp_workloads::Workload;

/// Default deterministic seed for all experiments.
pub const SEED: u64 = 2002;

/// The four configurations of Figures 8–10 for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline in-order machine.
    pub base_io: SimResult,
    /// In-order machine running the SSP-enhanced binary.
    pub ssp_io: SimResult,
    /// Out-of-order machine, original binary.
    pub base_ooo: SimResult,
    /// Out-of-order machine, SSP-enhanced binary.
    pub ssp_ooo: SimResult,
    /// What the post-pass tool emitted.
    pub report: AdaptReport,
}

impl BenchmarkRun {
    /// Speedup of in-order+SSP over baseline in-order (Figure 8, bar 1).
    pub fn speedup_io_ssp(&self) -> f64 {
        self.base_io.cycles as f64 / self.ssp_io.cycles as f64
    }

    /// Speedup of OOO over baseline in-order (Figure 8, bar 2).
    pub fn speedup_ooo(&self) -> f64 {
        self.base_io.cycles as f64 / self.base_ooo.cycles as f64
    }

    /// Speedup of OOO+SSP over baseline in-order (Figure 8, bar 3).
    pub fn speedup_ooo_ssp(&self) -> f64 {
        self.base_io.cycles as f64 / self.ssp_ooo.cycles as f64
    }

    /// Whether the adaptation emitted nothing — the "binary is
    /// byte-identical to the baseline" case. Not an error by itself,
    /// but surfaced per row so a dead row can never pose as a win.
    pub fn is_noop(&self) -> bool {
        self.report.is_noop()
    }

    /// Whether the adapted binary is *slower* than the baseline on the
    /// in-order model.
    pub fn regression_io(&self) -> bool {
        self.ssp_io.cycles > self.base_io.cycles
    }

    /// Whether the adapted binary is *slower* than the baseline on the
    /// out-of-order model.
    pub fn regression_ooo(&self) -> bool {
        self.ssp_ooo.cycles > self.base_ooo.cycles
    }

    /// The row's diagnostic view (see [`SuiteRow`]).
    pub fn suite_row(&self) -> SuiteRow {
        SuiteRow {
            name: self.name.to_owned(),
            base_io: self.base_io.cycles,
            ssp_io: self.ssp_io.cycles,
            base_ooo: self.base_ooo.cycles,
            ssp_ooo: self.ssp_ooo.cycles,
            noop: self.is_noop(),
            regression_io: self.regression_io(),
            regression_ooo: self.regression_ooo(),
        }
    }
}

/// One suite row's cycle counts plus its diagnostic flags — the shape
/// both `perf_report` and the `ssp-serve` daemon render, via
/// [`suite_row_json`], so their outputs are byte-identical by
/// construction (the daemon reconstructs rows from persisted
/// [`SimResult`]s, never from a live [`BenchmarkRun`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SuiteRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline in-order ROI cycles.
    pub base_io: u64,
    /// In-order + SSP ROI cycles.
    pub ssp_io: u64,
    /// Baseline out-of-order ROI cycles.
    pub base_ooo: u64,
    /// Out-of-order + SSP ROI cycles.
    pub ssp_ooo: u64,
    /// The adaptation emitted no slices (binary unchanged).
    pub noop: bool,
    /// Adapted slower than baseline, in-order.
    pub regression_io: bool,
    /// Adapted slower than baseline, out-of-order.
    pub regression_ooo: bool,
}

impl SuiteRow {
    /// Stderr warnings this row deserves, one per line: a silent no-op
    /// or a regression must never scroll past unremarked.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.noop {
            out.push(format!(
                "warning: {}: adaptation emitted no slices (binary unchanged)",
                self.name
            ));
        }
        if self.regression_io {
            out.push(format!(
                "warning: {}: adapted binary is slower than baseline on in-order \
                 ({} -> {} cycles)",
                self.name, self.base_io, self.ssp_io
            ));
        }
        if self.regression_ooo {
            out.push(format!(
                "warning: {}: adapted binary is slower than baseline on out-of-order \
                 ({} -> {} cycles)",
                self.name, self.base_ooo, self.ssp_ooo
            ));
        }
        out
    }
}

/// Render one suite row as a single-line JSON object — the canonical
/// row shape of `ssp-perf-report/4`'s `suite.rows` and of the daemon's
/// workload responses. `regression` is true when either machine model
/// regressed; the per-model split stays in [`SuiteRow`] (and on
/// stderr via [`SuiteRow::warnings`]).
pub fn suite_row_json(r: &SuiteRow) -> String {
    format!(
        concat!(
            "{{\"name\": \"{}\", \"base_io\": {}, \"ssp_io\": {}, ",
            "\"base_ooo\": {}, \"ssp_ooo\": {}, \"noop\": {}, \"regression\": {}}}"
        ),
        r.name,
        r.base_io,
        r.ssp_io,
        r.base_ooo,
        r.ssp_ooo,
        r.noop,
        r.regression_io || r.regression_ooo,
    )
}

/// Run the full tool + simulation pipeline for one benchmark: profile,
/// adapt, then simulate all four configurations (the paper evaluates the
/// same enhanced binary on both machine models). Serial.
pub fn run_benchmark(w: &Workload) -> BenchmarkRun {
    run_benchmark_with(w, &AdaptOptions::default())
}

/// [`run_benchmark`] with explicit adaptation options (for ablations).
pub fn run_benchmark_with(w: &Workload, opts: &AdaptOptions) -> BenchmarkRun {
    run_benchmark_configured(w, opts, &MachineConfig::in_order(), &MachineConfig::out_of_order())
}

/// [`run_benchmark_with`] against explicit machine models (tests use
/// cycle-capped configs so debug-build runs stay fast).
pub fn run_benchmark_configured(
    w: &Workload,
    opts: &AdaptOptions,
    io: &MachineConfig,
    ooo: &MachineConfig,
) -> BenchmarkRun {
    let tool = PostPassTool::new(io.clone()).with_options(opts.clone());
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    let opts_fp = opts.fingerprint();
    let tool_fp = io.fingerprint();
    BenchmarkRun {
        name: w.name,
        base_io: cache::baseline(w, io),
        ssp_io: cache::adapted(w, &opts_fp, &tool_fp, &adapted.program, io),
        base_ooo: cache::baseline(w, ooo),
        ssp_ooo: cache::adapted(w, &opts_fp, &tool_fp, &adapted.program, ooo),
        report: adapted.report,
    }
}

/// Run the whole suite with the experiments' default configuration,
/// fanning out across [`parallel::threads`] workers.
pub fn run_suite(ws: &[Workload]) -> Vec<BenchmarkRun> {
    run_suite_configured(
        ws,
        &AdaptOptions::default(),
        &MachineConfig::in_order(),
        &MachineConfig::out_of_order(),
        parallel::threads(),
    )
}

/// Run [`run_benchmark_configured`] over a suite on `workers` threads.
///
/// Two phases, each an indexed fan-out: first every workload is adapted
/// (profile + slice + codegen are independent per binary), then all
/// `4 × N` simulations run as one task list. Results are reassembled by
/// workload index, so output order and every statistic match the serial
/// path exactly; with `workers == 1` this *is* the serial path.
pub fn run_suite_configured(
    ws: &[Workload],
    opts: &AdaptOptions,
    io: &MachineConfig,
    ooo: &MachineConfig,
    workers: usize,
) -> Vec<BenchmarkRun> {
    let adapted = parallel::map_indexed(ws, workers, |_, w| {
        PostPassTool::new(io.clone())
            .with_options(opts.clone())
            .run(&w.program)
            .expect("adaptation succeeds")
    });
    let opts_fp = opts.fingerprint();
    let tool_fp = io.fingerprint();
    // All simulations of the suite, flattened: workload-major, with the
    // four machine/binary combinations of `BenchmarkRun` per workload.
    let tasks: Vec<(usize, u8)> =
        (0..ws.len()).flat_map(|wi| (0..4u8).map(move |k| (wi, k))).collect();
    let sims = parallel::map_indexed(&tasks, workers, |_, &(wi, k)| match k {
        0 => cache::baseline(&ws[wi], io),
        1 => cache::adapted(&ws[wi], &opts_fp, &tool_fp, &adapted[wi].program, io),
        2 => cache::baseline(&ws[wi], ooo),
        _ => cache::adapted(&ws[wi], &opts_fp, &tool_fp, &adapted[wi].program, ooo),
    });
    let mut sims = sims.into_iter();
    ws.iter()
        .zip(adapted)
        .map(|(w, a)| BenchmarkRun {
            name: w.name,
            base_io: sims.next().expect("four results per workload"),
            ssp_io: sims.next().expect("four results per workload"),
            base_ooo: sims.next().expect("four results per workload"),
            ssp_ooo: sims.next().expect("four results per workload"),
            report: a.report,
        })
        .collect()
}

/// One benchmark's Figure 2 bars: speedups under perfect memory and
/// perfect delinquent loads, on both machine models.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Perfect memory speedup, in-order.
    pub perfect_mem_io: f64,
    /// Perfect delinquent loads speedup, in-order.
    pub perfect_del_io: f64,
    /// Perfect memory speedup, OOO.
    pub perfect_mem_ooo: f64,
    /// Perfect delinquent loads speedup, OOO.
    pub perfect_del_ooo: f64,
}

/// Compute every benchmark's Figure 2 row, one workload per task,
/// fanning out across [`parallel::threads`] workers in input order.
pub fn fig2_rows(ws: &[Workload]) -> Vec<Fig2Row> {
    parallel::map_indexed(ws, parallel::threads(), |_, w| fig2_row(w))
}

/// Compute Figure 2's bars for one benchmark. Serial.
pub fn fig2_row(w: &Workload) -> Fig2Row {
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    let profile = ssp_core::profile(&w.program, &io);
    let delinquent: std::collections::HashSet<_> =
        profile.delinquent_loads(0.9).into_iter().collect();

    // Every run here is a baseline (the *original* binary under some
    // memory mode), so all six go through the process-wide cache — the
    // two Normal-mode denominators are shared with `run_suite`.
    let run = |mc: &MachineConfig, mode: MemoryMode| {
        cache::baseline(w, &mc.clone().with_memory_mode(mode))
    };
    let base_io = run(&io, MemoryMode::Normal);
    let base_ooo = run(&ooo, MemoryMode::Normal);
    Fig2Row {
        name: w.name,
        perfect_mem_io: base_io.cycles as f64 / run(&io, MemoryMode::PerfectAll).cycles as f64,
        perfect_del_io: base_io.cycles as f64
            / run(&io, MemoryMode::PerfectDelinquent(delinquent.clone())).cycles as f64,
        perfect_mem_ooo: base_ooo.cycles as f64 / run(&ooo, MemoryMode::PerfectAll).cycles as f64,
        perfect_del_ooo: base_ooo.cycles as f64
            / run(&ooo, MemoryMode::PerfectDelinquent(delinquent)).cycles as f64,
    }
}

/// Geometric-free arithmetic mean used by the paper ("average of 87%").
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Render a percentage-style speedup (1.87 -> "+87%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.0}%", (speedup - 1.0) * 100.0)
}

/// Fixed-width table cell.
pub fn cell(v: f64) -> String {
    format!("{v:>8.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_pct() {
        assert_eq!(mean([1.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
        assert_eq!(pct(1.87), "+87%");
        assert_eq!(pct(0.95), "-5%");
    }

    #[test]
    fn fig2_row_shapes() {
        let w = ssp_workloads::mcf::build(SEED);
        let row = fig2_row(&w);
        assert!(row.perfect_mem_io > 1.5, "mcf is memory bound: {}", row.perfect_mem_io);
        assert!(
            row.perfect_del_io <= row.perfect_mem_io + 1e-9,
            "fixing a subset of loads cannot beat perfect memory"
        );
        assert!(
            row.perfect_del_io > 0.8 * row.perfect_mem_io,
            "eliminating just the delinquent loads yields most of the perfect-memory win"
        );
        assert!(row.perfect_mem_ooo > 1.5, "the OOO model still has memory headroom");
    }
}
