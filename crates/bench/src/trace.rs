//! The `trace_report` harness: structured traces for the whole suite.
//!
//! For every workload this module runs the post-pass tool with phase
//! tracing ([`ssp_core::PostPassTool::run_traced`]) and then simulates
//! the adapted binary with prefetch-timeliness telemetry
//! ([`ssp_core::simulate_traced`]) on both machine models, producing one
//! [`TraceRow`] per workload. Like the rest of the harness it fans out
//! across host cores via [`crate::parallel::map_indexed`] and collects
//! results by input index, so the rendered JSON is byte-identical
//! whatever `SSP_THREADS` says.
//!
//! # JSON schema (`ssp-trace-report/1`)
//!
//! [`render_json`] emits one object:
//!
//! ```text
//! {
//!   "schema": "ssp-trace-report/1",
//!   "seed": <u64>,                 // workload-generation seed
//!   "wall_times": <bool>,          // whether wall_nanos fields are real
//!   "workloads": [ {
//!     "name": <string>,
//!     "delinquent_loads": [<tag>, ...],
//!     "slices": <count>,
//!     "tool_phases": [ {           // fixed order: profile, slicing,
//!       "name": <string>,          //   sched, trigger, codegen
//!       "wall_nanos": <u64>,       // 0 unless wall_times
//!       "counters": { <name>: <u64>, ... }
//!     }, ... ],
//!     "models": [ {                // fixed order: in_order, out_of_order
//!       "model": <string>,
//!       "base_cycles": <u64>, "ssp_cycles": <u64>, "speedup": <float>,
//!       "sim": {
//!         "triggers_fired": <u64>, "triggers_suppressed": <u64>,
//!         "slices_spawned": <u64>, "slices_killed": <u64>,
//!         "live_in_copies": <u64>, "prefetches_issued": <u64>,
//!         "prefetches_dropped": <u64>, "prefetches_completed": <u64>,
//!         "prefetch_table_evictions": <u64>,
//!         "timeliness": {
//!           "total": {"early": .., "timely": .., "late": .., "useless": ..},
//!           "per_load": [ {"load": <tag>, "early": .., "timely": ..,
//!                          "late": .., "useless": ..}, ... ]  // sorted by tag
//!         }
//!       }
//!     }, ... ]
//!   }, ... ],
//!   "suite_totals": { <model>: <sim object as above>, ... }
//! }
//! ```
//!
//! Every field except `wall_nanos` is a deterministic function of the
//! workloads and machine configs. Wall-clock time can never be
//! reproducible, so `wall_nanos` renders as 0 by default and the real
//! values are only emitted when the caller opts in (`trace_report` does
//! so under `SSP_TRACE_WALL=1`); the human summary
//! ([`render_summary`]) always shows the real timings instead.

use crate::parallel;
use ssp_core::{
    prefetch_targets, simulate, simulate_traced, AdaptOptions, MachineConfig, PostPassTool,
    SimTrace, TimelinessCounts, ToolTrace,
};
use ssp_workloads::Workload;

/// One machine model's simulation telemetry for one workload.
#[derive(Clone, Debug)]
pub struct ModelTrace {
    /// Model name (`"in_order"` or `"out_of_order"`).
    pub model: &'static str,
    /// Baseline cycles (original binary).
    pub base_cycles: u64,
    /// Cycles of the SSP-enhanced binary.
    pub ssp_cycles: u64,
    /// Simulator event totals and per-load timeliness histograms.
    pub sim: SimTrace,
}

/// The full trace for one workload: tool-phase spans plus per-model
/// simulation telemetry.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Workload name.
    pub name: &'static str,
    /// Tool-phase spans from the traced adaptation.
    pub tool: ToolTrace,
    /// Delinquent-load tag values, in profile order.
    pub delinquent: Vec<u32>,
    /// Emitted slice count.
    pub slices: usize,
    /// Per-model telemetry, in `[in_order, out_of_order]` order.
    pub models: Vec<ModelTrace>,
}

/// Compute one workload's [`TraceRow`] serially: traced adaptation with
/// the in-order tool (the paper shares one enhanced binary across both
/// models), then baseline and traced-SSP simulation per model.
pub fn trace_row(
    w: &Workload,
    opts: &AdaptOptions,
    io: &MachineConfig,
    ooo: &MachineConfig,
) -> TraceRow {
    let tool = PostPassTool::new(io.clone()).with_options(opts.clone());
    let (adapted, tool_trace) = tool.run_traced(&w.program).expect("adaptation succeeds");
    let targets = prefetch_targets(&adapted);
    let models = [("in_order", io), ("out_of_order", ooo)]
        .into_iter()
        .map(|(model, mc)| {
            let base = simulate(&w.program, mc);
            let (ssp, sim) = simulate_traced(&adapted.program, mc, &targets);
            ModelTrace { model, base_cycles: base.cycles, ssp_cycles: ssp.cycles, sim }
        })
        .collect();
    TraceRow {
        name: w.name,
        tool: tool_trace,
        delinquent: adapted.report.delinquent.iter().map(|t| t.0).collect(),
        slices: adapted.report.slice_count(),
        models,
    }
}

/// Compute every workload's [`TraceRow`] with the experiments' default
/// configuration on [`parallel::threads`] workers.
pub fn trace_rows(ws: &[Workload]) -> Vec<TraceRow> {
    trace_rows_configured(
        ws,
        &AdaptOptions::default(),
        &MachineConfig::in_order(),
        &MachineConfig::out_of_order(),
        parallel::threads(),
    )
}

/// [`trace_rows`] against explicit options/machines/worker count.
///
/// Two indexed fan-outs, mirroring [`crate::run_suite_configured`]:
/// first every workload's traced adaptation, then all `4 × N`
/// simulations (baseline and traced-SSP on each model). Results are
/// reassembled by workload index, so rows — and therefore
/// [`render_json`] output — are identical to a serial run.
pub fn trace_rows_configured(
    ws: &[Workload],
    opts: &AdaptOptions,
    io: &MachineConfig,
    ooo: &MachineConfig,
    workers: usize,
) -> Vec<TraceRow> {
    let adapted = parallel::map_indexed(ws, workers, |_, w| {
        let tool = PostPassTool::new(io.clone()).with_options(opts.clone());
        let (adapted, trace) = tool.run_traced(&w.program).expect("adaptation succeeds");
        let targets = prefetch_targets(&adapted);
        (adapted, trace, targets)
    });
    let tasks: Vec<(usize, u8)> =
        (0..ws.len()).flat_map(|wi| (0..4u8).map(move |k| (wi, k))).collect();
    let sims = parallel::map_indexed(&tasks, workers, |_, &(wi, k)| {
        let (a, _, targets) = &adapted[wi];
        match k {
            0 => (simulate(&ws[wi].program, io).cycles, None),
            1 => {
                let (r, t) = simulate_traced(&a.program, io, targets);
                (r.cycles, Some(t))
            }
            2 => (simulate(&ws[wi].program, ooo).cycles, None),
            _ => {
                let (r, t) = simulate_traced(&a.program, ooo, targets);
                (r.cycles, Some(t))
            }
        }
    });
    let mut sims = sims.into_iter();
    ws.iter()
        .zip(adapted)
        .map(|(w, (a, tool_trace, _))| {
            let mut models = Vec::with_capacity(2);
            for model in ["in_order", "out_of_order"] {
                let (base_cycles, _) = sims.next().expect("four results per workload");
                let (ssp_cycles, sim) = sims.next().expect("four results per workload");
                let sim = sim.expect("ssp simulations are traced");
                models.push(ModelTrace { model, base_cycles, ssp_cycles, sim });
            }
            TraceRow {
                name: w.name,
                tool: tool_trace,
                delinquent: a.report.delinquent.iter().map(|t| t.0).collect(),
                slices: a.report.slice_count(),
                models,
            }
        })
        .collect()
}

fn json_counts(c: &TimelinessCounts) -> String {
    format!(
        "{{\"early\": {}, \"timely\": {}, \"late\": {}, \"useless\": {}}}",
        c.early, c.timely, c.late, c.useless
    )
}

fn json_sim(s: &SimTrace, indent: &str) -> String {
    let per_load: Vec<String> = s
        .per_load
        .iter()
        .map(|(load, c)| {
            format!(
                "{{\"load\": {}, \"early\": {}, \"timely\": {}, \"late\": {}, \"useless\": {}}}",
                load, c.early, c.timely, c.late, c.useless
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "{i}  \"triggers_fired\": {}, \"triggers_suppressed\": {},\n",
            "{i}  \"slices_spawned\": {}, \"slices_killed\": {},\n",
            "{i}  \"live_in_copies\": {}, \"prefetches_issued\": {},\n",
            "{i}  \"prefetches_dropped\": {}, \"prefetches_completed\": {},\n",
            "{i}  \"prefetch_table_evictions\": {},\n",
            "{i}  \"timeliness\": {{\n",
            "{i}    \"total\": {},\n",
            "{i}    \"per_load\": [{}]\n",
            "{i}  }}\n",
            "{i}}}"
        ),
        s.triggers_fired,
        s.triggers_suppressed,
        s.slices_spawned,
        s.slices_killed,
        s.live_in_copies,
        s.prefetches_issued,
        s.prefetches_dropped,
        s.prefetches_completed,
        s.prefetch_table_evictions,
        json_counts(&s.totals()),
        per_load.join(", "),
        i = indent,
    )
}

fn json_list(xs: impl IntoIterator<Item = String>) -> String {
    xs.into_iter().collect::<Vec<_>>().join(", ")
}

/// Render rows as the `ssp-trace-report/1` JSON object (see the module
/// docs for the schema). With `include_wall == false` (the default in
/// `trace_report`) every `wall_nanos` renders as 0, making the output a
/// pure function of the inputs — byte-identical across runs, worker
/// counts, and hosts.
pub fn render_json(rows: &[TraceRow], seed: u64, include_wall: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ssp-trace-report/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"wall_times\": {include_wall},\n"));
    out.push_str("  \"workloads\": [\n");
    let mut workload_objs = Vec::new();
    for r in rows {
        let phases: Vec<String> = r
            .tool
            .phases
            .iter()
            .map(|p| {
                let wall = if include_wall { p.wall_nanos } else { 0 };
                let counters: Vec<String> =
                    p.counters.iter().map(|(n, v)| format!("\"{n}\": {v}")).collect();
                format!(
                    "{{\"name\": \"{}\", \"wall_nanos\": {}, \"counters\": {{{}}}}}",
                    p.name,
                    wall,
                    counters.join(", ")
                )
            })
            .collect();
        let models: Vec<String> = r
            .models
            .iter()
            .map(|m| {
                let speedup = m.base_cycles as f64 / m.ssp_cycles.max(1) as f64;
                format!(
                    concat!(
                        "        {{\n",
                        "          \"model\": \"{}\",\n",
                        "          \"base_cycles\": {}, \"ssp_cycles\": {}, ",
                        "\"speedup\": {:.4},\n",
                        "          \"sim\": {}\n",
                        "        }}"
                    ),
                    m.model,
                    m.base_cycles,
                    m.ssp_cycles,
                    speedup,
                    json_sim(&m.sim, "          "),
                )
            })
            .collect();
        workload_objs.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"delinquent_loads\": [{}],\n",
                "      \"slices\": {},\n",
                "      \"tool_phases\": [{}],\n",
                "      \"models\": [\n{}\n      ]\n",
                "    }}"
            ),
            r.name,
            json_list(r.delinquent.iter().map(|t| t.to_string())),
            r.slices,
            phases.join(", "),
            models.join(",\n"),
        ));
    }
    out.push_str(&workload_objs.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"suite_totals\": {\n");
    let mut totals = Vec::new();
    for (mi, model) in ["in_order", "out_of_order"].into_iter().enumerate() {
        let mut sum = SimTrace::default();
        for r in rows {
            if let Some(m) = r.models.get(mi) {
                sum.merge(&m.sim);
            }
        }
        totals.push(format!("    \"{}\": {}", model, json_sim(&sum, "    ")));
    }
    out.push_str(&totals.join(",\n"));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// Render a human summary table: one line per workload/model with the
/// key simulator counters and the timeliness split, followed by the
/// tool-phase wall times (real, not zeroed — this output is for eyes,
/// not diffs).
pub fn render_summary(rows: &[TraceRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<12} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>8}\n",
        "workload",
        "model",
        "triggers",
        "spawned",
        "prefetch",
        "timely%",
        "late%",
        "early%",
        "useless%"
    ));
    for r in rows {
        for m in &r.models {
            let t = m.sim.totals();
            let pct = |x: u64| {
                if t.total() == 0 {
                    0.0
                } else {
                    100.0 * x as f64 / t.total() as f64
                }
            };
            out.push_str(&format!(
                "{:<10} {:<12} {:>8} {:>8} {:>9} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%\n",
                r.name,
                m.model,
                m.sim.triggers_fired,
                m.sim.slices_spawned,
                m.sim.prefetches_issued,
                pct(t.timely),
                pct(t.late),
                pct(t.early),
                pct(t.useless),
            ));
        }
    }
    out.push_str("\ntool phases (wall ms per workload):\n");
    out.push_str(&format!("{:<10}", "workload"));
    if let Some(r) = rows.first() {
        for p in &r.tool.phases {
            out.push_str(&format!(" {:>9}", p.name));
        }
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<10}", r.name));
        for p in &r.tool.phases {
            out.push_str(&format!(" {:>9.3}", p.wall_nanos as f64 / 1e6));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEED;

    #[test]
    fn trace_row_classifies_all_prefetches() {
        let w = ssp_workloads::mcf::build(SEED);
        let mut io = MachineConfig::in_order();
        io.max_cycles = 120_000;
        let mut ooo = MachineConfig::out_of_order();
        ooo.max_cycles = 120_000;
        let row = trace_row(&w, &AdaptOptions::default(), &io, &ooo);
        assert!(row.slices >= 1);
        assert!(!row.delinquent.is_empty());
        assert_eq!(row.models.len(), 2);
        for m in &row.models {
            assert_eq!(m.sim.totals().total(), m.sim.prefetches_issued);
        }
        let json = render_json(&[row], SEED, false);
        assert!(json.contains("\"schema\": \"ssp-trace-report/1\""));
        assert!(json.contains("\"wall_nanos\": 0"));
        assert!(!json.contains("NaN"));
    }
}
