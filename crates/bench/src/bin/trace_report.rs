//! `trace_report`: structured traces for the whole suite.
//!
//! For every workload: tool-phase spans (wall time + counters for
//! profile / slicing / sched / trigger / codegen) and, per machine
//! model, simulator telemetry with the early/timely/late/useless
//! timeliness split of every SSP prefetch.
//!
//! Output:
//!   - stdout: one `ssp-trace-report/1` JSON object (schema documented
//!     in `ssp_bench::trace`). Deterministic and byte-identical across
//!     `SSP_THREADS` settings; set `SSP_TRACE_WALL=1` to include real
//!     `wall_nanos` values (no longer reproducible).
//!   - stderr: a human summary table per workload/model, with real
//!     tool-phase wall times.
//!
//! Run with `cargo run --release -p ssp-bench --bin trace_report`.

use ssp_bench::trace::{render_json, render_summary, trace_rows};
use ssp_bench::SEED;

fn main() {
    let rows = trace_rows(&ssp_workloads::suite(SEED));
    let include_wall = std::env::var("SSP_TRACE_WALL").is_ok_and(|v| v == "1");
    print!("{}", render_json(&rows, SEED, include_wall));
    eprint!("{}", render_summary(&rows));
}
