//! Standalone static-lint gate over the full workload suite.
//!
//! Adapts every workload under both machine models and runs the
//! `ssp-lint` whole-program verifier over each adapted binary. Stdout
//! is a deterministic JSON report — byte-identical regardless of
//! `SSP_THREADS`, so CI can diff runs at different thread counts — and
//! a human-readable summary goes to stderr. The exit status is 1 if any
//! combination produced a diagnostic (including an adaptation gated by
//! the in-pipeline lint), 0 otherwise.
//!
//! ```text
//! lint            # all workloads x {in_order, out_of_order}
//! ```

use std::fmt::Write as _;

use ssp_bench::{parallel, SEED};
use ssp_core::{lint_binary, AdaptError, LintReport, MachineConfig, PostPassTool};

/// One workload x machine-model lint outcome.
struct ComboResult {
    workload: String,
    machine: &'static str,
    /// `clean`, `diagnostics`, `gated` (in-pipeline lint refused the
    /// binary), or `error` (adaptation failed before the lint stage).
    status: &'static str,
    report: Option<LintReport>,
    error: Option<String>,
}

fn lint_combo(workload: &ssp_workloads::Workload, machine: &'static str) -> ComboResult {
    let mc = match machine {
        "in_order" => MachineConfig::in_order(),
        _ => MachineConfig::out_of_order(),
    };
    let tool = PostPassTool::new(mc);
    let (status, report, error) = match tool.run(&workload.program) {
        Ok(binary) => {
            let report = lint_binary(&workload.program, &binary);
            let status = if report.is_clean() { "clean" } else { "diagnostics" };
            (status, Some(report), None)
        }
        Err(AdaptError::Lint(report)) => ("gated", Some(report), None),
        Err(e) => ("error", None, Some(e.to_string())),
    };
    ComboResult { workload: workload.name.to_string(), machine, status, report, error }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(results: &[ComboResult]) -> String {
    let diags: usize = results.iter().filter_map(|r| r.report.as_ref()).map(|r| r.len()).sum();
    let clean = results.iter().filter(|r| r.status == "clean").count();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"combos\": {},", results.len());
    let _ = writeln!(out, "  \"clean\": {clean},");
    let _ = writeln!(out, "  \"diagnostics\": {diags},");
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"status\": \"{}\", \"diags\": [",
            json_escape(&r.workload),
            r.machine,
            r.status
        );
        if let Some(report) = &r.report {
            for (j, d) in report.diags.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\"", json_escape(&d.to_string()));
            }
        }
        let _ = write!(out, "]");
        if let Some(e) = &r.error {
            let _ = write!(out, ", \"error\": \"{}\"", json_escape(e));
        }
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "}}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let workloads = ssp_workloads::suite(SEED);
    let combos: Vec<(usize, &'static str)> =
        (0..workloads.len()).flat_map(|i| [(i, "in_order"), (i, "out_of_order")]).collect();
    let workers = parallel::threads();
    let results = parallel::map_indexed(&combos, workers, |_, &(i, machine)| {
        lint_combo(&workloads[i], machine)
    });

    print!("{}", to_json(&results));

    let mut bad = false;
    for r in &results {
        match r.status {
            "clean" => eprintln!("{:<12} {:<12} clean", r.workload, r.machine),
            _ => {
                bad = true;
                let detail = r
                    .report
                    .as_ref()
                    .map(|rep| rep.to_string())
                    .or_else(|| r.error.clone())
                    .unwrap_or_default();
                eprintln!("{:<12} {:<12} {}: {detail}", r.workload, r.machine, r.status);
            }
        }
    }
    std::process::exit(if bad { 1 } else { 0 });
}
