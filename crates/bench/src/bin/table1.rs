//! Table 1: the modeled research Itanium processor configuration.

use ssp_core::MachineConfig;

fn main() {
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    println!("Table 1 — Modeled Research Itanium Processor");
    println!("Threading       SMT processor with {} hardware thread contexts", io.num_contexts);
    println!(
        "Pipelining      in-order: 12-stage (mispredict {}). OOO: 16-stage (mispredict {}),",
        io.mispredict_penalty, ooo.mispredict_penalty
    );
    println!(
        "                {}-entry ROB and {}-entry reservation station per thread",
        ooo.rob_entries, ooo.rs_entries
    );
    println!(
        "Fetch/issue     {} bundles/cycle from 1 thread or 1 bundle each from 2 threads ({}-wide bundles)",
        io.bundles_per_cycle, io.bundle_width
    );
    println!(
        "Function units  {} int, {} FP, {} branch, {} memory ports",
        io.int_units, io.fp_units, io.branch_units, io.mem_ports
    );
    let c = |cc: &ssp_core::MachineConfig| {
        format!(
            "L1D {}KB/{}-way/{}cy; L2 {}KB/{}-way/{}cy; L3 {}KB/{}-way/{}cy; fill buffer {}; {}B lines",
            cc.l1d.size / 1024,
            cc.l1d.assoc,
            cc.l1d.latency,
            cc.l2.size / 1024,
            cc.l2.assoc,
            cc.l2.latency,
            cc.l3.size / 1024,
            cc.l3.assoc,
            cc.l3.latency,
            cc.fill_buffer,
            cc.l1d.line,
        )
    };
    println!("Caches          {}", c(&io));
    println!(
        "Memory          {}-cycle latency; TLB miss penalty {} cycles ({} entries)",
        io.mem_latency, io.tlb_miss_penalty, io.tlb_entries
    );
    println!(
        "Branch pred.    {}-entry GSHARE; {}-entry {}-way BTB",
        io.gshare_entries, io.btb_entries, io.btb_assoc
    );
    println!(
        "SSP support     spawn flush {} cycles; spawn latency {}; live-in buffer {}x{} words",
        io.spawn_flush_penalty, io.spawn_latency, io.lib_slots, io.lib_slot_words
    );
}
