//! Diagnostic dump: per benchmark, what the tool decided and how the
//! adapted binary behaved. Not part of the paper's tables; a debugging
//! aid for the reproduction.

use ssp_bench::SEED;
use ssp_core::{simulate, MachineConfig, PostPassTool};

fn main() {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    let use_ooo = names
        .iter()
        .position(|n| n == "--ooo")
        .map(|i| {
            names.remove(i);
        })
        .is_some();
    let io = if use_ooo { MachineConfig::out_of_order() } else { MachineConfig::in_order() };
    for w in ssp_workloads::suite(SEED) {
        if !names.is_empty() && !names.iter().any(|n| n == w.name) {
            continue;
        }
        let tool = PostPassTool::new(io.clone());
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let base = simulate(&w.program, &io);
        let ssp = simulate(&adapted.program, &io);
        println!("=== {} ===", w.name);
        println!(
            "  delinquent loads: {} | slices: {} | skipped: {:?}",
            adapted.report.delinquent.len(),
            adapted.report.slice_count(),
            adapted.report.skipped
        );
        for s in &adapted.report.slices {
            println!(
                "  slice: model={:?} len={} live_ins={:?} interproc={} trigger={}:{:?} roots={:?}",
                s.model,
                s.slice_len,
                s.live_ins,
                s.interprocedural,
                s.trigger.block,
                s.trigger.after,
                s.root_tags
            );
        }
        println!(
            "  base={} ssp={} speedup={:.2} | spawned={} dropped={} fired={} suppressed={} runaway={} spec_insts={}",
            base.cycles,
            ssp.cycles,
            base.cycles as f64 / ssp.cycles as f64,
            ssp.threads_spawned,
            ssp.spawns_dropped,
            ssp.spawns_fired,
            ssp.spawns_suppressed,
            ssp.runaway_kills,
            ssp.spec_insts,
        );
        let d_base = base.load_stats_for(&adapted.report.delinquent);
        let d_ssp = ssp.load_stats_for(&adapted.report.delinquent);
        println!("  delinq base: {d_base:?}");
        println!("  delinq ssp : {d_ssp:?}");
        println!("  breakdown base: {:?}", base.breakdown);
        println!("  breakdown ssp : {:?}", ssp.breakdown);
    }
}
