//! Dump per-root slice plans and the adapted program for one benchmark.

use ssp_bench::SEED;
use ssp_core::{MachineConfig, PostPassTool};
use ssp_slicing::{SliceOptions, Slicer};

fn main() {
    let name = std::env::args().nth(1).expect("benchmark name");
    let w = ssp_workloads::by_name(&name, SEED).expect("known benchmark");
    let io = MachineConfig::in_order();
    let profile = ssp_core::profile(&w.program, &io);
    let mut slicer = Slicer::new(&w.program, &profile, SliceOptions::default());
    let index = w.program.tag_index();
    for tag in profile.delinquent_loads(0.9) {
        let root = index[&tag];
        println!("--- root {tag} at {root}: {}", w.program.inst(root).op);
        match ssp_codegen::plan_for_load(
            &mut slicer,
            &w.program,
            &profile,
            &io,
            root,
            &Default::default(),
        ) {
            Err(e) => println!("    SLICE ERROR: {e}"),
            Ok(None) => println!("    NO PLAN"),
            Ok(Some(p)) => {
                println!(
                    "    model={:?} region={:?} trips={:.0} reduced={} slack1={} live_ins={:?} latch={:?} predicted={:?}",
                    p.model, p.blocks, p.trip_count, p.reduced, p.slack_1,
                    p.slice.live_ins, p.latch_branch, p.sched.predicted
                );
                for (i, at) in p.sched.order.iter().enumerate() {
                    let m = if i == p.sched.spawn_pos { " <== SPAWN" } else { "" };
                    println!("      [{i}] {}: {}{}", at, w.program.inst(*at).op, m);
                }
                if p.sched.spawn_pos == p.sched.order.len() {
                    println!("      (spawn at end / basic)");
                }
            }
        }
    }
    if std::env::args().nth(2).as_deref() == Some("-p") {
        let tool = PostPassTool::new(io);
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        println!("{}", adapted.program);
    }
}
