//! Figure 10: normalized cycle breakdown (L3/L2/L1 miss stalls,
//! Cache+Exec, Exec, Other) with and without SSP, on both models, for
//! em3d, treeadd.df, and vpr — normalized to the baseline in-order run.

use ssp_bench::{run_suite, SEED};
use ssp_core::SimResult;

fn row(label: &str, r: &SimResult, norm: f64) {
    let b = &r.breakdown;
    let p = |x: u64| x as f64 / norm * 100.0;
    println!(
        "  {label:<10} total {:>6.1}%  L3 {:>5.1}  L2 {:>4.1}  L1 {:>5.1}  C+E {:>4.1}  Exec {:>5.1}  Other {:>5.1}",
        r.cycles as f64 / norm * 100.0,
        p(b.l3_miss),
        p(b.l2_miss),
        p(b.l1_miss),
        p(b.cache_exec),
        p(b.exec),
        p(b.other),
    );
}

fn main() {
    println!("Figure 10 — cycle breakdown normalized to the baseline in-order model");
    let ws: Vec<_> = ["em3d", "treeadd.df", "vpr"]
        .into_iter()
        .map(|name| ssp_workloads::by_name(name, SEED).expect("known benchmark"))
        .collect();
    for run in run_suite(&ws) {
        let norm = run.base_io.cycles as f64;
        println!("{}:", run.name);
        row("io", &run.base_io, norm);
        row("io+SSP", &run.ssp_io, norm);
        row("ooo", &run.base_ooo, norm);
        row("ooo+SSP", &run.ssp_ooo, norm);
    }
    println!();
    println!("shape check: SSP mainly shrinks the L3 (memory-stall) segment; the OOO");
    println!("model converts stall segments into Cache+Exec overlap on its own.");
}
