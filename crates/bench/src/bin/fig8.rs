//! Figure 8: speedups of in-order+SSP, the OOO model, and OOO+SSP over
//! the baseline in-order model, for all seven benchmarks.

use ssp_bench::{mean, pct, run_suite, SEED};

fn main() {
    println!("Figure 8 — speedups over the baseline in-order model");
    println!("{:<12} {:>12} {:>8} {:>9}", "benchmark", "in-order+SSP", "OOO", "OOO+SSP");
    let mut io_ssp = Vec::new();
    let mut ooo = Vec::new();
    let mut ooo_ssp = Vec::new();
    let ws = ssp_workloads::suite(SEED);
    for run in run_suite(&ws) {
        println!(
            "{:<12} {:>12.2} {:>8.2} {:>9.2}",
            run.name,
            run.speedup_io_ssp(),
            run.speedup_ooo(),
            run.speedup_ooo_ssp()
        );
        io_ssp.push(run.speedup_io_ssp());
        ooo.push(run.speedup_ooo());
        ooo_ssp.push(run.speedup_ooo_ssp());
    }
    println!(
        "{:<12} {:>12.2} {:>8.2} {:>9.2}",
        "mean",
        mean(io_ssp.iter().copied()),
        mean(ooo.iter().copied()),
        mean(ooo_ssp.iter().copied())
    );
    println!();
    println!(
        "paper: SSP {} on in-order, OOO alone +175%, SSP {} on top of OOO",
        pct(1.87),
        pct(1.05)
    );
    println!(
        "ours : SSP {} on in-order, OOO alone {}, SSP on OOO {}",
        pct(mean(io_ssp.iter().copied())),
        pct(mean(ooo.iter().copied())),
        pct(mean(ooo_ssp.iter().copied()) / mean(ooo.iter().copied()))
    );
}
