//! §4.5: automatic adaptation vs. hand adaptation on mcf and health,
//! same simulator, both machine models.

use ssp_bench::{hand, pct, SEED};
use ssp_core::{simulate, MachineConfig, PostPassTool};

fn main() {
    println!("Section 4.5 — automatic vs. hand adaptation (speedup over same-model baseline)");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "benchmark", "auto io", "hand io", "auto/hand", "auto ooo", "hand ooo"
    );
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    let tool = PostPassTool::new(io.clone());

    type HandAdapt = fn(&ssp_ir::Program) -> ssp_ir::Program;
    let cases: Vec<(&str, HandAdapt)> =
        vec![("mcf", hand::adapt_mcf), ("health", hand::adapt_health)];
    for (name, hand_adapt) in cases {
        let w = ssp_workloads::by_name(name, SEED).expect("known benchmark");
        let auto = tool.run(&w.program).expect("adaptation succeeds");
        let hand_prog = hand_adapt(&w.program);

        let base_io = simulate(&w.program, &io);
        let base_ooo = simulate(&w.program, &ooo);
        let auto_io = simulate(&auto.program, &io);
        let auto_ooo = simulate(&auto.program, &ooo);
        let hand_io = simulate(&hand_prog, &io);
        let hand_ooo = simulate(&hand_prog, &ooo);

        let s =
            |b: &ssp_core::SimResult, n: &ssp_core::SimResult| b.cycles as f64 / n.cycles as f64;
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>11.0}% {:>10.2} {:>10.2}",
            name,
            s(&base_io, &auto_io),
            s(&base_io, &hand_io),
            s(&base_io, &auto_io) / s(&base_io, &hand_io) * 100.0,
            s(&base_ooo, &auto_ooo),
            s(&base_ooo, &hand_ooo),
        );
    }
    println!();
    println!(
        "paper: mcf hand {} vs auto {} (in-order); health hand {} vs auto {};",
        pct(1.73),
        pct(1.37),
        pct(2.30),
        pct(2.03)
    );
    println!("the automatic tool loses part of the hand win because it declines the");
    println!("aggressive inlining of recursive callee slices (§4.5).");
}
