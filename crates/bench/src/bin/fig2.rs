//! Figure 2: speedup when assuming perfect memory vs. when assuming the
//! delinquent loads always hit the cache, on both machine models.

use ssp_bench::{fig2_rows, SEED};

fn main() {
    println!(
        "Figure 2 — perfect memory vs. perfect delinquent loads (speedup over same-model baseline)"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "perf-mem io", "perf-del io", "perf-mem ooo", "perf-del ooo"
    );
    let ws = ssp_workloads::suite(SEED);
    for r in fig2_rows(&ws) {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r.name, r.perfect_mem_io, r.perfect_del_io, r.perfect_mem_ooo, r.perfect_del_ooo
        );
    }
    println!();
    println!("shape check: perfect-delinquent should recover most of perfect memory's win,");
    println!("confirming that a handful of static loads cause the majority of miss cycles.");
}
