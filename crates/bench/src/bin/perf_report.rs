//! `perf_report`: machine-readable performance snapshot of the harness.
//!
//! Emits one JSON object on stdout:
//!   - per-benchmark wall time of each tool phase (profile, adapt) and
//!     simulator throughput (simulated cycles per wall second),
//!   - wall time of regenerating Table 2 + Figure 8 serially vs. with
//!     the parallel runner, the resulting speedup, and whether the two
//!     runs were bit-identical.
//!
//! The JSON is hand-rolled (no serde dependency); run with
//! `cargo run --release -p ssp-bench --bin perf_report`.

use ssp_bench::{parallel, run_suite_configured, BenchmarkRun, SEED};
use ssp_core::{simulate, AdaptOptions, MachineConfig, PostPassTool};
use std::time::Instant;

fn secs(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn runs_equal(a: &[BenchmarkRun], b: &[BenchmarkRun]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.base_io == y.base_io
                && x.ssp_io == y.ssp_io
                && x.base_ooo == y.base_ooo
                && x.ssp_ooo == y.ssp_ooo
        })
}

fn main() {
    let ws = ssp_workloads::suite(SEED);
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    let opts = AdaptOptions::default();
    let workers = parallel::threads();

    // Per-benchmark tool-phase and simulator timings, measured serially
    // so the numbers are per-phase wall times, not contended shares.
    let mut bench_json = Vec::new();
    for w in &ws {
        let t0 = Instant::now();
        let profile = ssp_core::profile(&w.program, &io);
        let profile_s = t0.elapsed().as_secs_f64();

        let tool = PostPassTool::new(io.clone()).with_options(opts.clone());
        let t0 = Instant::now();
        let adapted = tool.run_with_profile(&w.program, profile).expect("adaptation succeeds");
        let adapt_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let base = simulate(&w.program, &io);
        let sim_s = t0.elapsed().as_secs_f64();
        let cps = if sim_s > 0.0 { base.total_cycles as f64 / sim_s } else { 0.0 };

        bench_json.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"profile_seconds\": {:.6}, ",
                "\"adapt_seconds\": {:.6}, \"slices\": {}, ",
                "\"sim_seconds\": {:.6}, \"simulated_cycles\": {}, ",
                "\"simulated_cycles_per_second\": {:.0}}}"
            ),
            w.name,
            profile_s,
            adapt_s,
            adapted.report.slice_count(),
            sim_s,
            base.total_cycles,
            cps,
        ));
    }

    // Table 2 regeneration (adapt every benchmark), serial vs. parallel.
    let table2 = |workers: usize| {
        parallel::map_indexed(&ws, workers, |_, w| {
            PostPassTool::new(io.clone())
                .with_options(opts.clone())
                .run(&w.program)
                .expect("adaptation succeeds")
                .report
                .slice_count()
        })
    };
    let mut t2_serial = Vec::new();
    let mut t2_parallel = Vec::new();
    let table2_serial_s = secs(|| t2_serial = table2(1));
    let table2_parallel_s = secs(|| t2_parallel = table2(workers));

    // Figure 8 regeneration (adapt + 4 simulations each), serial vs.
    // parallel, plus the bit-identity check the runner promises.
    let mut fig8_serial = Vec::new();
    let mut fig8_parallel = Vec::new();
    let fig8_serial_s = secs(|| fig8_serial = run_suite_configured(&ws, &opts, &io, &ooo, 1));
    let fig8_parallel_s =
        secs(|| fig8_parallel = run_suite_configured(&ws, &opts, &io, &ooo, workers));
    let identical = t2_serial == t2_parallel && runs_equal(&fig8_serial, &fig8_parallel);

    let serial_s = table2_serial_s + fig8_serial_s;
    let parallel_s = table2_parallel_s + fig8_parallel_s;
    let speedup = if parallel_s > 0.0 { serial_s / parallel_s } else { 0.0 };

    println!("{{");
    println!("  \"seed\": {SEED},");
    println!("  \"workers\": {workers},");
    println!("  \"benchmarks\": [");
    println!("{}", bench_json.join(",\n"));
    println!("  ],");
    println!("  \"regeneration\": {{");
    println!("    \"table2_serial_seconds\": {table2_serial_s:.3},");
    println!("    \"table2_parallel_seconds\": {table2_parallel_s:.3},");
    println!("    \"fig8_serial_seconds\": {fig8_serial_s:.3},");
    println!("    \"fig8_parallel_seconds\": {fig8_parallel_s:.3},");
    println!("    \"serial_seconds\": {serial_s:.3},");
    println!("    \"parallel_seconds\": {parallel_s:.3},");
    println!("    \"speedup\": {speedup:.2},");
    println!("    \"bit_identical\": {identical}");
    println!("  }}");
    println!("}}");
}
