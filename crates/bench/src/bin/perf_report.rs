//! `perf_report`: machine-readable performance snapshot of the harness.
//!
//! Emits one JSON object (`ssp-perf-report/4`) on stdout:
//!   - `engine`: wall time of simulating the workload suite with the
//!     event-driven fast-forward clock vs. the stepped engine, per
//!     machine model and per binary class (baseline / SSP-adapted),
//!     with a bit-identity check over every `SimResult` and a `windows`
//!     object breaking down how the fast engine spent its cycles
//!     (busy-window batches, idle skips, stepped cycles, plus
//!     power-of-two length histograms for both window kinds). Every
//!     row is checked against the accounting invariant
//!     `busy + idle + stepped == simulated_cycles`,
//!   - `suite`: wall time of regenerating the Figure 8–10 suite with a
//!     cold vs. warm baseline cache, plus every row's cycle counts and
//!     its `noop`/`regression` diagnostic flags (each flagged row also
//!     prints a stderr warning),
//!   - `fig2`: the memory-wall rows (all baseline-class, so they share
//!     cached denominators with the suite),
//!   - `cache`: process-wide baseline-cache hit/miss counters.
//!
//! Timings are min-of-5 so one scheduler hiccup cannot distort a row.
//! The JSON is hand-rolled (no serde dependency); run with
//! `cargo run --release -p ssp-bench --bin perf_report`.
//!
//! Flags:
//!   - `--digest`: print only the deterministic subset (no wall times,
//!     no worker count) — byte-identical across `SSP_THREADS`, so CI
//!     can diff it across worker counts.
//!   - `--enforce-speedup`: exit nonzero unless every engine row meets
//!     its fast-vs-stepped speedup floor (see the two flags below).
//!   - `--min-speedup-baseline X`: speedup floor for the two
//!     baseline-class rows (default 3.0 — big idle windows make the
//!     event-driven clock pay off heavily there).
//!   - `--min-speedup-adapted X`: speedup floor for the two
//!     adapted-class rows (default 1.0, i.e. a no-regression gate;
//!     adapted runs keep several contexts issuing nearly every cycle,
//!     so there is little for the clock to skip — the `windows`
//!     histograms quantify exactly that residue).
//!   - `--out PATH`: additionally write the (full, non-digest) report
//!     to `PATH`.

use ssp_bench::{
    cache, fig2_rows, parallel, run_suite_configured, suite_row_json, BenchmarkRun, Fig2Row, SEED,
};
use ssp_core::{simulate, simulate_stepped, AdaptOptions, MachineConfig, PostPassTool, Program};
use ssp_sim::{simulate_windowed, WindowStats};
use std::time::Instant;

/// One engine-comparison row: the same programs on the same machine,
/// fast-forward vs. stepped.
struct EngineRow {
    model: &'static str,
    class: &'static str,
    simulated_cycles: u64,
    fast_forward_seconds: f64,
    stepped_seconds: f64,
    bit_identical: bool,
    windows: WindowStats,
}

/// Min-of-`reps` wall time of `f` (first return value), plus whatever
/// `f` returned on the last repetition.
fn min_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn engine_row(
    model: &'static str,
    class: &'static str,
    progs: &[&Program],
    cfg: &MachineConfig,
) -> EngineRow {
    let (fast_forward_seconds, fast) =
        min_secs(5, || progs.iter().map(|p| simulate(p, cfg)).collect::<Vec<_>>());
    let (stepped_seconds, stepped) =
        min_secs(5, || progs.iter().map(|p| simulate_stepped(p, cfg)).collect::<Vec<_>>());
    // One untimed instrumented pass per row: where did the fast engine's
    // cycles go? The instrumentation must not perturb the simulation —
    // assert the windowed results are the timed fast results, bit for bit.
    let mut windows = WindowStats::default();
    let mut windowed = Vec::with_capacity(progs.len());
    for p in progs {
        let (r, w) = simulate_windowed(p, cfg);
        windows.merge(&w);
        windowed.push(r);
    }
    let simulated: u64 = windowed.iter().map(|r| r.total_cycles).sum();
    assert_eq!(
        windows.simulated(),
        simulated,
        "{model} {class}: window accounting must partition the simulated cycles \
         (busy {} + idle {} + stepped {} != {simulated})",
        windows.busy_cycles,
        windows.idle_cycles,
        windows.stepped_cycles,
    );
    EngineRow {
        model,
        class,
        simulated_cycles: fast.iter().map(|r| r.total_cycles).sum(),
        fast_forward_seconds,
        stepped_seconds,
        bit_identical: fast == stepped && windowed == fast,
        windows,
    }
}

fn speedup(stepped: f64, fast: f64) -> f64 {
    if fast > 0.0 {
        stepped / fast
    } else {
        0.0
    }
}

fn hist_json(h: &[u64]) -> String {
    let parts: Vec<String> = h.iter().map(|v| v.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

fn windows_json(w: &WindowStats) -> String {
    format!(
        concat!(
            "{{\"busy_windows\": {}, \"busy_cycles\": {}, \"idle_skips\": {}, ",
            "\"idle_cycles\": {}, \"stepped_cycles\": {}, ",
            "\"busy_len_hist\": {}, \"idle_len_hist\": {}}}"
        ),
        w.busy_windows,
        w.busy_cycles,
        w.idle_skips,
        w.idle_cycles,
        w.stepped_cycles,
        hist_json(&w.busy_len_hist),
        hist_json(&w.idle_len_hist),
    )
}

/// Everything the report measured, independent of rendering mode.
struct Report {
    workers: usize,
    rows: [EngineRow; 4],
    suite: Vec<BenchmarkRun>,
    suite_cold_s: f64,
    suite_warm_s: f64,
    fig2: Vec<Fig2Row>,
    fig2_s: f64,
}

fn render(digest: bool, report: &Report) -> String {
    let Report { workers, rows, suite, suite_cold_s, suite_warm_s, fig2, fig2_s } = report;
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line("{".into());
    line("  \"schema\": \"ssp-perf-report/4\",".into());
    line(format!("  \"seed\": {SEED},"));
    if !digest {
        line(format!("  \"workers\": {workers},"));
    }
    line("  \"engine\": [".into());
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        if digest {
            line(format!(
                concat!(
                    "    {{\"model\": \"{}\", \"class\": \"{}\", \"simulated_cycles\": {}, ",
                    "\"bit_identical\": {},\n     \"windows\": {}}}{}"
                ),
                r.model,
                r.class,
                r.simulated_cycles,
                r.bit_identical,
                windows_json(&r.windows),
                comma,
            ));
        } else {
            line(format!(
                concat!(
                    "    {{\"model\": \"{}\", \"class\": \"{}\", \"simulated_cycles\": {}, ",
                    "\"fast_forward_seconds\": {:.4}, \"stepped_seconds\": {:.4}, ",
                    "\"speedup\": {:.2}, \"bit_identical\": {},\n     \"windows\": {}}}{}"
                ),
                r.model,
                r.class,
                r.simulated_cycles,
                r.fast_forward_seconds,
                r.stepped_seconds,
                speedup(r.stepped_seconds, r.fast_forward_seconds),
                r.bit_identical,
                windows_json(&r.windows),
                comma,
            ));
        }
    }
    line("  ],".into());
    line("  \"suite\": {".into());
    if !digest {
        line(format!("    \"cold_seconds\": {suite_cold_s:.4},"));
        line(format!("    \"warm_seconds\": {suite_warm_s:.4},"));
    }
    line("    \"rows\": [".into());
    for (i, r) in suite.iter().enumerate() {
        let comma = if i + 1 < suite.len() { "," } else { "" };
        line(format!("      {}{}", suite_row_json(&r.suite_row()), comma));
    }
    line("    ]".into());
    line("  },".into());
    if digest {
        line("  \"fig2\": [".into());
    } else {
        line(format!("  \"fig2_seconds\": {fig2_s:.4},"));
        line("  \"fig2\": [".into());
    }
    for (i, r) in fig2.iter().enumerate() {
        let comma = if i + 1 < fig2.len() { "," } else { "" };
        line(format!(
            concat!(
                "    {{\"name\": \"{}\", \"perfect_mem_io\": {:.4}, \"perfect_del_io\": {:.4}, ",
                "\"perfect_mem_ooo\": {:.4}, \"perfect_del_ooo\": {:.4}}}{}"
            ),
            r.name, r.perfect_mem_io, r.perfect_del_io, r.perfect_mem_ooo, r.perfect_del_ooo, comma,
        ));
    }
    line("  ],".into());
    let cs = cache::stats();
    line(format!(
        "  \"cache\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}}}",
        cs.hits, cs.disk_hits, cs.misses
    ));
    line("}".into());
    out
}

/// Parse `--flag X` as an `f64`, or return `default` when absent.
fn flag_f64(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} requires a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{flag}: {e}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let digest = args.iter().any(|a| a == "--digest");
    let enforce = args.iter().any(|a| a == "--enforce-speedup");
    let min_baseline = flag_f64(&args, "--min-speedup-baseline", 3.0);
    let min_adapted = flag_f64(&args, "--min-speedup-adapted", 1.0);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out requires a path").clone());

    let ws = ssp_workloads::suite(SEED);
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    let opts = AdaptOptions::default();
    let workers = parallel::threads();

    // Adapt every workload once up front (parallel); the engine rows
    // time *simulation only*, on both binary classes.
    let adapted = parallel::map_indexed(&ws, workers, |_, w| {
        PostPassTool::new(io.clone()).with_options(opts.clone()).run(&w.program).expect("adapts")
    });
    let base_progs: Vec<&Program> = ws.iter().map(|w| &w.program).collect();
    let ssp_progs: Vec<&Program> = adapted.iter().map(|a| &a.program).collect();

    // Engine comparison: direct `simulate` calls, never the cache — this
    // section times the clock fast-forward, nothing else.
    let rows = [
        engine_row("in-order", "baseline", &base_progs, &io),
        engine_row("in-order", "adapted", &ssp_progs, &io),
        engine_row("out-of-order", "baseline", &base_progs, &ooo),
        engine_row("out-of-order", "adapted", &ssp_progs, &ooo),
    ];

    // Suite regeneration with the baseline cache cold, then warm. Both
    // runs also serve as the determinism surface for the digest.
    let t0 = Instant::now();
    let suite = run_suite_configured(&ws, &opts, &io, &ooo, workers);
    let suite_cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = run_suite_configured(&ws, &opts, &io, &ooo, workers);
    let suite_warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(suite.len(), warm.len(), "warm suite must reproduce the cold one");

    let t0 = Instant::now();
    let fig2 = fig2_rows(&ws);
    let fig2_s = t0.elapsed().as_secs_f64();

    // A dead or regressing row must never scroll past unremarked.
    for run in &suite {
        for w in run.suite_row().warnings() {
            eprintln!("perf_report: {w}");
        }
    }

    let report = Report { workers, rows, suite, suite_cold_s, suite_warm_s, fig2, fig2_s };
    let json = render(digest, &report);
    print!("{json}");
    if let Some(path) = out_path {
        let full = if digest { render(false, &report) } else { json };
        std::fs::write(&path, full).expect("write --out file");
    }

    let rows = &report.rows;
    if !rows.iter().all(|r| r.bit_identical) {
        eprintln!("perf_report: fast-forward diverged from the stepped engine");
        std::process::exit(1);
    }
    if enforce {
        let mut failed = false;
        for r in rows {
            let floor = if r.class == "baseline" { min_baseline } else { min_adapted };
            let s = speedup(r.stepped_seconds, r.fast_forward_seconds);
            if s < floor {
                eprintln!(
                    "perf_report: {} {} row speedup {s:.2}x below the {floor:.2}x floor \
                     (fast {:.4}s vs stepped {:.4}s)",
                    r.model, r.class, r.fast_forward_seconds, r.stepped_seconds
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
