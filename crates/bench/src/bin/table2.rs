//! Table 2: slice characteristics — number of slices, interprocedural
//! slices, average size, average live-in count per benchmark.

use ssp_bench::{parallel, SEED};
use ssp_core::{MachineConfig, PostPassTool};

fn main() {
    println!("Table 2 — slice characteristics");
    println!(
        "{:<12} {:>8} {:>16} {:>12} {:>12}",
        "benchmark", "slices", "interproc", "avg size", "avg live-in"
    );
    let ws = ssp_workloads::suite(SEED);
    let rows = parallel::map_indexed(&ws, parallel::threads(), |_, w| {
        let tool = PostPassTool::new(MachineConfig::in_order());
        tool.run(&w.program).expect("adaptation succeeds").characteristics(w.name)
    });
    for c in rows {
        println!(
            "{:<12} {:>8} {:>16} {:>12.1} {:>12.1}",
            c.name, c.slices, c.interprocedural, c.average_size, c.average_live_ins
        );
    }
    println!();
    println!("paper (for the real benchmarks): 2-8 slices each, sizes 9.0-28.3,");
    println!("live-ins 2.8-4.8, one interprocedural slice for health and mst.");
}
