//! The conventional-prefetching baseline from the paper's introduction:
//! "memory latency ... escalates especially with pointer-intensive
//! applications, which tend to defy conventional stride-based prefetching
//! techniques." A hardware stride prefetcher vs. SSP, per benchmark, on
//! the in-order model.

use ssp_bench::{mean, SEED};
use ssp_core::{simulate, MachineConfig, PostPassTool};

fn main() {
    println!("Intro claim — stride prefetching vs. SSP (in-order model, speedup over baseline)");
    println!("{:<12} {:>10} {:>8}", "benchmark", "stride-pf", "SSP");
    let io = MachineConfig::in_order();
    let stride = MachineConfig::in_order().with_stride_prefetcher();
    let tool = PostPassTool::new(io.clone());
    let mut s_pf = Vec::new();
    let mut s_ssp = Vec::new();
    for w in ssp_workloads::suite(SEED) {
        let base = simulate(&w.program, &io);
        let pf = simulate(&w.program, &stride);
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let ssp = simulate(&adapted.program, &io);
        let (a, b) =
            (base.cycles as f64 / pf.cycles as f64, base.cycles as f64 / ssp.cycles as f64);
        println!("{:<12} {:>10.2} {:>8.2}", w.name, a, b);
        s_pf.push(a);
        s_ssp.push(b);
    }
    println!(
        "{:<12} {:>10.2} {:>8.2}",
        "mean",
        mean(s_pf.iter().copied()),
        mean(s_ssp.iter().copied())
    );
    println!();
    println!("shape check: the stride prefetcher catches the array-stride loads (arc");
    println!("records, queues, key arrays) but not the dependent scattered loads that");
    println!("dominate the miss cycles — the program-as-predictor approach does.");
}
