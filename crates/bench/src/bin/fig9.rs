//! Figure 9: where delinquent loads are satisfied when they miss L1, for
//! the four configurations (in-order / in-order+SSP / OOO / OOO+SSP).
//! The height of each bar is the delinquent loads' L1 miss rate; the
//! stacked segments are L2/L3/memory hits, split into full and partial
//! (line already in transit) hits.

use ssp_bench::{run_suite, SEED};
use ssp_core::{LoadStats, SimResult};
use ssp_ir::InstTag;

fn bar(result: &SimResult, delinquent: &[InstTag]) -> (f64, LoadStats) {
    let s = result.load_stats_for(delinquent);
    (s.l1_miss_rate() * 100.0, s)
}

fn row(label: &str, s: &LoadStats, miss_pct: f64) {
    let total = s.accesses.max(1) as f64 / 100.0;
    println!(
        "  {label:<10} missrate {miss_pct:>5.1}%  L2 {:>5.1}% (+{:>4.1}% partial)  L3 {:>5.1}% (+{:>4.1}%)  mem {:>5.1}% (+{:>4.1}%)",
        s.l2 as f64 / total,
        s.l2_partial as f64 / total,
        s.l3 as f64 / total,
        s.l3_partial as f64 / total,
        s.mem as f64 / total,
        s.mem_partial as f64 / total,
    );
}

fn main() {
    println!("Figure 9 — where delinquent loads are satisfied when missing L1");
    let ws = ssp_workloads::suite(SEED);
    for run in run_suite(&ws) {
        println!("{}:", run.name);
        let delinq = &run.report.delinquent;
        for (label, res) in [
            ("io", &run.base_io),
            ("io+SSP", &run.ssp_io),
            ("ooo", &run.base_ooo),
            ("ooo+SSP", &run.ssp_ooo),
        ] {
            let (pct, s) = bar(res, delinq);
            row(label, &s, pct);
        }
    }
    println!();
    println!("shape check: with SSP most remaining off-L1 accesses move to the lower");
    println!("levels and to partial hits — the long-range prefetches land first.");
}
