//! Differential adaptation oracle driver.
//!
//! Generates `--cases` random case specs from `--seed`, optionally
//! prepends a regression corpus (`--corpus FILE`), and fans every case
//! across [`parallel::threads`] workers. Each case builds a random
//! pointer-chasing program, adapts it with the post-pass tool, and runs
//! baseline vs adapted on both machine models, checking final
//! architectural state, the main-thread commit stream, and the SSP
//! invariants (see `ssp-fuzz`).
//!
//! Stdout is the batch summary as deterministic JSON — byte-identical
//! for a given seed and case count regardless of `SSP_THREADS`. Any
//! violation is shrunk to its minimal spec and reported on stderr as a
//! ready-to-paste corpus line; the exit status is 1 if any case
//! violated, 0 otherwise.
//!
//! ```text
//! fuzz_oracle --seed 2002 --cases 500
//! fuzz_oracle --corpus tests/corpus/adaptation_oracle.corpus --cases 0
//! ```

use proptest::test_runner::TestRng;
use ssp_bench::parallel;
use ssp_fuzz::oracle::summarize;
use ssp_fuzz::{run_case, shrink, CaseOutcome, CaseSpec, OracleConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz_oracle [--seed N] [--cases N] [--corpus FILE] [--max-cycles N]\n\
         \n\
         --seed N        RNG seed for random case generation (default 2002)\n\
         --cases N       number of random cases to generate (default 200)\n\
         --corpus FILE   replay a regression corpus before the random cases\n\
         --max-cycles N  per-simulation cycle cap (default 2000000)"
    );
    std::process::exit(2)
}

fn arg_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => usage(),
    }
}

fn main() {
    let mut seed = 2002u64;
    let mut cases = 200usize;
    let mut corpus_path: Option<String> = None;
    let mut ocfg = OracleConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = arg_value(&mut args),
            "--cases" => cases = arg_value(&mut args),
            "--corpus" => corpus_path = Some(args.next().unwrap_or_else(|| usage())),
            "--max-cycles" => ocfg.max_cycles = arg_value(&mut args),
            _ => usage(),
        }
    }

    let mut specs: Vec<CaseSpec> = Vec::with_capacity(cases);
    if let Some(path) = &corpus_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fuzz_oracle: {path}: {e}");
            std::process::exit(2);
        });
        let replay = ssp_fuzz::corpus::parse(&text).unwrap_or_else(|e| {
            eprintln!("fuzz_oracle: {path}: {e}");
            std::process::exit(2);
        });
        specs.extend(replay);
    }
    let mut rng = TestRng::from_seed(seed);
    for _ in 0..cases {
        specs.push(CaseSpec::random(&mut rng));
    }

    let workers = parallel::threads();
    let results = parallel::map_indexed(&specs, workers, |_, s| run_case(s, &ocfg));
    print!("{}", summarize(&results).to_json());

    // Shrinking runs serially, in input order, after the summary: it is
    // itself deterministic, but it re-runs the oracle many times, so it
    // only happens on the failure path.
    let mut violated = false;
    for r in &results {
        if let CaseOutcome::Violations(vs) = &r.outcome {
            violated = true;
            eprintln!("violation: {}", r.spec);
            for v in vs {
                eprintln!("  [{}] {}", v.kind, v.detail);
            }
            let (min, probes) = shrink::shrink_violation(&r.spec, &ocfg);
            eprintln!("  shrunk after {probes} probes; corpus line:\n  {min}");
        }
    }
    std::process::exit(if violated { 1 } else { 0 });
}
