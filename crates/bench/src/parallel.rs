//! Deterministic thread-scoped fan-out for independent experiment work.
//!
//! Every simulation an experiment binary runs is a pure function of a
//! `(program, machine config)` pair, so a suite of them can execute in
//! any order on any number of threads without changing a single number.
//! [`map_indexed`] exploits that: workers pull indices from a shared
//! atomic counter and write each result into its input's slot, so the
//! returned vector is always in input order regardless of which worker
//! finished first — parallel runs are bit-identical to serial runs.
//!
//! Built on `std::thread::scope` only; no external thread-pool crate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// Hard ceiling on the worker count accepted from `SSP_THREADS`. The
/// fan-out spawns real OS threads (no pool), so an absurd value would
/// exhaust process limits rather than help; results are identical at any
/// worker count anyway.
pub const MAX_THREADS: usize = 512;

/// Worker count for experiment fan-out: the `SSP_THREADS` environment
/// variable when set to a positive integer (clamped to
/// [`MAX_THREADS`]), else the host's available parallelism, else 1.
///
/// Degenerate values never silently misbehave: `0` is clamped to 1,
/// values above [`MAX_THREADS`] are clamped down, and non-numeric text
/// is ignored in favour of the host default — each with a one-time note
/// on stderr naming the offending value.
pub fn threads() -> usize {
    let host = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("SSP_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => {
                warn_once("SSP_THREADS=0 is not a worker count; clamping to 1");
                1
            }
            Ok(n) if n > MAX_THREADS => {
                warn_once(&format!("SSP_THREADS={n} exceeds the {MAX_THREADS}-thread ceiling; clamping to {MAX_THREADS}"));
                MAX_THREADS
            }
            Ok(n) => n,
            Err(_) => {
                let h = host();
                warn_once(&format!(
                    "SSP_THREADS={v:?} is not a number; using host parallelism ({h})"
                ));
                h
            }
        },
        Err(_) => host(),
    }
}

/// Print one `ssp-bench:` note to stderr, once per process — `threads()`
/// is called from hot fan-out paths and must not spam.
fn warn_once(msg: &str) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| eprintln!("ssp-bench: {msg}"));
}

/// Apply `f` to every item on up to `workers` threads, returning results
/// in input order.
///
/// `f(i, &items[i])` must be pure with respect to ordering (it may be
/// called from any thread, in any order, but exactly once per item).
/// With `workers <= 1` or fewer than two items everything runs on the
/// calling thread — the same closure either way, so the serial and
/// parallel paths cannot drift apart.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn map_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_indexed(&items, 8, |i, &x| {
            // Finish out of order on purpose.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = map_indexed(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 1));
        let parallel = map_indexed(&items, 4, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(map_indexed(&none, 4, |_, &x| x).is_empty());
        assert_eq!(map_indexed(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn degenerate_ssp_threads_values_are_clamped() {
        // One sequential test for every env-var case: the test harness
        // runs #[test] fns concurrently and SSP_THREADS is process-global.
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let original = std::env::var("SSP_THREADS").ok();
        let cases: [(&str, usize); 5] =
            [("0", 1), ("4", 4), ("9999999", MAX_THREADS), ("lots", host), ("-3", host)];
        for (val, want) in cases {
            std::env::set_var("SSP_THREADS", val);
            assert_eq!(threads(), want, "SSP_THREADS={val}");
        }
        std::env::remove_var("SSP_THREADS");
        assert_eq!(threads(), host, "unset falls back to host parallelism");
        if let Some(v) = original {
            std::env::set_var("SSP_THREADS", v);
        }
    }

    #[test]
    fn index_matches_item() {
        let items: Vec<usize> = (0..64).collect();
        let out = map_indexed(&items, 6, |i, &x| (i, x));
        for (i, (gi, gx)) in out.into_iter().enumerate() {
            assert_eq!(i, gi);
            assert_eq!(i, gx);
        }
    }
}
