//! Tier-1 regression suite for the benchmark table's silent failure
//! modes — and for what the auto-tuner makes of them. Two things used
//! to scroll past unremarked:
//!
//! * a **dead row** — the adaptation emitted nothing, so the "SSP"
//!   columns were the baseline re-simulated under a different label
//!   (`treeadd.df`);
//! * a **regression row** — the adapted binary was *slower* than its
//!   baseline on one machine model (`em3d`, `health` on out-of-order),
//!   rendered indistinguishably from the wins.
//!
//! Both are first-class flags on [`SuiteRow`]. But flagging a failure
//! is only half the contract: `ssp-tune` closes the loop, so this
//! suite now pins the *tuned* outcome of each pinned row — em3d and
//! health must tune to out-of-order wins, and treeadd.df's in-order
//! no-op must come back as a machine-checked `structural-cap` verdict
//! (candidates were forced to emit and none beat the baseline), not as
//! a silent dead row.
//!
//! Machine configs are capped just above the relevant baselines so a
//! debug build stays affordable; runaway candidates saturate the cap,
//! which cannot flip a verdict (a capped candidate is still no better
//! than its real cycle count, and every baseline stays uncapped).

use ssp_bench::{run_benchmark_configured, suite_row_json, SEED};
use ssp_core::{AdaptOptions, MachineConfig, PostPassTool};
use ssp_tune::{TargetModel, TuneConfig, Tuner};

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

/// Tuner over machine configs capped above the baselines under test:
/// in-order baselines top out at 604462 (em3d), out-of-order at
/// 375372 (treeadd.df).
fn tuner() -> Tuner {
    Tuner::new(TuneConfig {
        seed: SEED,
        io: capped(MachineConfig::in_order(), 650_000),
        ooo: capped(MachineConfig::out_of_order(), 400_000),
        max_rounds: 8,
        workers: 4,
    })
}

#[test]
fn every_suite_workload_changes_the_binary_or_reports_why() {
    let tool = PostPassTool::new(MachineConfig::in_order());
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let report = &adapted.report;
        if report.is_noop() {
            assert_eq!(
                adapted.program, w.program,
                "{}: a no-op adaptation must leave the binary unchanged",
                w.name
            );
            assert!(
                report.delinquent.is_empty() || !report.skipped.is_empty(),
                "{}: delinquent loads {:?} vanished without a skip reason",
                w.name,
                report.delinquent
            );
        } else {
            assert_ne!(
                adapted.program, w.program,
                "{}: slices were emitted but the binary is unchanged",
                w.name
            );
        }
    }
}

#[test]
fn treeadd_df_default_noop_is_reported_and_tunes_to_a_proved_cap() {
    let w = ssp_workloads::by_name("treeadd.df", SEED).expect("suite name");

    // Half one: the default plan is still the pinned no-op, and the
    // report row must say so rather than re-simulating the baseline
    // under an "SSP" label.
    let io = capped(MachineConfig::in_order(), 120_000);
    let ooo = capped(MachineConfig::out_of_order(), 120_000);
    let run = run_benchmark_configured(&w, &AdaptOptions::default(), &io, &ooo);
    assert!(run.is_noop(), "treeadd.df is the suite's pinned default no-op");
    assert_eq!(run.base_io.cycles, run.ssp_io.cycles, "no-op: identical binaries");
    assert!(
        run.report.delinquent.is_empty() || !run.report.skipped.is_empty(),
        "the no-op must explain itself: delinquent {:?}, skipped {:?}",
        run.report.delinquent,
        run.report.skipped
    );
    let row = run.suite_row();
    assert!(row.noop);
    assert!(
        row.warnings().iter().any(|w| w.contains("emitted no slices")),
        "warnings: {:?}",
        row.warnings()
    );
    assert!(suite_row_json(&row).contains("\"noop\": true"));

    // Half two: the tuner must upgrade "dead row" to a machine-checked
    // verdict. In-order, no knob combination beats the baseline — but
    // the proof obligations are that candidates *did* emit slices
    // (the no-op was genuinely escaped, slack gate and all) and that
    // the best of them still sits at or above baseline.
    let tuned = tuner().tune_workload(&w, TargetModel::InOrder);
    assert_eq!(
        tuned.verdict, "structural-cap",
        "treeadd.df in-order became tunable ({} -> {} cycles): move it to the wins \
         and re-pin — see docs/TUNING.md",
        tuned.base_cycles, tuned.tuned_cycles
    );
    assert!(tuned.default_noop, "the cap verdict must start from the pinned no-op");
    assert_eq!(tuned.tuned_cycles, tuned.base_cycles, "best tuned plan is the baseline");
    assert!(
        tuned.emitting_candidates >= 1,
        "a cap verdict without emitting candidates proves nothing: {tuned:?}"
    );
    assert!(
        tuned.best_candidate_cycles >= tuned.base_cycles,
        "an evaluated candidate beat the baseline yet the verdict says cap: {tuned:?}"
    );
    assert!(tuned.candidates > tuned.emitting_candidates, "noop candidates counted too");
}

/// The paper-config out-of-order regressions (Figure 8's two losing
/// bars in our reproduction) must now *tune to wins*: the default plan
/// still regresses — that pin stays, it is what makes the tuner
/// necessary — but the closed loop has to find a plan strictly below
/// baseline, lint- and oracle-clean.
#[test]
fn em3d_ooo_regression_tunes_to_a_win() {
    assert_ooo_regression_tunes_to_win("em3d");
}

#[test]
fn health_ooo_regression_tunes_to_a_win() {
    assert_ooo_regression_tunes_to_win("health");
}

fn assert_ooo_regression_tunes_to_win(name: &str) {
    let w = ssp_workloads::by_name(name, SEED).expect("suite name");
    let tuned = tuner().tune_workload(&w, TargetModel::OutOfOrder);
    assert!(
        tuned.default_cycles > tuned.base_cycles,
        "{name}: pinned OOO default regression disappeared ({} -> {} cycles) — \
         if the default plan improved, re-pin this as a plain win",
        tuned.base_cycles,
        tuned.default_cycles
    );
    assert_eq!(
        tuned.verdict, "win",
        "{name}: the tuner no longer rescues the OOO regression \
         (base {}, default {}, tuned {}, moves {:?})",
        tuned.base_cycles, tuned.default_cycles, tuned.tuned_cycles, tuned.moves
    );
    assert!(tuned.tuned_cycles < tuned.base_cycles);
    assert!(
        !tuned.moves.is_empty(),
        "{name}: a win over a regressing default needs at least one accepted move"
    );
    assert!(tuned.tuned_slices > 0, "{name}: a win must come from an emitting plan");
    // The accepted plan went through the full gate chain; the row's
    // timeliness totals come from the tuned plan's traced simulation.
    assert!(tuned.timeliness.total() > 0, "{name}: tuned plan produced no telemetry");
}
