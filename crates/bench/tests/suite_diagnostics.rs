//! Tier-1 regression suite for the benchmark table's silent failure
//! modes. Two things used to scroll past unremarked:
//!
//! * a **dead row** — the adaptation emitted nothing, so the "SSP"
//!   columns were the baseline re-simulated under a different label
//!   (`treeadd.df`);
//! * a **regression row** — the adapted binary was *slower* than its
//!   baseline on one machine model (`em3d`, `health` on out-of-order),
//!   rendered indistinguishably from the wins.
//!
//! Both are now first-class flags on [`SuiteRow`], rendered in the
//! report JSON and echoed as stderr warnings. This suite pins the
//! workloads that exhibit each mode and proves no suite workload can
//! be silently dead: either the binary changes, or the report says why
//! not.

use ssp_bench::{run_benchmark_configured, suite_row_json, SEED};
use ssp_core::{simulate, AdaptOptions, MachineConfig, PostPassTool};

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

#[test]
fn every_suite_workload_changes_the_binary_or_reports_why() {
    let tool = PostPassTool::new(MachineConfig::in_order());
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let report = &adapted.report;
        if report.is_noop() {
            assert_eq!(
                adapted.program, w.program,
                "{}: a no-op adaptation must leave the binary unchanged",
                w.name
            );
            assert!(
                report.delinquent.is_empty() || !report.skipped.is_empty(),
                "{}: delinquent loads {:?} vanished without a skip reason",
                w.name,
                report.delinquent
            );
        } else {
            assert_ne!(
                adapted.program, w.program,
                "{}: slices were emitted but the binary is unchanged",
                w.name
            );
        }
    }
}

#[test]
fn treeadd_df_noop_is_reported_not_silent() {
    let w = ssp_workloads::by_name("treeadd.df", SEED).expect("suite name");
    let io = capped(MachineConfig::in_order(), 120_000);
    let ooo = capped(MachineConfig::out_of_order(), 120_000);
    let run = run_benchmark_configured(&w, &AdaptOptions::default(), &io, &ooo);
    assert!(run.is_noop(), "treeadd.df is the suite's pinned no-op adaptation");
    assert_eq!(run.base_io.cycles, run.ssp_io.cycles, "no-op: identical binaries");
    assert_eq!(run.base_ooo.cycles, run.ssp_ooo.cycles, "no-op: identical binaries");
    assert!(
        run.report.delinquent.is_empty() || !run.report.skipped.is_empty(),
        "the no-op must explain itself: delinquent {:?}, skipped {:?}",
        run.report.delinquent,
        run.report.skipped
    );
    let row = run.suite_row();
    assert!(row.noop);
    assert!(
        row.warnings().iter().any(|w| w.contains("emitted no slices")),
        "warnings: {:?}",
        row.warnings()
    );
    assert!(
        suite_row_json(&row).contains("\"noop\": true"),
        "the report row must carry the flag: {}",
        suite_row_json(&row)
    );
}

/// The paper-config out-of-order regressions (Figure 8's two losing
/// bars in our reproduction). Full uncapped runs: the regression is a
/// property of the real configuration, not of a cycle cap.
#[test]
fn em3d_and_health_ooo_regressions_are_flagged_not_silent() {
    let ooo = MachineConfig::out_of_order();
    for name in ["em3d", "health"] {
        let w = ssp_workloads::by_name(name, SEED).expect("suite name");
        let tool = PostPassTool::new(MachineConfig::in_order());
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let base = simulate(&w.program, &ooo);
        let ssp = simulate(&adapted.program, &ooo);
        assert!(
            ssp.cycles > base.cycles,
            "{name}: pinned OOO regression disappeared ({} -> {} cycles) — \
             if the tool improved, move this workload to the wins and delete the pin",
            base.cycles,
            ssp.cycles
        );
        let row = ssp_bench::SuiteRow {
            name: name.to_owned(),
            base_io: 0,
            ssp_io: 0,
            base_ooo: base.cycles,
            ssp_ooo: ssp.cycles,
            noop: false,
            regression_io: false,
            regression_ooo: true,
        };
        assert!(
            row.warnings().iter().any(|w| w.contains("slower than baseline on out-of-order")),
            "warnings: {:?}",
            row.warnings()
        );
        assert!(
            suite_row_json(&row).contains("\"regression\": true"),
            "the report row must carry the flag: {}",
            suite_row_json(&row)
        );
    }
}
