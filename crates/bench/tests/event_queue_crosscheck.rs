//! Event-queue regression suite over the surfaces only the bench crate
//! can reach: SSP-adapted binaries (which exercise spawns, kills and the
//! multi-context schedule) and the checked-in fuzz corpus. Each run uses
//! [`ssp_sim::simulate_crosschecked`], so every incremental next-event
//! computation is verified in-flight against a brute-force O(ROB) rescan
//! — the engine panics on the first divergence — and the final
//! statistics must still match the stepped oracle byte for byte.

use ssp_core::{AdaptOptions, MachineConfig, PostPassTool};
use ssp_sim::{simulate_crosschecked, simulate_stepped};

const CORPUS: &str = include_str!("../../../tests/corpus/adaptation_oracle.corpus");

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

fn machines(max: u64) -> [(&'static str, MachineConfig); 2] {
    [
        ("in-order", capped(MachineConfig::in_order(), max)),
        ("out-of-order", capped(MachineConfig::out_of_order(), max)),
    ]
}

#[test]
fn event_queues_match_brute_force_rescan_on_adapted_workloads() {
    let ws = ssp_workloads::suite(ssp_bench::SEED);
    let opts = AdaptOptions::default();
    for w in &ws {
        let adapted = PostPassTool::new(MachineConfig::in_order())
            .with_options(opts.clone())
            .run(&w.program)
            .expect("adaptation succeeds");
        for (model, cfg) in machines(120_000) {
            let checked = simulate_crosschecked(&adapted.program, &cfg);
            let stepped = simulate_stepped(&adapted.program, &cfg);
            assert_eq!(
                checked, stepped,
                "{} adapted on {model}: crosschecked run diverged",
                w.name
            );
        }
    }
}

#[test]
fn event_queues_match_brute_force_rescan_on_fuzz_corpus() {
    let specs = ssp_fuzz::corpus::parse(CORPUS).expect("corpus parses");
    assert!(specs.len() >= 8, "seed corpus present");
    for spec in &specs {
        let prog = ssp_fuzz::gen::generate(spec).expect("corpus entries generate");
        for (model, cfg) in machines(120_000) {
            let checked = simulate_crosschecked(&prog, &cfg);
            let stepped = simulate_stepped(&prog, &cfg);
            assert_eq!(checked, stepped, "{spec} on {model}: crosschecked run diverged");
        }
    }
}
