//! Determinism of the parallel experiment runner: a parallel sweep must
//! be bit-identical to the serial runner, and two consecutive parallel
//! sweeps must be bit-identical to each other — same `SEED`, same rows,
//! same every-field `SimResult`s, regardless of thread scheduling.
//!
//! Machine configs are cycle-capped because tier-1 runs this in a debug
//! build; determinism does not depend on the cap.

use ssp_bench::trace::{render_json, trace_rows_configured};
use ssp_bench::{run_suite_configured, BenchmarkRun, SEED};
use ssp_core::{AdaptOptions, MachineConfig};

fn capped(mut mc: MachineConfig) -> MachineConfig {
    mc.max_cycles = 120_000;
    mc
}

fn assert_runs_identical(a: &[BenchmarkRun], b: &[BenchmarkRun], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{what}: row order differs");
        assert_eq!(x.base_io, y.base_io, "{what}: base_io differs for {}", x.name);
        assert_eq!(x.ssp_io, y.ssp_io, "{what}: ssp_io differs for {}", x.name);
        assert_eq!(x.base_ooo, y.base_ooo, "{what}: base_ooo differs for {}", x.name);
        assert_eq!(x.ssp_ooo, y.ssp_ooo, "{what}: ssp_ooo differs for {}", x.name);
        assert_eq!(
            x.report.delinquent, y.report.delinquent,
            "{what}: delinquent set differs for {}",
            x.name
        );
        assert_eq!(
            x.report.slice_count(),
            y.report.slice_count(),
            "{what}: slice count differs for {}",
            x.name
        );
    }
}

#[test]
fn parallel_sweep_matches_serial_and_repeats_exactly() {
    let ws = ssp_workloads::suite(SEED);
    let opts = AdaptOptions::default();
    let io = capped(MachineConfig::in_order());
    let ooo = capped(MachineConfig::out_of_order());

    let serial = run_suite_configured(&ws, &opts, &io, &ooo, 1);
    let parallel_a = run_suite_configured(&ws, &opts, &io, &ooo, 4);
    let parallel_b = run_suite_configured(&ws, &opts, &io, &ooo, 4);

    assert_runs_identical(&serial, &parallel_a, "serial vs parallel");
    assert_runs_identical(&parallel_a, &parallel_b, "parallel vs parallel");
}

#[test]
fn trace_report_json_is_byte_identical_across_worker_counts() {
    let ws = ssp_workloads::suite(SEED);
    let opts = AdaptOptions::default();
    let io = capped(MachineConfig::in_order());
    let ooo = capped(MachineConfig::out_of_order());

    let serial = render_json(&trace_rows_configured(&ws, &opts, &io, &ooo, 1), SEED, false);
    let parallel_a = render_json(&trace_rows_configured(&ws, &opts, &io, &ooo, 4), SEED, false);
    let parallel_b = render_json(&trace_rows_configured(&ws, &opts, &io, &ooo, 4), SEED, false);

    assert_eq!(serial, parallel_a, "serial vs parallel trace_report JSON");
    assert_eq!(parallel_a, parallel_b, "parallel vs parallel trace_report JSON");
    // The deterministic rendering really did suppress wall times.
    assert!(serial.contains("\"wall_times\": false"));
}
