//! Tier-1 property: the event-driven fast-forward engine is observably
//! indistinguishable from the stepped engine — identical `SimResult`
//! statistics, memory digests, and trap status — across the whole
//! surface the harness exercises: every workload × both machine models
//! × {baseline, SSP-adapted binary}, plus the checked-in fuzz corpus.
//!
//! The sim-crate tests cover baselines; this one adds the adapted
//! binaries (the bench crate is the lowest layer that can run the
//! post-pass tool) and the corpus programs. Machine configs are
//! cycle-capped because tier-1 runs this in a debug build; equivalence
//! does not depend on the cap.

use ssp_core::{simulate, simulate_stepped, AdaptOptions, MachineConfig, PostPassTool, SimResult};
use ssp_sim::{simulate_snapshot, simulate_snapshot_stepped, simulate_windowed};

const CORPUS: &str = include_str!("../../../tests/corpus/adaptation_oracle.corpus");

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

fn machines(max: u64) -> [(&'static str, MachineConfig); 2] {
    [
        ("in-order", capped(MachineConfig::in_order(), max)),
        ("out-of-order", capped(MachineConfig::out_of_order(), max)),
    ]
}

fn assert_equivalent(what: &str, fast: &SimResult, stepped: &SimResult) {
    assert_eq!(fast.total_cycles, stepped.total_cycles, "{what}: total_cycles");
    assert_eq!(fast.breakdown, stepped.breakdown, "{what}: stall breakdown");
    assert_eq!(fast, stepped, "{what}: full SimResult");
}

#[test]
fn workloads_baseline_and_adapted_match_stepped_engine() {
    let ws = ssp_workloads::suite(ssp_bench::SEED);
    let opts = AdaptOptions::default();
    for w in &ws {
        let adapted = PostPassTool::new(MachineConfig::in_order())
            .with_options(opts.clone())
            .run(&w.program)
            .expect("adaptation succeeds");
        for (model, cfg) in machines(120_000) {
            for (class, prog) in [("baseline", &w.program), ("adapted", &adapted.program)] {
                let what = format!("{} {class} on {model}", w.name);
                assert_equivalent(&what, &simulate(prog, &cfg), &simulate_stepped(prog, &cfg));
            }
        }
    }
}

#[test]
fn window_accounting_holds_on_adapted_binaries_and_corpus() {
    // `simulate_windowed` asserts busy + idle + stepped == total_cycles
    // internally; the sim-crate tests drive it over baselines, this one
    // adds the SSP-adapted binaries (speculative threads make the busy
    // batcher work hardest) and the corpus programs.
    let opts = AdaptOptions::default();
    for w in &ssp_workloads::suite(ssp_bench::SEED) {
        let adapted = PostPassTool::new(MachineConfig::in_order())
            .with_options(opts.clone())
            .run(&w.program)
            .expect("adaptation succeeds");
        for (model, cfg) in machines(120_000) {
            let what = format!("{} adapted on {model}", w.name);
            let (r, stats) = simulate_windowed(&adapted.program, &cfg);
            assert_equivalent(&what, &r, &simulate_stepped(&adapted.program, &cfg));
            assert_eq!(stats.simulated(), r.total_cycles, "{what}: accounting leak");
        }
    }
    for spec in &ssp_fuzz::corpus::parse(CORPUS).expect("corpus parses") {
        let prog = ssp_fuzz::gen::generate(spec).expect("corpus entries generate");
        for (model, cfg) in machines(120_000) {
            let (r, stats) = simulate_windowed(&prog, &cfg);
            assert_eq!(stats.simulated(), r.total_cycles, "{spec} on {model}: accounting leak");
        }
    }
}

#[test]
fn corpus_programs_match_stepped_engine_with_digests_and_traps() {
    let specs = ssp_fuzz::corpus::parse(CORPUS).expect("corpus parses");
    assert!(specs.len() >= 8, "seed corpus present");
    for spec in &specs {
        let prog = ssp_fuzz::gen::generate(spec).expect("corpus entries generate");
        let bound = prog.next_tag;
        for (model, cfg) in machines(120_000) {
            let (fr, fs) = simulate_snapshot(&prog, &cfg, bound);
            let (sr, ss) = simulate_snapshot_stepped(&prog, &cfg, bound);
            assert_equivalent(&format!("{spec} on {model}"), &fr, &sr);
            assert_eq!(fs.mem_digest, ss.mem_digest, "{spec} on {model}: memory digest");
            assert_eq!(fs.trap, ss.trap, "{spec} on {model}: trap status");
            assert_eq!(fs, ss, "{spec} on {model}: full snapshot");
        }
    }
}
