//! Slice scheduling for basic and chaining speculative precomputation
//! (§3.2 of the paper).
//!
//! Given a p-slice's dependence graph, this crate produces the *execution
//! slice*: the ordered body of the generated do-across prefetching loop,
//! with the chaining spawn placed right after the critical sub-slice.
//! The pipeline is: loop rotation and condition prediction
//! ([`schedule::rotate_loop`], [`schedule::predict_condition`]) reduce
//! dependences; Tarjan SCCs ([`scc::SccPartition`]) tighten dependence
//! cycles; forward list scheduling with maximum-cumulative-cost priority
//! emits the order. [`slack`] implements the paper's slack equations and
//! the reduced-miss-cycle objective that drives region selection.

#![warn(missing_docs)]

pub mod scc;
pub mod schedule;
pub mod slack;

pub use scc::SccPartition;
pub use schedule::{
    branch_bias, node_heights, predict_condition, rotate_loop, schedule_basic, schedule_chaining,
    ScheduleOptions, ScheduledSlice, SpModel,
};
pub use slack::{reduced_miss_cycles, slack_basic, slack_chaining, spawn_copy_latency};
