//! Slice scheduling (§3.2): loop rotation, condition prediction, SCC
//! partitioning, and forward list scheduling with maximum-cumulative-cost
//! priority, producing the execution slice and its spawn point.

use crate::scc::SccPartition;
use ssp_ir::{InstRef, Op, Program};
use ssp_sim::{MachineConfig, Profile};
use ssp_slicing::RegionDepGraph;
use std::collections::HashSet;

/// Which precomputation model a schedule targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpModel {
    /// Chaining SP: speculative threads spawn their successors,
    /// do-across style.
    Chaining,
    /// Basic SP: one sequential speculative thread loops over iterations.
    Basic,
}

/// Scheduling knobs (the §3.2.1.1 dependence-reduction optimizations).
#[derive(Clone, Debug)]
pub struct ScheduleOptions {
    /// Apply loop rotation to convert backward loop-carried dependences
    /// into intra-iteration ones.
    pub loop_rotation: bool,
    /// Apply condition prediction to break the dependences leading to
    /// the spawn condition when the branch is strongly biased.
    pub condition_prediction: bool,
    /// Minimum bias (taken-ratio) for a branch to be predicted.
    pub predict_threshold: f64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions { loop_rotation: true, condition_prediction: true, predict_threshold: 0.9 }
    }
}

/// An execution slice: the ordered body of the generated prefetching loop.
#[derive(Clone, Debug)]
pub struct ScheduledSlice {
    /// Precomputation model.
    pub model: SpModel,
    /// One iteration's instructions in execution order.
    pub order: Vec<InstRef>,
    /// The chaining spawn goes after `order[..spawn_pos]`; equals
    /// `order.len()` for basic SP (no in-slice spawn).
    pub spawn_pos: usize,
    /// The critical sub-slice (scheduled before the spawn point).
    pub critical: Vec<InstRef>,
    /// Branch whose condition is predicted (removed from criticality),
    /// if condition prediction fired.
    pub predicted: Option<InstRef>,
    /// Loop-rotation offset applied (0 = none).
    pub rotation: usize,
    /// Dependence height of the critical sub-slice.
    pub critical_height: u64,
    /// Dependence height of the whole slice.
    pub slice_height: u64,
}

/// Greedy loop rotation (§3.2.1.1): choose the cut that converts the most
/// backward loop-carried dependences into intra-iteration dependences
/// without converting any intra-iteration dependence into a carried one.
/// Returns the chosen offset and the re-classified graph.
pub fn rotate_loop(g: &RegionDepGraph) -> (usize, RegionDepGraph) {
    let n = g.nodes.len();
    if n < 2 {
        return (0, g.clone());
    }
    let mut best_r = 0usize;
    let mut best_score = 0usize;
    for r in 1..n {
        // Valid: no intra edge from < r <= to (the cut splits it).
        let valid = !g.edges.iter().any(|e| !e.carried && e.from < r && r <= e.to);
        if !valid {
            continue;
        }
        // Score: carried edges with to < r <= from become intra.
        let score = g.edges.iter().filter(|e| e.carried && e.to < r && r <= e.from).count();
        if score > best_score {
            best_score = score;
            best_r = r;
        }
    }
    if best_r == 0 {
        return (0, g.clone());
    }
    let order: Vec<usize> = (best_r..n).chain(0..best_r).collect();
    (best_r, g.reordered(&order))
}

/// The bias of a conditional branch: the probability of its more frequent
/// outcome, from edge profiles. `None` when unexecuted or not a branch.
pub fn branch_bias(prog: &Program, profile: &Profile, at: InstRef) -> Option<f64> {
    let Op::BrCond { if_true, if_false, .. } = prog.inst(at).op else {
        return None;
    };
    let t = profile.edge_freq.get(&(at.func, at.block, if_true)).copied().unwrap_or(0);
    let f = profile.edge_freq.get(&(at.func, at.block, if_false)).copied().unwrap_or(0);
    if t + f == 0 {
        return None;
    }
    Some(t.max(f) as f64 / (t + f) as f64)
}

/// Break the dependences leading into the spawn condition `branch`
/// (§3.2.1.1 condition prediction): edges into the branch and into nodes
/// whose every (non-carried) user path leads only to the branch are
/// removed, so the condition chain drops out of the dependence cycle and
/// can be scheduled after the spawn.
pub fn predict_condition(g: &RegionDepGraph, branch: usize) -> RegionDepGraph {
    // cond_nodes: nodes all of whose forward users lie in the condition
    // chain (fixed point, seeded with the branch itself). A node that
    // produces a loop-carried *value* (a carried data out-edge) is never
    // condition-only — it computes the next iteration's live-ins, even if
    // its only intra-iteration consumer is the comparison.
    let n = g.nodes.len();
    let mut in_chain = vec![false; n];
    in_chain[branch] = true;
    let carries_value = |v: usize| {
        g.edges
            .iter()
            .any(|e| e.from == v && e.carried && matches!(e.kind, ssp_slicing::DepKind::Data(_)))
    };
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if in_chain[v] || carries_value(v) {
                continue;
            }
            let mut has_user = false;
            let all_in = g.edges.iter().filter(|e| e.from == v && !e.carried).all(|e| {
                has_user = true;
                in_chain[e.to]
            });
            if has_user && all_in {
                in_chain[v] = true;
                changed = true;
            }
        }
    }
    // Remove edges from outside the chain into the chain (and carried
    // edges into the chain from anywhere), plus the predicted branch's own
    // control edges — predicting the branch means nothing waits for it.
    let remove: HashSet<(usize, usize)> = g
        .edges
        .iter()
        .filter(|e| (in_chain[e.to] && (!in_chain[e.from] || e.carried)) || e.from == branch)
        .map(|e| (e.from, e.to))
        .collect();
    g.without_edges(&remove)
}

/// Dead-code elimination after condition prediction: nodes that are not
/// loads (loads are prefetches — always useful) and feed nothing are
/// dropped, transitively. The predicted branch and its condition chain
/// disappear this way, leaving only the value computation.
pub fn eliminate_dead(g: &RegionDepGraph, prog: &Program) -> RegionDepGraph {
    // Backward liveness from the loads: anything that (transitively)
    // feeds a load stays; mutually-referencing condition remnants die.
    let n = g.nodes.len();
    let mut live = vec![false; n];
    for (i, at) in g.nodes.iter().enumerate() {
        if prog.inst(*at).op.is_load() {
            live[i] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for e in &g.edges {
            if live[e.to] && !live[e.from] {
                live[e.from] = true;
                changed = true;
            }
        }
    }
    let alive: HashSet<InstRef> =
        g.nodes.iter().enumerate().filter(|(i, _)| live[*i]).map(|(_, at)| *at).collect();
    g.induced(&alive)
}

/// Node heights over forward (non-carried) edges: `height(n) = lat(n) +
/// max(height(users))` — the maximum-cumulative-cost priority of
/// §3.2.1.2.2.
pub fn node_heights(
    g: &RegionDepGraph,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
) -> Vec<u64> {
    let n = g.nodes.len();
    let mut h = vec![0u64; n];
    // Forward edges point forward in node order, so reverse order is
    // topological.
    for i in (0..n).rev() {
        let own = ssp_slicing::latency_of_at(prog, g.nodes[i], profile, mc);
        let succ = g
            .edges
            .iter()
            .filter(|e| e.from == i && !e.carried)
            .map(|e| h[e.to])
            .max()
            .unwrap_or(0);
        h[i] = own + succ;
    }
    h
}

/// Schedule a slice graph for chaining SP: SCC partition, whole-SCC
/// emission with height priority, spawn point after the critical
/// sub-slice (§3.2.1.2).
pub fn schedule_chaining(
    g: &RegionDepGraph,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
    opts: &ScheduleOptions,
) -> ScheduledSlice {
    let (rotation, g) = if opts.loop_rotation { rotate_loop(g) } else { (0, g.clone()) };

    // Critical set for a given graph: nodes in dependence cycles plus
    // producers of loop-carried *values* (they compute the next thread's
    // live-ins), closed backwards over forward edges. Carried control
    // sources (the latch branch) are not seeds — the spawn gate takes
    // over that role in the generated loop.
    let critical_set = |g: &RegionDepGraph| {
        let scc = SccPartition::new(g);
        let n = g.nodes.len();
        let mut critical = vec![false; n];
        for v in scc.cyclic_nodes() {
            critical[v] = true;
        }
        for e in &g.edges {
            if e.carried && matches!(e.kind, ssp_slicing::DepKind::Data(_)) {
                critical[e.from] = true;
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for e in &g.edges {
                if !e.carried && critical[e.to] && !critical[e.from] {
                    critical[e.from] = true;
                    changed = true;
                }
            }
        }
        critical
    };

    // Condition prediction: find the slice's loop branch (a BrCond with
    // carried control edges). Predict it when strongly biased, it
    // participates in a cycle, and breaking the condition dependences
    // actually removes a *load* from the critical sub-slice — the
    // "delinquent load occurs before the spawning" situation the paper
    // targets. Predicting a cheap ALU condition only costs termination
    // hygiene for no slack gain.
    let mut predicted = None;
    let mut g = g;
    if opts.condition_prediction {
        let branch = g
            .nodes
            .iter()
            .enumerate()
            .find(|(i, at)| {
                matches!(prog.inst(**at).op, Op::BrCond { .. })
                    && g.edges.iter().any(|e| e.from == *i && e.carried)
            })
            .map(|(i, _)| i);
        if let Some(b) = branch {
            let scc = SccPartition::new(&g);
            let in_cycle = scc.is_cycle(scc.comp_of[b]);
            let bias = branch_bias(prog, profile, g.nodes[b]).unwrap_or(0.0);
            if in_cycle && bias >= opts.predict_threshold {
                let pred_g = eliminate_dead(&predict_condition(&g, b), prog);
                let crit_before = critical_set(&g);
                let crit_after = critical_set(&pred_g);
                let critical_loads = |g2: &RegionDepGraph, crit: &[bool]| {
                    g2.nodes
                        .iter()
                        .enumerate()
                        .filter(|(v, at)| crit[*v] && prog.inst(**at).op.is_load())
                        .map(|(_, at)| *at)
                        .collect::<HashSet<_>>()
                };
                let before = critical_loads(&g, &crit_before);
                let after = critical_loads(&pred_g, &crit_after);
                if after.len() < before.len() {
                    predicted = Some(g.nodes[b]);
                    g = pred_g;
                }
            }
        }
    }

    let scc = SccPartition::new(&g);
    let heights = node_heights(&g, prog, profile, mc);
    let critical = critical_set(&g);
    let n = g.nodes.len();

    // SCC condensation DAG over forward edges.
    let ncomp = scc.components.len();
    let mut comp_preds: Vec<HashSet<usize>> = vec![HashSet::new(); ncomp];
    for e in &g.edges {
        if e.carried {
            continue;
        }
        let (cf, ct) = (scc.comp_of[e.from], scc.comp_of[e.to]);
        if cf != ct {
            comp_preds[ct].insert(cf);
        }
    }
    let comp_height = |c: usize| scc.components[c].iter().map(|&v| heights[v]).max().unwrap_or(0);
    let comp_critical = |c: usize| scc.components[c].iter().any(|&v| critical[v]);
    let comp_pos = |c: usize| scc.components[c].iter().min().copied().unwrap_or(0);

    // List-schedule SCCs: ready when all DAG preds emitted; priority =
    // (critical first, height desc, program position asc).
    let mut emitted_comp = vec![false; ncomp];
    let mut order: Vec<usize> = Vec::new(); // node indices
    let mut spawn_pos_nodes = None;
    let mut remaining_critical = (0..ncomp).filter(|&c| comp_critical(c)).count();
    for _ in 0..ncomp {
        let ready: Vec<usize> = (0..ncomp)
            .filter(|&c| !emitted_comp[c])
            .filter(|&c| comp_preds[c].iter().all(|&p| emitted_comp[p]))
            .collect();
        let &best = ready
            .iter()
            .max_by(|&&a, &&b| {
                (comp_critical(a), comp_height(a), std::cmp::Reverse(comp_pos(a))).cmp(&(
                    comp_critical(b),
                    comp_height(b),
                    std::cmp::Reverse(comp_pos(b)),
                ))
            })
            .expect("DAG always has a ready component");
        emitted_comp[best] = true;
        // Within the SCC: list schedule by height ignoring carried edges.
        let mut members = scc.components[best].clone();
        members.sort_by(|&a, &b| heights[b].cmp(&heights[a]).then(a.cmp(&b)));
        // Respect intra-SCC forward edges: stable topological insertion.
        let mut placed: Vec<usize> = Vec::new();
        let mut left: Vec<usize> = members;
        while !left.is_empty() {
            let pos = left
                .iter()
                .position(|&v| {
                    g.edges
                        .iter()
                        .all(|e| e.carried || e.to != v || !left.contains(&e.from) || e.from == v)
                })
                .unwrap_or(0);
            placed.push(left.remove(pos));
        }
        order.extend(placed);
        if comp_critical(best) {
            remaining_critical -= 1;
            if remaining_critical == 0 {
                spawn_pos_nodes = Some(order.len());
            }
        }
    }
    let spawn_pos = spawn_pos_nodes.unwrap_or(0);

    let crit_set: HashSet<InstRef> = (0..n).filter(|&v| critical[v]).map(|v| g.nodes[v]).collect();
    let crit_graph = g.induced(&crit_set);
    let critical_height = crit_graph.critical_path(profile, prog, mc);
    let slice_height = g.critical_path(profile, prog, mc);

    ScheduledSlice {
        model: SpModel::Chaining,
        order: order.into_iter().map(|v| g.nodes[v]).collect(),
        spawn_pos,
        critical: crit_set.into_iter().collect(),
        predicted,
        rotation,
        critical_height,
        slice_height,
    }
}

/// Schedule a slice for basic SP: plain forward list scheduling by height,
/// ignoring all loop-carried dependences (§3.2.2); no in-slice spawn.
pub fn schedule_basic(
    g: &RegionDepGraph,
    prog: &Program,
    profile: &Profile,
    mc: &MachineConfig,
) -> ScheduledSlice {
    let heights = node_heights(g, prog, profile, mc);
    let n = g.nodes.len();
    let mut emitted = vec![false; n];
    let mut order = Vec::new();
    for _ in 0..n {
        let best = (0..n)
            .filter(|&v| !emitted[v])
            .filter(|&v| g.edges.iter().all(|e| e.carried || e.to != v || emitted[e.from]))
            .max_by(|&a, &b| heights[a].cmp(&heights[b]).then(b.cmp(&a)))
            .expect("forward dependences are acyclic");
        emitted[best] = true;
        order.push(best);
    }
    let slice_height = g.critical_path(profile, prog, mc);
    ScheduledSlice {
        model: SpModel::Basic,
        spawn_pos: n,
        order: order.into_iter().map(|v| g.nodes[v]).collect(),
        critical: Vec::new(),
        predicted: None,
        rotation: 0,
        critical_height: slice_height,
        slice_height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{BlockId, CmpKind, Operand, ProgramBuilder, Reg};
    use ssp_slicing::Analyses;

    /// Figure 3 again.
    fn figure3() -> (Program, RegionDepGraph, BlockId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(70));
        f.at(e).movi(arc, 0x1000).movi(k, 0x9000).br(body);
        f.at(body)
            .mov(t, arc) // 0 A
            .ld(u, t, 0) // 1 B
            .ld(v, u, 0) // 2 C
            .add(arc, t, 64) // 3 D
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // 4 cmp
            .br_cond(p, body, exit); // 5 br
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let g = RegionDepGraph::build(
            &prog,
            prog.entry,
            &[body],
            fa,
            &Profile::default(),
            &MachineConfig::in_order(),
        );
        (prog, g, body)
    }

    fn idx_of(order: &[InstRef], body: BlockId, idx: usize) -> usize {
        order.iter().position(|r| r.block == body && r.idx == idx).unwrap()
    }

    #[test]
    fn chaining_schedule_matches_figure5b() {
        let (prog, g, body) = figure3();
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let opts = ScheduleOptions { condition_prediction: false, ..Default::default() };
        let s = schedule_chaining(&g, &prog, &profile, &mc, &opts);
        assert_eq!(s.model, SpModel::Chaining);
        assert_eq!(s.order.len(), 6);
        // Critical sub-slice {A, D, cmp, br} before the spawn; B and C
        // after it — exactly Figure 5(b).
        let (a, b, c, d) = (
            idx_of(&s.order, body, 0),
            idx_of(&s.order, body, 1),
            idx_of(&s.order, body, 2),
            idx_of(&s.order, body, 3),
        );
        assert!(a < s.spawn_pos && d < s.spawn_pos, "A, D before spawn");
        assert!(b >= s.spawn_pos && c >= s.spawn_pos, "B, C after spawn");
        assert!(a < b, "A before B (t feeds the load)");
        assert!(b < c, "B before C");
        assert_eq!(s.critical.len(), 4);
    }

    /// Loop whose continue-condition depends on a *load* (`stop flag`
    /// fetched from the node) while the induction is cheap — the
    /// situation where condition prediction moves the delinquent load
    /// past the spawn point.
    fn load_gated_loop() -> (Program, RegionDepGraph, BlockId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, t, c, v, p) = (Reg(64), Reg(66), Reg(67), Reg(68), Reg(70));
        f.at(e).movi(arc, 0x1000).br(body);
        f.at(body)
            .mov(t, arc) // 0
            .ld(c, t, 8) // 1: condition data — a load
            .ld(v, t, 0) // 2: payload
            .add(arc, t, 64) // 3
            .cmp(CmpKind::Ne, p, c, 0) // 4
            .br_cond(p, body, exit); // 5
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let g = RegionDepGraph::build(
            &prog,
            prog.entry,
            &[body],
            fa,
            &Profile::default(),
            &MachineConfig::in_order(),
        );
        (prog, g, body)
    }

    #[test]
    fn condition_prediction_frees_load_from_critical_subslice() {
        let (prog, g, body) = load_gated_loop();
        // Heavily-biased loop branch in the profile.
        let mut profile = Profile::default();
        profile.edge_freq.insert((prog.entry, body, body), 99);
        profile.edge_freq.insert((prog.entry, body, BlockId(2)), 1);
        let mc = MachineConfig::in_order();
        let without = schedule_chaining(
            &g,
            &prog,
            &profile,
            &mc,
            &ScheduleOptions { condition_prediction: false, ..Default::default() },
        );
        let with = schedule_chaining(&g, &prog, &profile, &mc, &ScheduleOptions::default());
        assert!(with.predicted.is_some(), "biased load-gated branch got predicted");
        assert!(
            with.critical.len() < without.critical.len(),
            "prediction shrinks criticality: {} vs {}",
            with.critical.len(),
            without.critical.len()
        );
        assert!(with.critical_height < without.critical_height);
        // The condition load must have left the critical sub-slice.
        let cond_load = InstRef { func: prog.entry, block: body, idx: 1 };
        assert!(without.critical.contains(&cond_load));
        assert!(!with.critical.contains(&cond_load));
    }

    #[test]
    fn prediction_not_applied_to_cheap_alu_condition() {
        // Figure 3's loop: the condition is a cmp on the induction value.
        // Predicting it frees no load, so the scheduler keeps the exact
        // (gated) spawn condition.
        let (prog, g, body) = figure3();
        let mut profile = Profile::default();
        profile.edge_freq.insert((prog.entry, body, body), 399);
        profile.edge_freq.insert((prog.entry, body, BlockId(2)), 1);
        let mc = MachineConfig::in_order();
        let s = schedule_chaining(&g, &prog, &profile, &mc, &ScheduleOptions::default());
        assert!(s.predicted.is_none(), "no load freed: prediction skipped");
    }

    #[test]
    fn basic_schedule_ignores_carried_deps() {
        let (prog, g, body) = figure3();
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let s = schedule_basic(&g, &prog, &profile, &mc);
        assert_eq!(s.model, SpModel::Basic);
        assert_eq!(s.spawn_pos, s.order.len(), "no in-slice spawn for basic SP");
        assert_eq!(s.order.len(), 6);
        // Dependences within the iteration still respected.
        let (a, b, c) =
            (idx_of(&s.order, body, 0), idx_of(&s.order, body, 1), idx_of(&s.order, body, 2));
        assert!(a < b && b < c);
    }

    #[test]
    fn rotation_converts_backward_carried_edge() {
        // Hand-build a graph shape where the carried edge goes from the
        // bottom node to the top node and rotation fixes it:
        //   n0: x = y (uses y from prev iter)  <- carried consumer
        //   n1: prefetch-ish use of x
        //   n2: y = load(...)                  <- carried producer (bottom)
        // Rotating to start at n2 makes y -> x intra-iteration.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (x, y, i, p) = (Reg(60), Reg(61), Reg(62), Reg(63));
        f.at(e).movi(y, 0x1000).movi(i, 0).br(body);
        f.at(body)
            .mov(x, y) // 0: consumes prev iteration's y
            .ld(Reg(64), x, 0) // 1
            .ld(y, x, 8) // 2: produces next iteration's y
            .add(i, i, 1) // 3
            .cmp(CmpKind::Lt, p, i, 10) // 4
            .br_cond(p, body, exit); // 5
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let g = RegionDepGraph::build(
            &prog,
            prog.entry,
            &[body],
            fa,
            &Profile::default(),
            &MachineConfig::in_order(),
        );
        let carried_before = g.edges.iter().filter(|e| e.carried).count();
        let (r, rg) = rotate_loop(&g);
        let carried_after = rg.edges.iter().filter(|e| e.carried).count();
        // Rotation may or may not find a valid cut given control edges;
        // when it does, carried count must strictly drop and never rise.
        assert!(carried_after <= carried_before);
        if r > 0 {
            assert!(carried_after < carried_before);
        }
    }

    #[test]
    fn heights_decrease_along_chains() {
        let (prog, g, _) = figure3();
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let h = node_heights(&g, &prog, &profile, &mc);
        // A (node 0) feeds B (node 1) feeds C (node 2): heights strictly
        // decreasing along the chain.
        assert!(h[0] > h[1]);
        assert!(h[1] > h[2]);
    }
}
