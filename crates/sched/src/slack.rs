//! Slack models (§3.2.1.2.2, §3.2.2) and the reduced-miss-cycle objective
//! (§3.4.1).
//!
//! Slack is "the execution distance between the main thread and the
//! speculative thread": positive slack means the prefetch runs ahead.
//! The tool estimates it per iteration of the generated prefetching loop:
//!
//! * chaining: `slack_csp(i) = (height(region) − height(critical) −
//!   latency(copy live-ins and spawn)) · i`
//! * basic: `slack_bsp(i) = (height(region) − height(slice)) · i`
//!
//! Chaining pays the spawn/copy overhead but only serializes the critical
//! sub-slice; basic SP saves the overhead but serializes the whole slice.

/// Per-iteration chaining-SP slack at iteration `i` (1-based).
pub fn slack_chaining(
    region_height: u64,
    critical_height: u64,
    spawn_copy_latency: u64,
    i: u64,
) -> i64 {
    let gain = region_height as i64 - critical_height as i64 - spawn_copy_latency as i64;
    gain * i as i64
}

/// Per-iteration basic-SP slack at iteration `i` (1-based).
pub fn slack_basic(region_height: u64, slice_height: u64, i: u64) -> i64 {
    (region_height as i64 - slice_height as i64) * i as i64
}

/// Cost of copying `live_ins` values and spawning, in cycles — the
/// `latency(copy live-ins and spawn)` term. One buffer write per live-in
/// on each side plus the spawn itself.
pub fn spawn_copy_latency(live_ins: usize, lib_latency: u64, spawn_latency: u64) -> u64 {
    // Parent: alloc + N stores; child: N loads. The child-side loads are
    // on the critical path of the chain hand-off.
    lib_latency * (1 + 2 * live_ins as u64) + spawn_latency
}

/// Reduced miss cycles for a region (§3.4.1):
/// `Σ_i min(miss_cycle_per_iteration, slack(i))`, with negative slack
/// contributing nothing.
pub fn reduced_miss_cycles(
    miss_cycles_per_iter: u64,
    trip_count: u64,
    mut slack_at: impl FnMut(u64) -> i64,
) -> u64 {
    (1..=trip_count)
        .map(|i| {
            let s = slack_at(i).max(0) as u64;
            s.min(miss_cycles_per_iter)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaining_slack_grows_linearly() {
        assert_eq!(slack_chaining(100, 10, 5, 1), 85);
        assert_eq!(slack_chaining(100, 10, 5, 3), 255);
    }

    #[test]
    fn negative_slack_when_critical_dominates() {
        assert!(slack_chaining(50, 60, 5, 2) < 0);
        assert_eq!(slack_basic(50, 80, 4), -120);
    }

    #[test]
    fn basic_vs_chaining_tradeoff() {
        // Region height 100; slice height 90 of which critical is 20.
        // Basic: (100-90)·i = 10·i. Chaining with copy cost 12:
        // (100-20-12)·i = 68·i — chaining wins despite the overhead when
        // the non-critical sub-slice carries the latency.
        let basic: i64 = slack_basic(100, 90, 1);
        let chain = slack_chaining(100, 20, 12, 1);
        assert!(chain > basic);
        // But when the slice is nearly all critical, basic SP's saved
        // overhead wins: slice height 25, critical 24.
        let basic = slack_basic(100, 25, 1);
        let chain = slack_chaining(100, 24, 12, 1);
        assert!(basic > chain);
    }

    #[test]
    fn reduced_miss_cycles_saturates_at_miss_cost() {
        // Slack 50·i, miss cost 120/iter, 4 iterations:
        // min(120,50)+min(120,100)+min(120,150)+min(120,200) = 50+100+120+120.
        let red = reduced_miss_cycles(120, 4, |i| 50 * i as i64);
        assert_eq!(red, 50 + 100 + 120 + 120);
    }

    #[test]
    fn reduced_miss_cycles_zero_for_negative_slack() {
        let red = reduced_miss_cycles(120, 5, |_| -10);
        assert_eq!(red, 0);
    }

    #[test]
    fn spawn_copy_cost_scales_with_live_ins() {
        let c0 = spawn_copy_latency(0, 1, 4);
        let c4 = spawn_copy_latency(4, 1, 4);
        assert!(c4 > c0);
        assert_eq!(c4 - c0, 8);
    }
}
