//! Strongly-connected-component partitioning of slice dependence graphs
//! (§3.2.1.2.1).
//!
//! Dependence cycles (always involving loop-carried edges) must be
//! resolved by a chaining thread before its successor can start the same
//! cycle, so the scheduler tightens each cycle into one SCC and emits
//! whole SCCs atomically. "A degenerate SCC contains only one instruction
//! node"; non-degenerate SCCs form the *critical sub-slice* executed
//! before the spawn point.

use ssp_slicing::RegionDepGraph;

/// The SCC partition of a dependence graph.
#[derive(Clone, Debug)]
pub struct SccPartition {
    /// SCCs in reverse topological discovery order (Tarjan); each is a
    /// list of node indices of the underlying graph.
    pub components: Vec<Vec<usize>>,
    /// Map from node index to its component index.
    pub comp_of: Vec<usize>,
    /// Nodes with a dependence edge to themselves (one-instruction
    /// cycles such as `p = load(p)`).
    self_edges: Vec<usize>,
}

impl SccPartition {
    /// Compute SCCs of `g`, following *all* dependence edges (carried
    /// edges are what closes cycles). False dependences are absent from
    /// the graph by construction, matching "we form SCCs without
    /// considering any false loop-carried dependences".
    pub fn new(g: &RegionDepGraph) -> Self {
        let n = g.nodes.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &g.edges {
            succs[e.from].push(e.to);
        }
        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut comp_of = vec![usize::MAX; n];

        #[derive(Clone, Copy)]
        struct Frame {
            v: usize,
            child: usize,
        }
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<Frame> = vec![Frame { v: root, child: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(f) = call.last_mut() {
                let v = f.v;
                if f.child < succs[v].len() {
                    let w = succs[v][f.child];
                    f.child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp_of[w] = components.len();
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        components.push(comp);
                    }
                    call.pop();
                    if let Some(p) = call.last() {
                        let pv = p.v;
                        low[pv] = low[pv].min(low[v]);
                    }
                }
            }
        }
        let mut self_edges: Vec<usize> =
            g.edges.iter().filter(|e| e.from == e.to).map(|e| e.from).collect();
        self_edges.sort_unstable();
        self_edges.dedup();
        SccPartition { components, comp_of, self_edges }
    }

    /// Whether component `c` is non-degenerate (a real dependence cycle).
    /// A single node with a self edge (e.g. `p = load(p)`) also counts.
    pub fn is_cycle(&self, c: usize) -> bool {
        self.components[c].len() > 1
            || self.components[c].first().is_some_and(|&v| self.self_edges.contains(&v))
    }

    /// Node indices belonging to non-degenerate SCCs — the critical
    /// sub-slice candidates.
    pub fn cyclic_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.components.len())
            .filter(|&c| self.is_cycle(c))
            .flat_map(|c| self.components[c].iter().copied())
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, InstRef, Operand, ProgramBuilder, Reg};
    use ssp_sim::{MachineConfig, Profile};
    use ssp_slicing::{Analyses, RegionDepGraph};

    /// Figure 3's loop again; the SCC must be {A, D, cmp, branch}, with B
    /// and C degenerate (Figure 5(a) merges cmp+branch into "E").
    fn figure3_graph() -> (ssp_ir::Program, RegionDepGraph, ssp_ir::BlockId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(70));
        f.at(e).movi(arc, 0x1000).movi(k, 0x9000).br(body);
        f.at(body)
            .mov(t, arc) // 0 A
            .ld(u, t, 0) // 1 B
            .ld(v, u, 0) // 2 C
            .add(arc, t, 64) // 3 D
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // 4 E-cmp
            .br_cond(p, body, exit); // 5 E-br
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let g = RegionDepGraph::build(
            &prog,
            prog.entry,
            &[body],
            fa,
            &Profile::default(),
            &MachineConfig::in_order(),
        );
        (prog, g, body)
    }

    #[test]
    fn figure5_scc_structure() {
        let (prog, g, body) = figure3_graph();
        let scc = SccPartition::new(&g);
        let n = |idx: usize| g.node_of(InstRef { func: prog.entry, block: body, idx }).unwrap();
        let cyc = scc.cyclic_nodes();
        assert!(cyc.contains(&n(0)), "A in the cycle");
        assert!(cyc.contains(&n(3)), "D in the cycle");
        assert!(cyc.contains(&n(4)), "cmp in the cycle");
        assert!(cyc.contains(&n(5)), "branch in the cycle");
        assert!(!cyc.contains(&n(1)), "B degenerate");
        assert!(!cyc.contains(&n(2)), "C degenerate");
        // One non-degenerate component exactly.
        assert_eq!(scc.components.iter().filter(|c| c.len() > 1).count(), 1);
    }

    #[test]
    fn acyclic_graph_is_all_degenerate() {
        // Straight-line: a -> b -> c data chain, no loop.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.at(e).movi(Reg(1), 5).add(Reg(2), Reg(1), 1).add(Reg(3), Reg(2), 1).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let g = RegionDepGraph::build(
            &prog,
            prog.entry,
            &[prog.func(prog.entry).entry],
            fa,
            &Profile::default(),
            &MachineConfig::in_order(),
        );
        let scc = SccPartition::new(&g);
        assert!(scc.cyclic_nodes().is_empty());
        assert_eq!(scc.components.len(), g.nodes.len());
    }

    #[test]
    fn comp_of_is_consistent() {
        let (_, g, _) = figure3_graph();
        let scc = SccPartition::new(&g);
        for (ci, comp) in scc.components.iter().enumerate() {
            for &nd in comp {
                assert_eq!(scc.comp_of[nd], ci);
            }
        }
    }
}
