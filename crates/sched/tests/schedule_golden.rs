//! Golden-file tests for the two schedulers on fixed workloads.
//!
//! The property tests check *validity* (dependence-respecting
//! permutations); these check *stability*: the exact instruction order,
//! spawn point, rotation, and dependence heights `schedule_chaining`
//! and `schedule_basic` produce for the mcf and em3d hot loops. Any
//! change to scheduler priorities, rotation, or condition prediction
//! shows up here as a readable diff instead of a silent perf shift.
//!
//! To regenerate after an intentional scheduler change:
//!
//! ```text
//! SSP_BLESS=1 cargo test -p ssp-sched --test schedule_golden
//! ```

use ssp_ir::{BlockId, InstRef};
use ssp_sched::{schedule_basic, schedule_chaining, ScheduleOptions, ScheduledSlice};
use ssp_sim::MachineConfig;
use ssp_slicing::{RegionDepGraph, SliceOptions, Slicer};

/// The fixed generator seed shared with the benchmark suite.
const SEED: u64 = 2002;

/// Schedule the hottest delinquent load's slice in `w` both ways and
/// render a textual snapshot.
fn snapshot(w: &ssp_workloads::Workload) -> String {
    let mc = MachineConfig::in_order();
    let profile = ssp_sim::profile(&w.program, &mc);
    let index = w.program.tag_index();
    let root: InstRef = index[&profile.delinquent_loads(0.9)[0]];

    let mut slicer = Slicer::new(&w.program, &profile, SliceOptions::default());
    let blocks: Vec<BlockId> = {
        let fa = slicer.analyses.get(&w.program, root.func);
        let l = fa.loops.innermost(root.block).expect("delinquent load sits in a loop");
        fa.loops.get(l).blocks.clone()
    };
    let slice = slicer.slice_in_region(root, &blocks).expect("root is a load");
    let graph = {
        let fa = slicer.analyses.get(&w.program, root.func);
        RegionDepGraph::build(&w.program, root.func, &blocks, fa, &profile, &mc)
    };
    let keep: std::collections::HashSet<_> = slice.insts.iter().copied().collect();
    let sg = graph.induced(&keep);

    let chaining = schedule_chaining(&sg, &w.program, &profile, &mc, &ScheduleOptions::default());
    let basic = schedule_basic(&sg, &w.program, &profile, &mc);

    let mut out = String::new();
    out.push_str(&format!("workload {}\nroot {root}\n", w.name));
    for s in [&chaining, &basic] {
        out.push_str(&render(s));
    }
    out
}

fn render(s: &ScheduledSlice) -> String {
    let mut out = String::new();
    out.push_str(&format!("\nmodel {:?}\n", s.model));
    out.push_str(&format!("rotation {}\n", s.rotation));
    out.push_str(&format!("spawn_pos {}\n", s.spawn_pos));
    out.push_str(&format!("critical_height {}\n", s.critical_height));
    out.push_str(&format!("slice_height {}\n", s.slice_height));
    if let Some(p) = s.predicted {
        out.push_str(&format!("predicted {p}\n"));
    }
    out.push_str("order:\n");
    for at in &s.order {
        let marker = if s.critical.contains(at) { " critical" } else { "" };
        out.push_str(&format!("  {at}{marker}\n"));
    }
    out
}

fn check(name: &str, build: impl Fn(u64) -> ssp_workloads::Workload, golden: &str) {
    let w = build(SEED);
    let actual = snapshot(&w);
    if std::env::var_os("SSP_BLESS").is_some() {
        let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "scheduler snapshot for {name} changed; if intentional, regenerate with \
         `SSP_BLESS=1 cargo test -p ssp-sched --test schedule_golden`"
    );
}

#[test]
fn mcf_schedule_matches_golden() {
    check("mcf", ssp_workloads::mcf::build, include_str!("golden/mcf.txt"));
}

#[test]
fn em3d_schedule_matches_golden() {
    check("em3d", ssp_workloads::em3d::build, include_str!("golden/em3d.txt"));
}
