//! Property-based tests of the slice scheduler: whatever the loop body
//! shape, the emitted order must be a dependence-respecting permutation
//! with a sane spawn point.

use proptest::prelude::*;
use ssp_ir::{CmpKind, InstRef, Program, ProgramBuilder, Reg};
use ssp_sched::{schedule_basic, schedule_chaining, ScheduleOptions};
use ssp_sim::{MachineConfig, Profile};
use ssp_slicing::{Analyses, RegionDepGraph};

/// A random single-block loop: `n_chain` dependent ops threading one
/// value, `n_indep` independent ops, one induction, loads sprinkled in.
fn loop_program(n_chain: usize, n_indep: usize, with_load: bool) -> (Program, ssp_ir::BlockId) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("gen");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let (ind, p) = (Reg(64), Reg(65));
    f.at(e).movi(ind, 0x1000).br(body);
    {
        let mut c = f.at(body);
        let mut chain = ind;
        for i in 0..n_chain {
            let dst = Reg(70 + i as u16);
            c = if with_load && i == 0 { c.ld(dst, chain, 0) } else { c.add(dst, chain, 1) };
            chain = dst;
        }
        for i in 0..n_indep {
            let dst = Reg(100 + i as u16);
            c = c.movi(dst, i as i64);
        }
        c.add(ind, ind, 64).cmp(CmpKind::Lt, p, ind, 0x200000).br_cond(p, body, exit);
    }
    f.at(exit).halt();
    let main = f.finish();
    (pb.finish_with(main), body)
}

fn graph_of(prog: &Program, body: ssp_ir::BlockId) -> RegionDepGraph {
    let mut an = Analyses::new();
    let fa = an.get(prog, prog.entry);
    RegionDepGraph::build(
        prog,
        prog.entry,
        &[body],
        fa,
        &Profile::default(),
        &MachineConfig::in_order(),
    )
}

fn order_respects_forward_deps(g: &RegionDepGraph, order: &[InstRef]) -> Result<(), String> {
    let pos = |at: InstRef| order.iter().position(|&x| x == at);
    for e in &g.edges {
        if e.carried {
            continue;
        }
        let (Some(pf), Some(pt)) = (pos(g.nodes[e.from]), pos(g.nodes[e.to])) else {
            continue; // node pruned (e.g. prediction DCE)
        };
        if pf >= pt {
            return Err(format!("edge {}->{} violated", g.nodes[e.from], g.nodes[e.to]));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chaining_schedule_is_valid(
        n_chain in 1usize..8,
        n_indep in 0usize..6,
        with_load in any::<bool>(),
    ) {
        let (prog, body) = loop_program(n_chain, n_indep, with_load);
        let g = graph_of(&prog, body);
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let s = schedule_chaining(&g, &prog, &profile, &mc, &ScheduleOptions::default());
        // Order is a subset-permutation of the region (prediction may
        // prune) with no duplicates.
        let mut seen = std::collections::HashSet::new();
        for at in &s.order {
            prop_assert!(seen.insert(*at), "duplicate {at} in order");
            prop_assert!(g.nodes.contains(at));
        }
        prop_assert!(s.spawn_pos <= s.order.len());
        prop_assert!(order_respects_forward_deps(&g, &s.order).is_ok());
        // Critical instructions are all scheduled before the spawn point.
        for c in &s.critical {
            if let Some(p) = s.order.iter().position(|x| x == c) {
                prop_assert!(p < s.spawn_pos, "critical inst {c} after spawn");
            }
        }
        prop_assert!(s.critical_height <= s.slice_height);
    }

    #[test]
    fn basic_schedule_is_complete_permutation(
        n_chain in 1usize..8,
        n_indep in 0usize..6,
    ) {
        let (prog, body) = loop_program(n_chain, n_indep, true);
        let g = graph_of(&prog, body);
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let s = schedule_basic(&g, &prog, &profile, &mc);
        prop_assert_eq!(s.order.len(), g.nodes.len(), "basic keeps every instruction");
        prop_assert_eq!(s.spawn_pos, s.order.len());
        prop_assert!(order_respects_forward_deps(&g, &s.order).is_ok());
    }

    #[test]
    fn rotation_never_increases_carried_edges(
        n_chain in 1usize..8,
        n_indep in 0usize..6,
    ) {
        let (prog, body) = loop_program(n_chain, n_indep, false);
        let g = graph_of(&prog, body);
        let before = g.edges.iter().filter(|e| e.carried).count();
        let (_, rg) = ssp_sched::rotate_loop(&g);
        let after = rg.edges.iter().filter(|e| e.carried).count();
        prop_assert!(after <= before);
        prop_assert_eq!(rg.nodes.len(), g.nodes.len());
    }
}
