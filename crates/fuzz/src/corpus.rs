//! The regression-corpus text format.
//!
//! A corpus file is plain text: one [`CaseSpec`] line per entry, blank
//! lines and `#` comments ignored. Entries are written by the shrinker
//! when the oracle finds a violation and replayed by the tier-1
//! regression test, so every bug the fuzzer ever caught stays caught.

use crate::spec::{CaseSpec, SpecError};
use std::fmt::Write as _;

/// Parse a corpus file's contents. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Vec<CaseSpec>, SpecError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = CaseSpec::parse(line)
            .map_err(|e| SpecError(format!("line {}: {}", lineno + 1, e.0)))?;
        out.push(spec);
    }
    Ok(out)
}

/// Render specs as a corpus file body (one line each, trailing newline).
pub fn format(specs: &[CaseSpec]) -> String {
    let mut out = String::new();
    for s in specs {
        writeln!(out, "{s}").expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn roundtrip_with_comments_and_blanks() {
        let mut rng = TestRng::from_seed(13);
        let specs: Vec<CaseSpec> = (0..5).map(|_| CaseSpec::random(&mut rng)).collect();
        let mut text = String::from("# regression corpus\n\n");
        text.push_str(&format(&specs));
        assert_eq!(parse(&text).unwrap(), specs);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("# fine\nseed=1\nnot a spec\n").unwrap_err();
        assert!(err.0.contains("line 3"), "{err}");
    }
}
