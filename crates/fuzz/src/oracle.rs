//! The differential adaptation oracle.
//!
//! [`run_case`] generates one program from a [`CaseSpec`], adapts it with
//! the post-pass tool, and runs baseline and adapted binaries on *both*
//! machine models ([`MachineConfig::in_order`] and
//! [`MachineConfig::out_of_order`]), asserting the adaptation is
//! semantically transparent:
//!
//! * identical final architectural state — registers the original
//!   program mentions, the memory image, and the trap status;
//! * an identical main-thread committed-instruction stream once
//!   tool-synthesized instructions (fresh tags) are filtered out;
//! * the SSP invariants — speculative threads execute no stores to
//!   program-visible memory, every spawned thread is killed or still in
//!   flight at the end, and no stub is reachable from more than one
//!   static trigger;
//! * static/dynamic agreement — a dynamic invariant violation on a
//!   binary the `ssp-lint` static verifier passed clean is reported as
//!   a `lint-blind-spot` meta-bug in its own right;
//! * engine agreement — every simulation is also replayed on the
//!   stepped (fast-forward-disabled) engine, and any difference in
//!   statistics or architectural snapshot is an `engine-divergence`
//!   violation, so the fuzzer hammers the clock-skip logic with the
//!   same random programs it uses against the adapter.
//!
//! Nothing in this path panics on a bad case: generator, tool, and
//! checker failures all become [`Violation`]s in the returned
//! [`CaseResult`], so a batch run always completes and reports.

use crate::gen;
use crate::spec::CaseSpec;
use ssp_core::PostPassTool;
use ssp_ir::reg::{conv, NUM_REGS};
use ssp_ir::{Op, Program};
use ssp_sim::{
    simulate_snapshot, simulate_snapshot_stepped, ArchSnapshot, MachineConfig, SimResult, TrapKind,
};
use std::collections::HashMap;

/// Oracle knobs.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Cycle cap for every simulation. Generated programs finish far
    /// below this; a baseline that still caps is reported separately
    /// (not as a violation), while an adapted binary that caps when its
    /// baseline halted is an equivalence violation.
    pub max_cycles: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { max_cycles: 2_000_000 }
    }
}

/// One equivalence or invariant failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Stable machine-readable kind (e.g. `reg-mismatch`).
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// How one case ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CaseOutcome {
    /// All checks passed on both machine models.
    Pass,
    /// A baseline run hit the cycle cap, so equivalence could not be
    /// evaluated. Counted separately: not a pass, not a violation.
    BaselineCapped,
    /// At least one check failed.
    Violations(Vec<Violation>),
}

/// The oracle's verdict on one case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseResult {
    /// The case, in its reproducible one-line form.
    pub spec: CaseSpec,
    /// Verdict.
    pub outcome: CaseOutcome,
    /// Slices the tool emitted (0 when adaptation failed early).
    pub slices: usize,
    /// Speculative threads spawned across the adapted runs.
    pub threads_spawned: u64,
}

/// Render one case verdict as a single-line deterministic JSON object —
/// the canonical per-case shape shared by the fuzz harness and the
/// `ssp-serve` daemon (which reconstructs the same line from persisted
/// store entries, so serving a case is byte-identical to running it).
///
/// `kinds` is the deduplicated violation-kind list; empty for `pass`
/// and `baseline-capped` outcomes.
pub fn case_json(
    spec: &str,
    outcome: &str,
    kinds: &[String],
    slices: u64,
    threads_spawned: u64,
) -> String {
    let kinds: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    format!(
        concat!(
            "{{\"spec\": \"{}\", \"outcome\": \"{}\", \"kinds\": [{}], ",
            "\"slices\": {}, \"threads_spawned\": {}}}"
        ),
        spec,
        outcome,
        kinds.join(", "),
        slices,
        threads_spawned,
    )
}

impl CaseResult {
    /// The outcome's stable wire name (`pass` / `baseline-capped` /
    /// `violations`).
    pub fn outcome_name(&self) -> &'static str {
        match self.outcome {
            CaseOutcome::Pass => "pass",
            CaseOutcome::BaselineCapped => "baseline-capped",
            CaseOutcome::Violations(_) => "violations",
        }
    }

    /// Deduplicated violation kinds, in first-seen order (empty unless
    /// the outcome is `violations`).
    pub fn violation_kinds(&self) -> Vec<String> {
        match &self.outcome {
            CaseOutcome::Violations(vs) => {
                let mut kinds: Vec<String> = vs.iter().map(|v| v.kind.to_owned()).collect();
                kinds.dedup();
                kinds
            }
            _ => Vec::new(),
        }
    }

    /// Render via [`case_json`].
    pub fn to_json(&self) -> String {
        case_json(
            &self.spec.to_string(),
            self.outcome_name(),
            &self.violation_kinds(),
            self.slices as u64,
            self.threads_spawned,
        )
    }

    fn failed(spec: &CaseSpec, kind: &'static str, detail: String) -> Self {
        CaseResult {
            spec: spec.clone(),
            outcome: CaseOutcome::Violations(vec![Violation { kind, detail }]),
            slices: 0,
            threads_spawned: 0,
        }
    }
}

/// Registers the program mentions (reads or writes) anywhere, plus the
/// stack pointer the engine initializes. Final-state comparison is
/// restricted to these: stub scratch registers are picked from the
/// never-mentioned set and legitimately differ after adaptation.
pub fn mentioned_regs(prog: &Program) -> Vec<bool> {
    let mut m = vec![false; NUM_REGS];
    m[conv::SP.index()] = true;
    for (_, f) in prog.iter_funcs() {
        for (_, b) in f.iter_blocks() {
            for inst in &b.insts {
                if let Some(d) = inst.op.def() {
                    m[d.index()] = true;
                }
                inst.op.for_each_use(|r| m[r.index()] = true);
            }
        }
    }
    m
}

/// Static SSP invariant: no stub block is the target of more than one
/// `chk.c`. A shared stub would let one hot path fire another's trigger,
/// breaking the one-trigger-per-hot-path discipline.
fn check_single_trigger(adapted: &Program, out: &mut Vec<Violation>) {
    for (fid, f) in adapted.iter_funcs() {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for (_, b) in f.iter_blocks() {
            for inst in &b.insts {
                if let Op::ChkC { stub } = inst.op {
                    *counts.entry(stub.0).or_insert(0) += 1;
                }
            }
        }
        let mut dups: Vec<(u32, u32)> = counts.into_iter().filter(|&(_, c)| c > 1).collect();
        dups.sort_unstable();
        for (stub, c) in dups {
            out.push(Violation {
                kind: "multi-trigger",
                detail: format!("{fid}: stub block b{stub} targeted by {c} chk.c triggers"),
            });
        }
    }
}

/// Compare one baseline/adapted snapshot pair on one machine model.
fn check_model(
    model: &str,
    base: &ArchSnapshot,
    adapted: &ArchSnapshot,
    adapted_res: &SimResult,
    mentioned: &[bool],
    out: &mut Vec<Violation>,
) {
    check_equivalence(model, base, adapted, mentioned, out);
    check_ssp_invariants(model, adapted, adapted_res, out);
}

/// The architectural-equivalence half of [`check_model`]: trap status,
/// tag-filtered commit stream, mentioned registers, memory digest.
/// Meaningless when the baseline hit the cycle cap (the baseline never
/// reached its final state), so capped-baseline callers skip this half.
fn check_equivalence(
    model: &str,
    base: &ArchSnapshot,
    adapted: &ArchSnapshot,
    mentioned: &[bool],
    out: &mut Vec<Violation>,
) {
    if adapted.trap != base.trap {
        let kind =
            if adapted.trap == TrapKind::CycleCap { "timeout-divergence" } else { "trap-mismatch" };
        out.push(Violation {
            kind,
            detail: format!(
                "{model}: baseline ended {} but adapted ended {}",
                base.trap.name(),
                adapted.trap.name()
            ),
        });
    }
    if (adapted.commit_digest, adapted.commit_len) != (base.commit_digest, base.commit_len) {
        out.push(Violation {
            kind: "commit-mismatch",
            detail: format!(
                "{model}: main-thread committed stream diverged \
                 (baseline {} insts digest {:#x}, adapted {} insts digest {:#x})",
                base.commit_len, base.commit_digest, adapted.commit_len, adapted.commit_digest
            ),
        });
    }
    for (i, m) in mentioned.iter().enumerate() {
        if *m && adapted.regs[i] != base.regs[i] {
            out.push(Violation {
                kind: "reg-mismatch",
                detail: format!(
                    "{model}: r{i} = {:#x} baseline vs {:#x} adapted",
                    base.regs[i], adapted.regs[i]
                ),
            });
        }
    }
    if adapted.mem_digest != base.mem_digest {
        out.push(Violation {
            kind: "mem-mismatch",
            detail: format!(
                "{model}: memory digest {:#x} baseline vs {:#x} adapted",
                base.mem_digest, adapted.mem_digest
            ),
        });
    }
}

/// The dynamic SSP-invariant half of [`check_model`]: spec-store
/// freedom and spawn balance. Valid on any run, capped or not.
fn check_ssp_invariants(
    model: &str,
    adapted: &ArchSnapshot,
    adapted_res: &SimResult,
    out: &mut Vec<Violation>,
) {
    if adapted.spec_store_attempts != 0 {
        out.push(Violation {
            kind: "spec-store",
            detail: format!(
                "{model}: speculative threads attempted {} stores",
                adapted.spec_store_attempts
            ),
        });
    }
    if !adapted.spawns_balanced(adapted_res.threads_spawned) {
        out.push(Violation {
            kind: "spawn-leak",
            detail: format!(
                "{model}: {} threads spawned but {} killed + {} live at end",
                adapted_res.threads_spawned, adapted.spec_kills, adapted.spec_live_at_end
            ),
        });
    }
}

/// Replay one simulation on the stepped (fast-forward-disabled) engine
/// and report any difference from the fast-forward run's statistics or
/// architectural snapshot as an `engine-divergence` violation.
fn check_engines(
    model: &str,
    binary: &str,
    prog: &Program,
    cfg: &MachineConfig,
    bound: u32,
    fast: (&SimResult, &ArchSnapshot),
    out: &mut Vec<Violation>,
) {
    let (res, snap) = simulate_snapshot_stepped(prog, cfg, bound);
    if *fast.0 != res || *fast.1 != snap {
        out.push(Violation {
            kind: "engine-divergence",
            detail: format!(
                "{model}/{binary}: fast-forward engine diverged from stepped \
                 (cycles {} vs {}, trap {} vs {})",
                fast.0.total_cycles,
                res.total_cycles,
                fast.1.trap.name(),
                snap.trap.name()
            ),
        });
    }
}

/// Baseline snapshots of one *original* program on both machine models,
/// for use with [`check_adapted`]. Computed once per program and reused
/// across every candidate adaptation of it — the auto-tuner gates
/// dozens of candidate plans per workload against the same baselines.
#[derive(Clone, PartialEq, Debug)]
pub struct BaselineSnapshots {
    /// Tag bound separating original from tool-synthesized instructions
    /// (`prog.next_tag` of the original binary).
    pub bound: u32,
    /// Mentioned-register mask of the original program.
    pub mentioned: Vec<bool>,
    /// Baseline result + snapshot, in-order model.
    pub io: (SimResult, ArchSnapshot),
    /// Baseline result + snapshot, out-of-order model.
    pub ooo: (SimResult, ArchSnapshot),
}

/// Simulate `prog` unadapted on both models and capture everything
/// [`check_adapted`] needs.
pub fn baseline_snapshots(
    prog: &Program,
    io: &MachineConfig,
    ooo: &MachineConfig,
) -> BaselineSnapshots {
    let bound = prog.next_tag;
    BaselineSnapshots {
        bound,
        mentioned: mentioned_regs(prog),
        io: simulate_snapshot(prog, io, bound),
        ooo: simulate_snapshot(prog, ooo, bound),
    }
}

/// Run the oracle's invariant and equivalence checks on one
/// already-adapted binary — the same checks [`run_case`] applies to its
/// generated programs, exposed for harnesses (the `ssp-tune` optimizer)
/// that adapt real workloads with non-default options and must prove
/// every candidate plan transparent before trusting its cycle count:
///
/// * static spec-store freedom (`verify_speculative`) and the
///   one-trigger-per-stub discipline;
/// * on each model, the dynamic SSP invariants (no speculative stores,
///   spawn balance) — always — and full architectural equivalence
///   (trap, commit stream, registers, memory) whenever that model's
///   baseline halted below the cycle cap (a capped baseline never
///   reached its final state, so equivalence is unevaluable there, as
///   in [`run_case`]'s `baseline-capped` verdict).
///
/// Returns the violations plus the adapted binary's results on both
/// models, so callers steering on cycle counts pay no extra simulation.
pub fn check_adapted(
    adapted: &Program,
    base: &BaselineSnapshots,
    io: &MachineConfig,
    ooo: &MachineConfig,
) -> (Vec<Violation>, SimResult, SimResult) {
    let mut violations = Vec::new();
    if let Err(e) = ssp_ir::verify::verify_speculative(adapted) {
        violations.push(Violation { kind: "store-in-slice", detail: e.to_string() });
    }
    check_single_trigger(adapted, &mut violations);
    let (a_io_res, a_io) = simulate_snapshot(adapted, io, base.bound);
    let (a_ooo_res, a_ooo) = simulate_snapshot(adapted, ooo, base.bound);
    for (model, b_snap, (a_res, a_snap)) in [
        ("in-order", &base.io.1, (&a_io_res, &a_io)),
        ("out-of-order", &base.ooo.1, (&a_ooo_res, &a_ooo)),
    ] {
        if b_snap.trap != TrapKind::CycleCap {
            check_equivalence(model, b_snap, a_snap, &base.mentioned, &mut violations);
        }
        check_ssp_invariants(model, a_snap, a_res, &mut violations);
    }
    (violations, a_io_res, a_ooo_res)
}

/// Run the full differential check for one case.
pub fn run_case(spec: &CaseSpec, ocfg: &OracleConfig) -> CaseResult {
    let prog = match gen::generate(spec) {
        Ok(p) => p,
        Err(e) => return CaseResult::failed(spec, "generate-verify", e.to_string()),
    };
    let bound = prog.next_tag;
    let mut io = MachineConfig::in_order();
    io.max_cycles = ocfg.max_cycles;
    let mut ooo = MachineConfig::out_of_order();
    ooo.max_cycles = ocfg.max_cycles;

    let (b_io_res, base_io) = simulate_snapshot(&prog, &io, bound);
    let (b_ooo_res, base_ooo) = simulate_snapshot(&prog, &ooo, bound);

    // Engine agreement is checked even on capped baselines — a capped
    // run is exactly where a fast-forward jump could overshoot the cap.
    let mut violations = Vec::new();
    check_engines(
        "in-order",
        "baseline",
        &prog,
        &io,
        bound,
        (&b_io_res, &base_io),
        &mut violations,
    );
    check_engines(
        "out-of-order",
        "baseline",
        &prog,
        &ooo,
        bound,
        (&b_ooo_res, &base_ooo),
        &mut violations,
    );
    if !violations.is_empty() {
        return CaseResult {
            spec: spec.clone(),
            outcome: CaseOutcome::Violations(violations),
            slices: 0,
            threads_spawned: 0,
        };
    }
    if base_io.trap == TrapKind::CycleCap || base_ooo.trap == TrapKind::CycleCap {
        return CaseResult {
            spec: spec.clone(),
            outcome: CaseOutcome::BaselineCapped,
            slices: 0,
            threads_spawned: 0,
        };
    }

    // Adapt once against the in-order profile (as the paper does) and
    // check the same binary on both models.
    let adapted = match PostPassTool::new(io.clone()).run(&prog) {
        Ok(a) => a,
        Err(e) => return CaseResult::failed(spec, "adapt-error", e.to_string()),
    };

    if let Err(e) = ssp_ir::verify::verify_speculative(&adapted.program) {
        violations.push(Violation { kind: "store-in-slice", detail: e.to_string() });
    }
    check_single_trigger(&adapted.program, &mut violations);

    let mentioned = mentioned_regs(&prog);
    let (a_io_res, a_io) = simulate_snapshot(&adapted.program, &io, bound);
    let (a_ooo_res, a_ooo) = simulate_snapshot(&adapted.program, &ooo, bound);
    check_engines(
        "in-order",
        "adapted",
        &adapted.program,
        &io,
        bound,
        (&a_io_res, &a_io),
        &mut violations,
    );
    check_engines(
        "out-of-order",
        "adapted",
        &adapted.program,
        &ooo,
        bound,
        (&a_ooo_res, &a_ooo),
        &mut violations,
    );
    check_model("in-order", &base_io, &a_io, &a_io_res, &mentioned, &mut violations);
    check_model("out-of-order", &base_ooo, &a_ooo, &a_ooo_res, &mentioned, &mut violations);

    // Cross-check static vs dynamic verdicts: every invariant the
    // `ssp-lint` static verifier claims to prove also has a dynamic
    // detector above. A dynamic violation of one of those on a binary
    // the linter passed means a linter blind spot — itself a reported
    // meta-bug (the reverse direction is covered by the adapt gate:
    // a dirty lint never reaches simulation).
    const LINTED_KINDS: [&str; 4] = ["store-in-slice", "multi-trigger", "spec-store", "spawn-leak"];
    if violations.iter().any(|v| LINTED_KINDS.contains(&v.kind))
        && ssp_core::lint_binary(&prog, &adapted).is_clean()
    {
        violations.push(Violation {
            kind: "lint-blind-spot",
            detail: "dynamic SSP invariant violation on a binary the static linter passed clean"
                .to_owned(),
        });
    }

    CaseResult {
        spec: spec.clone(),
        outcome: if violations.is_empty() {
            CaseOutcome::Pass
        } else {
            CaseOutcome::Violations(violations)
        },
        slices: adapted.report.slice_count(),
        threads_spawned: a_io_res.threads_spawned + a_ooo_res.threads_spawned,
    }
}

/// Deterministic aggregate over a batch of [`CaseResult`]s, in input
/// order. Rendering is plain manual JSON so the summary is byte-stable
/// across worker counts and runs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Summary {
    /// Total cases evaluated.
    pub cases: usize,
    /// Cases with every check green.
    pub passed: usize,
    /// Cases whose baseline hit the cycle cap (equivalence skipped).
    pub baseline_capped: usize,
    /// Cases with at least one violation.
    pub violations: usize,
    /// Slices emitted across all cases.
    pub slices_emitted: u64,
    /// Speculative threads spawned across all adapted runs.
    pub threads_spawned: u64,
    /// One line per violating case: the spec plus its violation kinds.
    pub failures: Vec<(String, Vec<String>)>,
}

/// Fold a batch (in input order) into a [`Summary`].
pub fn summarize<'a>(results: impl IntoIterator<Item = &'a CaseResult>) -> Summary {
    let mut s = Summary::default();
    for r in results {
        s.cases += 1;
        s.slices_emitted += r.slices as u64;
        s.threads_spawned += r.threads_spawned;
        match &r.outcome {
            CaseOutcome::Pass => s.passed += 1,
            CaseOutcome::BaselineCapped => s.baseline_capped += 1,
            CaseOutcome::Violations(vs) => {
                s.violations += 1;
                let mut kinds: Vec<String> = vs.iter().map(|v| v.kind.to_owned()).collect();
                kinds.dedup();
                s.failures.push((r.spec.to_string(), kinds));
            }
        }
    }
    s
}

impl Summary {
    /// Render as deterministic JSON (stable field order, no timestamps,
    /// no float formatting) so batch output is byte-comparable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cases\": {},\n", self.cases));
        out.push_str(&format!("  \"passed\": {},\n", self.passed));
        out.push_str(&format!("  \"baseline_capped\": {},\n", self.baseline_capped));
        out.push_str(&format!("  \"violations\": {},\n", self.violations));
        out.push_str(&format!("  \"slices_emitted\": {},\n", self.slices_emitted));
        out.push_str(&format!("  \"threads_spawned\": {},\n", self.threads_spawned));
        out.push_str("  \"failures\": [");
        for (i, (spec, kinds)) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"spec\": \"");
            out.push_str(spec);
            out.push_str("\", \"kinds\": [");
            for (j, k) in kinds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(k);
                out.push('"');
            }
            out.push_str("]}");
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn a_plain_chase_case_passes() {
        let spec = CaseSpec::parse("seed=1 chase=48 loads=2").unwrap();
        let r = run_case(&spec, &OracleConfig::default());
        assert_eq!(r.outcome, CaseOutcome::Pass, "{:?}", r.outcome);
    }

    #[test]
    fn decorated_cases_pass_too() {
        let spec =
            CaseSpec::parse("seed=3 chase=32 loads=3 diamond=1 call=1 stores=1 arith=3").unwrap();
        let r = run_case(&spec, &OracleConfig::default());
        assert_eq!(r.outcome, CaseOutcome::Pass, "{:?}", r.outcome);
    }

    #[test]
    fn summary_json_is_deterministic_and_counts_add_up() {
        let mut rng = TestRng::from_seed(4);
        let specs: Vec<CaseSpec> = (0..6)
            .map(|_| {
                let mut s = CaseSpec::random(&mut rng);
                s.chase = s.chase.min(24);
                s
            })
            .collect();
        let cfg = OracleConfig::default();
        let results: Vec<CaseResult> = specs.iter().map(|s| run_case(s, &cfg)).collect();
        let a = summarize(&results);
        let b = summarize(&results);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.cases, 6);
        assert_eq!(a.passed + a.baseline_capped + a.violations, a.cases);
    }

    #[test]
    fn mentioned_regs_are_a_strict_subset() {
        let spec = CaseSpec::parse("seed=8 chase=8 loads=1").unwrap();
        let prog = gen::generate(&spec).unwrap();
        let m = mentioned_regs(&prog);
        let count = m.iter().filter(|&&x| x).count();
        assert!(count > 4, "loop state is mentioned");
        assert!(count < NUM_REGS / 2, "plenty of scratch room remains");
    }
}
