//! Seeded random program generator.
//!
//! [`build`] turns a [`CaseSpec`] into a complete [`Program`]: a
//! pointer-chasing loop over a pseudo-randomly scattered heap — the
//! shape SSP targets — optionally decorated with a branch diamond, a
//! helper call, main-thread stores, and extra arithmetic. Every program
//! is terminating by construction (the loop induction variable strictly
//! increases toward a fixed bound) and free of wild control transfers,
//! so differential runs always end in a clean trap well under the
//! oracle's cycle cap.
//!
//! [`generate`] is the verified entry point the oracle uses: it builds
//! the program and passes it through [`ssp_ir::verify`] before handing
//! it out.

use crate::spec::CaseSpec;
use proptest::test_runner::TestRng;
use ssp_ir::reg::conv;
use ssp_ir::verify::VerifyError;
use ssp_ir::{AluKind, CmpKind, Operand, Program, ProgramBuilder, Reg};

/// Base of the arc (first-level pointer) table.
pub const ARC_BASE: u64 = 0x0100_0000;
/// Base of the first node region (second-level pointers).
pub const NODE_BASE: u64 = 0x0800_0000;
/// Base of the second node region (leaf payloads).
pub const NODE2_BASE: u64 = 0x0C00_0000;
/// Base of the output region main-thread stores write.
pub const OUT_BASE: u64 = 0x2000_0000;

// Loop state lives in callee-saved registers (r64..) so values stay
// valid across the optional helper call under the modeled convention.
const ARC: Reg = Reg(64);
const END: Reg = Reg(65);
const T: Reg = Reg(66);
const U: Reg = Reg(67);
const V: Reg = Reg(68);
const W: Reg = Reg(69);
const SUM: Reg = Reg(70);
const OUTP: Reg = Reg(71);
const P: Reg = Reg(72);
const P2: Reg = Reg(73);
// Helper-internal temporary: scratch, clobbered by the call anyway.
const HX: Reg = Reg(33);

/// Build the program described by `spec`. Deterministic in the spec.
pub fn build(spec: &CaseSpec) -> Program {
    let mut rng = TestRng::from_seed(spec.seed);
    let n = spec.chase.max(crate::spec::MIN_CHASE);
    let mut pb = ProgramBuilder::new();

    // Scattered heap: arcs -> nodes -> leaf nodes, each level a random
    // permutation-ish scatter so consecutive iterations miss.
    for i in 0..n {
        pb.data_word(ARC_BASE + 64 * i, NODE_BASE + 64 * rng.below(n));
    }
    for j in 0..n {
        pb.data_word(NODE_BASE + 64 * j, NODE2_BASE + 64 * rng.below(n));
    }
    for j in 0..n {
        pb.data_word(NODE2_BASE + 64 * j, 1 + rng.below(1 << 20));
    }

    // Optional helper: convention-correct (argument in ARG0, result in
    // RV, internals in scratch registers). Reloads the arc slot and
    // biases the value, giving the slicer an interprocedural chain.
    let helper_bias = 1 + rng.below(64) as i64;
    let helper = spec.call.then(|| {
        let mut h = pb.function("helper");
        let he = h.entry_block();
        h.at(he).ld(HX, conv::ARG0, 0).add(conv::RV, HX, helper_bias).ret();
        pb.install(h.finish())
    });

    let mut f = pb.function("main");
    let entry = f.entry_block();
    let body = f.new_block();
    let (dl, dr, cont) = if spec.diamond {
        (Some(f.new_block()), Some(f.new_block()), Some(f.new_block()))
    } else {
        (None, None, None)
    };
    let exit = f.new_block();

    let mut c = f.at(entry).movi(ARC, ARC_BASE as i64).movi(END, (ARC_BASE + 64 * n) as i64);
    c = c.movi(SUM, rng.below(1 << 16) as i64);
    if spec.stores {
        c = c.movi(OUTP, OUT_BASE as i64);
    }
    c.br(body);

    // Loop body: t = arc; chase `loads` levels; accumulate.
    let mut c = f.at(body).mov(T, ARC).ld(U, T, 0);
    let mut last = U;
    if spec.loads >= 2 {
        c = c.ld(V, last, 0);
        last = V;
    }
    if spec.loads >= 3 {
        c = c.ld(W, last, 0);
        last = W;
    }
    c = c.add(SUM, SUM, Operand::Reg(last));
    for _ in 0..spec.arith {
        c = match rng.below(4) {
            0 => c.add(SUM, SUM, 1 + rng.below(256) as i64),
            1 => c.sub(SUM, SUM, Operand::Reg(last)),
            2 => c.mul(SUM, SUM, 3 + rng.below(13) as i64),
            _ => c.shl(SUM, SUM, 1 + rng.below(3) as i64),
        };
    }

    // Data-dependent diamond: both arms rejoin, so termination is
    // unaffected; the predicate depends on the chased value, exercising
    // the branch predictors differently baseline-vs-adapted.
    if let (Some(dl), Some(dr), Some(cont)) = (dl, dr, cont) {
        let pivot = (NODE2_BASE + 64 * (n / 2)) as i64;
        c.cmp(CmpKind::Lt, P2, last, pivot).br_cond(P2, dl, dr);
        let (ka, kb) = (1 + rng.below(32) as i64, 1 + rng.below(32) as i64);
        f.at(dl).add(SUM, SUM, ka).br(cont);
        f.at(dr).alu(AluKind::Sub, SUM, SUM, Operand::Imm(kb)).br(cont);
        c = f.at(cont);
    }

    if let Some(h) = helper {
        c = c.mov(conv::ARG0, T).call(h, 1).add(SUM, SUM, Operand::Reg(conv::RV));
    }
    if spec.stores {
        c = c.st(SUM, OUTP, 0).add(OUTP, OUTP, 8);
    }
    c.add(ARC, T, 64).cmp(CmpKind::Lt, P, ARC, Operand::Reg(END)).br_cond(P, body, exit);

    f.at(exit).st(SUM, conv::ZERO, (OUT_BASE + 8 * (n + 1)) as i64).halt();
    let main = f.finish();
    pb.finish_with(main)
}

/// [`build`], then [`ssp_ir::verify::verify`]: the oracle's entry point.
/// A verifier error here is a generator bug, reported (not panicked) so
/// a fuzz batch can flag the case and keep running.
pub fn generate(spec: &CaseSpec) -> Result<Program, VerifyError> {
    let prog = build(spec);
    ssp_ir::verify::verify(&prog)?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CaseSpec, MAX_CHASE, MIN_CHASE};

    #[test]
    fn generated_programs_verify_across_knob_space() {
        let mut rng = TestRng::from_seed(2002);
        for _ in 0..64 {
            let spec = CaseSpec::random(&mut rng);
            generate(&spec).unwrap_or_else(|e| panic!("{spec} fails verification: {e}"));
        }
    }

    #[test]
    fn build_is_deterministic_in_the_spec() {
        let spec =
            CaseSpec::parse("seed=99 chase=32 loads=3 diamond=1 call=1 stores=1 arith=4").unwrap();
        assert_eq!(build(&spec), build(&spec));
    }

    #[test]
    fn knobs_change_the_program() {
        let a = CaseSpec::parse("seed=5 chase=16 loads=1").unwrap();
        let mut b = a.clone();
        b.loads = 2;
        assert_ne!(build(&a), build(&b));
    }

    #[test]
    fn every_generated_program_terminates_quickly() {
        use ssp_sim::{simulate, MachineConfig, TrapKind};
        let mut rng = TestRng::from_seed(7);
        for _ in 0..8 {
            let mut spec = CaseSpec::random(&mut rng);
            spec.chase = spec.chase.clamp(MIN_CHASE, MAX_CHASE.min(48));
            let prog = generate(&spec).unwrap();
            let mut cfg = MachineConfig::in_order();
            cfg.max_cycles = 2_000_000;
            let r = simulate(&prog, &cfg);
            assert!(r.halted, "{spec} did not halt in {} cycles", cfg.max_cycles);
            let (_, snap) = ssp_sim::simulate_snapshot(&prog, &cfg, prog.next_tag);
            assert_eq!(snap.trap, TrapKind::Halted);
        }
    }
}
