//! Differential adaptation oracle for the SSP post-pass tool.
//!
//! The tool's core promise (§3.5) is that adaptation is *semantically
//! transparent*: the SSP-enhanced binary computes exactly what the
//! original computed, on either machine model — speculative threads only
//! warm the caches. This crate turns that promise into an executable
//! oracle:
//!
//! 1. [`spec`] describes a fuzz case as a seed plus scalar shape knobs —
//!    a one-line, human-editable reproducer;
//! 2. [`gen`] deterministically expands a spec into a verified IR
//!    program (random pointer-chasing CFGs with loops, calls,
//!    predicated-branch diamonds, and main-thread stores);
//! 3. [`oracle`] adapts the program and runs baseline vs adapted on both
//!    the in-order and out-of-order models, comparing final
//!    architectural state, main-thread commit streams (tag-filtered to
//!    exclude tool-synthesized code), and the SSP invariants;
//! 4. [`shrink`] minimizes any violating spec over its knobs;
//! 5. [`corpus`] reads and writes the regression-corpus text format the
//!    tier-1 tests replay.
//!
//! The `fuzz_oracle` binary in `ssp-bench` fans [`oracle::run_case`]
//! across worker threads deterministically; see the repository README's
//! "Correctness" section for the command-line workflow.

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod spec;

pub use oracle::{run_case, CaseOutcome, CaseResult, OracleConfig, Summary, Violation};
pub use spec::{CaseSpec, SpecError};
