//! Case minimization.
//!
//! A violating [`CaseSpec`] is shrunk over its scalar knobs (never its
//! seed, so the reproducer stays tied to one RNG stream): table length
//! and instruction-count knobs halve toward their minima, boolean
//! features switch off. The driver is the generic greedy fixed-point
//! from [`proptest::shrink`]; each probe re-runs the full differential
//! oracle, so whatever survives is the smallest spec (under this
//! schedule) that still violates.

use crate::oracle::{run_case, CaseOutcome, OracleConfig};
use crate::spec::{CaseSpec, MIN_CHASE};
use proptest::shrink::{minimize, scalar_candidates};

/// Simpler variants of `spec`, most aggressive first. The seed is left
/// untouched.
pub fn candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    for b in [
        spec.call.then(|| CaseSpec { call: false, ..spec.clone() }),
        spec.stores.then(|| CaseSpec { stores: false, ..spec.clone() }),
        spec.diamond.then(|| CaseSpec { diamond: false, ..spec.clone() }),
    ]
    .into_iter()
    .flatten()
    {
        out.push(b);
    }
    for c in scalar_candidates(spec.chase, MIN_CHASE) {
        out.push(CaseSpec { chase: c, ..spec.clone() });
    }
    for c in scalar_candidates(u64::from(spec.arith), 0) {
        out.push(CaseSpec { arith: c as u8, ..spec.clone() });
    }
    for c in scalar_candidates(u64::from(spec.loads), 1) {
        out.push(CaseSpec { loads: c as u8, ..spec.clone() });
    }
    out
}

/// Shrink `spec` while `fails` holds. Returns the minimized spec and how
/// many probes were spent.
pub fn shrink_with<F>(spec: &CaseSpec, fails: F) -> (CaseSpec, u64)
where
    F: FnMut(&CaseSpec) -> bool,
{
    minimize(spec.clone(), candidates, fails)
}

/// Shrink a spec that violates the differential oracle: the predicate is
/// "[`run_case`] still reports at least one violation".
pub fn shrink_violation(spec: &CaseSpec, ocfg: &OracleConfig) -> (CaseSpec, u64) {
    shrink_with(spec, |s| matches!(run_case(s, ocfg).outcome, CaseOutcome::Violations(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_only_simplify() {
        let spec =
            CaseSpec::parse("seed=1 chase=64 loads=3 diamond=1 call=1 stores=1 arith=4").unwrap();
        for c in candidates(&spec) {
            assert_eq!(c.seed, spec.seed, "seed is never shrunk");
            assert!(
                c.chase <= spec.chase
                    && c.loads <= spec.loads
                    && c.arith <= spec.arith
                    && (!c.diamond || spec.diamond)
                    && (!c.call || spec.call)
                    && (!c.stores || spec.stores),
                "candidate {c} is not simpler than {spec}"
            );
            assert_ne!(c, spec);
        }
    }

    #[test]
    fn shrinking_a_synthetic_failure_reaches_the_floor() {
        // Synthetic predicate: "fails" whenever the chase table is >= 20
        // and the diamond is on. Shrinking must turn everything else off
        // and drive chase down to exactly 20.
        let spec =
            CaseSpec::parse("seed=9 chase=150 loads=3 diamond=1 call=1 stores=1 arith=4").unwrap();
        let (min, probes) = shrink_with(&spec, |s| s.chase >= 20 && s.diamond);
        assert_eq!(min.chase, 20);
        assert!(min.diamond);
        assert!(!min.call && !min.stores);
        assert_eq!(min.loads, 1);
        assert_eq!(min.arith, 0);
        assert!(probes < 500, "shrinking stays cheap: {probes} probes");
    }
}
