//! Case specifications: the scalar knobs a fuzz case is derived from.
//!
//! A case is never stored as IR. It is stored as a [`CaseSpec`] — a seed
//! plus size/shape knobs — and the generator rebuilds the identical
//! program from it on demand. That makes every corpus entry a one-line,
//! human-editable reproducer, and lets the shrinker work on a handful of
//! scalars instead of on program text.

use proptest::test_runner::TestRng;
use std::fmt;

/// Smallest pointer-chase table the generator accepts (below this the
/// loop is too short to profile any load as delinquent, and shrinking
/// stops being informative).
pub const MIN_CHASE: u64 = 4;

/// Largest pointer-chase table [`CaseSpec::random`] will pick. (Parsing
/// accepts larger values; this only bounds generation so a fuzz batch's
/// runtime stays predictable.)
pub const MAX_CHASE: u64 = 192;

/// The knobs one fuzz case is generated from. See [`crate::gen::build`]
/// for what each knob turns on in the generated program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseSpec {
    /// Seed for the case's private RNG stream (data-image scatter,
    /// constants, ALU kinds).
    pub seed: u64,
    /// Pointer-chase table length = loop trip count.
    pub chase: u64,
    /// Pointer-chase depth per iteration, 1..=3 dependent loads.
    pub loads: u8,
    /// Include a data-dependent branch diamond in the loop body.
    pub diamond: bool,
    /// Include a helper-function call (convention-correct: args in
    /// `ARG0`, result in `RV`) in the loop body.
    pub call: bool,
    /// Include stores to an output region from the main thread.
    pub stores: bool,
    /// Number of extra ALU instructions mixed into the accumulator.
    pub arith: u8,
}

impl CaseSpec {
    /// Draw a random spec from `rng`. The embedded `seed` is drawn from
    /// the same stream, so a batch driver only needs one master RNG.
    pub fn random(rng: &mut TestRng) -> Self {
        CaseSpec {
            seed: rng.next_u64(),
            chase: MIN_CHASE + rng.below(MAX_CHASE - MIN_CHASE + 1),
            loads: 1 + rng.below(3) as u8,
            diamond: rng.below(2) == 1,
            call: rng.below(2) == 1,
            stores: rng.below(2) == 1,
            arith: rng.below(5) as u8,
        }
    }

    /// Parse the one-line `key=value` form produced by `Display`.
    /// Unknown keys are rejected; missing keys take the smallest value
    /// (so hand-written corpus lines can stay terse).
    pub fn parse(line: &str) -> Result<Self, SpecError> {
        let mut spec = CaseSpec {
            seed: 0,
            chase: MIN_CHASE,
            loads: 1,
            diamond: false,
            call: false,
            stores: false,
            arith: 0,
        };
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| SpecError(format!("field {field:?} is not key=value")))?;
            let num = |v: &str| {
                v.parse::<u64>().map_err(|_| SpecError(format!("bad value for {key}: {v:?}")))
            };
            match key {
                "seed" => spec.seed = num(value)?,
                "chase" => spec.chase = num(value)?.max(MIN_CHASE),
                "loads" => spec.loads = (num(value)?.clamp(1, 3)) as u8,
                "diamond" => spec.diamond = num(value)? != 0,
                "call" => spec.call = num(value)? != 0,
                "stores" => spec.stores = num(value)? != 0,
                "arith" => spec.arith = (num(value)?.min(8)) as u8,
                _ => return Err(SpecError(format!("unknown key {key:?}"))),
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} chase={} loads={} diamond={} call={} stores={} arith={}",
            self.seed,
            self.chase,
            self.loads,
            u8::from(self.diamond),
            u8::from(self.call),
            u8::from(self.stores),
            self.arith,
        )
    }
}

/// A malformed spec line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad case spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let s = CaseSpec::random(&mut rng);
            let back = CaseSpec::parse(&s.to_string()).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn parse_applies_floors_and_rejects_junk() {
        let s = CaseSpec::parse("seed=3 chase=1 loads=9").unwrap();
        assert_eq!(s.chase, MIN_CHASE);
        assert_eq!(s.loads, 3);
        assert!(!s.diamond && !s.call && !s.stores && s.arith == 0);
        assert!(CaseSpec::parse("seed").is_err());
        assert!(CaseSpec::parse("wat=1").is_err());
        assert!(CaseSpec::parse("seed=xyz").is_err());
    }

    #[test]
    fn random_respects_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = CaseSpec::random(&mut rng);
            assert!((MIN_CHASE..=MAX_CHASE).contains(&s.chase));
            assert!((1..=3).contains(&s.loads));
            assert!(s.arith <= 4);
        }
    }
}
