//! Microbenchmark tests pinning the timing model's resource constraints:
//! issue width, functional-unit limits, dependence serialization, branch
//! costs, and SMT bandwidth sharing.

use ssp_ir::{CmpKind, Operand, Program, ProgramBuilder, Reg};
use ssp_sim::{simulate, MachineConfig, SimResult};

/// A loop repeating `body_gen` `iters` times; returns the timed run.
fn run_loop(
    iters: i64,
    body_gen: impl for<'a> Fn(ssp_ir::BlockCursor<'a>) -> ssp_ir::BlockCursor<'a>,
    cfg: &MachineConfig,
) -> SimResult {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("micro");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (i, p) = (Reg(60), Reg(61));
    f.at(e).movi(i, 0).br(body);
    let c = body_gen(f.at(body));
    c.add(i, i, 1).cmp(CmpKind::Lt, p, i, iters).br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    let prog: Program = pb.finish_with(main);
    simulate(&prog, cfg)
}

fn cycles_per_iter(r: &SimResult, iters: i64) -> f64 {
    r.cycles as f64 / iters as f64
}

#[test]
fn independent_alu_ops_reach_issue_width() {
    // 10 independent movis + loop control: 13 insts/iter at 6-wide issue
    // with the issue group ending at the taken branch: >= 3 cycles/iter,
    // and not much more.
    let cfg = MachineConfig::in_order();
    let r = run_loop(
        2000,
        |c| {
            let mut c = c;
            for j in 0..10u16 {
                c = c.movi(Reg(80 + j), j as i64);
            }
            c
        },
        &cfg,
    );
    let cpi = cycles_per_iter(&r, 2000);
    assert!(cpi >= 2.9, "13 instructions cannot fit in 2 cycles: {cpi}");
    assert!(cpi <= 4.5, "issue width must be exploited: {cpi}");
}

#[test]
fn dependent_chain_serializes_in_order() {
    // A 10-deep add chain: in-order pays the full dependence height.
    let cfg = MachineConfig::in_order();
    let r = run_loop(
        2000,
        |c| {
            let mut c = c.movi(Reg(80), 1);
            for j in 1..10u16 {
                c = c.add(Reg(80 + j), Reg(80 + j - 1), 1);
            }
            c
        },
        &cfg,
    );
    let cpi = cycles_per_iter(&r, 2000);
    assert!(cpi >= 9.5, "10-deep chain costs ~10 cycles: {cpi}");
}

#[test]
fn ooo_overlaps_independent_iterations() {
    // The same dependent chain, but iterations are independent: OOO
    // overlaps them, in-order cannot.
    fn gen(c: ssp_ir::BlockCursor<'_>) -> ssp_ir::BlockCursor<'_> {
        let mut c = c.movi(Reg(80), 1);
        for j in 1..10u16 {
            c = c.add(Reg(80 + j), Reg(80 + j - 1), 1);
        }
        c
    }
    let io = run_loop(2000, gen, &MachineConfig::in_order());
    let ooo = run_loop(2000, gen, &MachineConfig::out_of_order());
    assert!(
        ooo.cycles * 2 < io.cycles,
        "OOO must overlap iterations: io={} ooo={}",
        io.cycles,
        ooo.cycles
    );
}

#[test]
fn fp_units_limit_fp_throughput() {
    // 8 independent FP adds per iteration with 2 FP units: >= 4 cycles of
    // FP issue alone.
    let cfg = MachineConfig::in_order();
    let r = run_loop(
        2000,
        |c| {
            let mut c = c;
            for j in 0..8u16 {
                c = c.falu(ssp_ir::FAluKind::Add, Reg(80 + j), Reg(70), Reg(71));
            }
            c
        },
        &cfg,
    );
    let cpi = cycles_per_iter(&r, 2000);
    assert!(cpi >= 4.0, "8 FP ops / 2 units: {cpi}");
}

#[test]
fn mem_ports_limit_load_throughput() {
    // 6 independent L1-resident loads per iteration with 2 memory ports:
    // at least 3 cycles of memory issue per iteration.
    let mut pb = ProgramBuilder::new();
    for j in 0..6u64 {
        pb.data_word(0x1000 + 8 * j, j);
    }
    let mut f = pb.function("micro");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (i, p, base) = (Reg(60), Reg(61), Reg(62));
    f.at(e).movi(i, 0).movi(base, 0x1000).br(body);
    let mut c = f.at(body);
    for j in 0..6u16 {
        c = c.ld(Reg(80 + j), base, (8 * j) as i64);
    }
    c.add(i, i, 1).cmp(CmpKind::Lt, p, i, 2000).br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    let prog = pb.finish_with(main);
    let r = simulate(&prog, &MachineConfig::in_order());
    let cpi = cycles_per_iter(&r, 2000);
    assert!(cpi >= 3.0, "6 loads / 2 ports: {cpi}");
}

#[test]
fn mispredicted_branches_cost_the_penalty() {
    // A data-dependent unpredictable branch (alternating with period 3,
    // which GSHARE tracks imperfectly through the short loop history) vs
    // a always-taken loop: the unpredictable version pays more.
    let cfg = MachineConfig::in_order();
    let predictable = run_loop(4000, |c| c.movi(Reg(80), 1), &cfg);
    // Pseudo-random direction from a multiplicative sequence.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("micro");
    let (e, body, t_blk, j_blk, exit) =
        (f.entry_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    let (i, p, x, b) = (Reg(60), Reg(61), Reg(62), Reg(63));
    f.at(e).movi(i, 0).movi(x, 12345).br(body);
    f.at(body)
        .mul(x, x, 1103515245)
        .add(x, x, 12345)
        .alu(ssp_ir::AluKind::Shr, b, x, Operand::Imm(16))
        .alu(ssp_ir::AluKind::And, b, b, Operand::Imm(1))
        .cmp(CmpKind::Eq, p, b, 1)
        .br_cond(p, t_blk, j_blk);
    f.at(t_blk).movi(Reg(80), 1).br(j_blk);
    f.at(j_blk).add(i, i, 1).cmp(CmpKind::Lt, p, i, 4000).br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    let prog = pb.finish_with(main);
    let random = simulate(&prog, &cfg);
    // The random-branch loop must show a large mispredict count and pay
    // for it.
    assert!(
        random.mispredicts > 1000,
        "a pseudo-random branch defeats GSHARE: {} mispredicts",
        random.mispredicts
    );
    let cpi_pred = cycles_per_iter(&predictable, 4000);
    let cpi_rand = cycles_per_iter(&random, 4000);
    assert!(cpi_rand > cpi_pred + 2.0, "mispredictions must cost cycles: {cpi_pred} vs {cpi_rand}");
}

#[test]
fn smt_thread_shares_bandwidth_without_slowing_stalled_main() {
    // Main thread blocked on memory misses; a speculative spinner uses
    // the idle bandwidth. Main's cycles must be ~unchanged vs running
    // alone (the spinner never displaces a ready main instruction).
    let build = |with_spinner: bool| {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
        let spin = f.new_block();
        let (a, x, i, p, slot) = (Reg(60), Reg(61), Reg(62), Reg(63), Reg(20));
        let mut c = f.at(e).movi(a, 0x200_0000).movi(i, 0);
        if with_spinner {
            c = c.lib_alloc(slot).spawn(spin, slot);
        }
        c.br(body);
        f.at(body)
            .ld(x, a, 0)
            .add(Reg(64), x, 1) // stall on use
            .add(a, a, 64)
            .add(i, i, 1)
            .cmp(CmpKind::Lt, p, i, 400)
            .br_cond(p, body, exit);
        f.at(exit).halt();
        f.at(spin).add(Reg(30), Reg(30), 1).br(spin);
        let main = f.finish();
        let mut prog = pb.finish_with(main);
        prog.funcs[0].blocks[spin.index()].attachment = true;
        prog
    };
    let mut cfg = MachineConfig::in_order();
    cfg.spec_inst_cap = u64::MAX / 2; // let the spinner live
    let alone = simulate(&build(false), &cfg);
    let shared = simulate(&build(true), &cfg);
    assert!(shared.spec_insts > 10_000, "the spinner really ran");
    assert!(
        (shared.cycles as f64) < alone.cycles as f64 * 1.10,
        "main-thread priority: {} vs {}",
        shared.cycles,
        alone.cycles
    );
}
