//! Property-based tests of the cache hierarchy's invariants under random
//! access streams.

use proptest::prelude::*;
use ssp_sim::{Hierarchy, HitWhere, MachineConfig};

fn addr_strategy() -> impl Strategy<Value = u64> {
    // A few hot lines plus a long random tail, 8-byte aligned.
    prop_oneof![
        (0u64..8).prop_map(|i| 0x1_0000 + i * 64),
        (0u64..4096).prop_map(|i| 0x10_0000 + i * 64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loads_never_complete_before_l1_latency(
        addrs in prop::collection::vec(addr_strategy(), 1..200),
    ) {
        let cfg = MachineConfig::in_order();
        let mut h = Hierarchy::new(&cfg);
        for (t, a) in addrs.into_iter().enumerate() {
            let t = t as u64;
            let r = h.access_load(a, t);
            prop_assert!(
                r.ready_at >= t + cfg.l1d.latency || r.hit != HitWhere::L1,
                "an L1 hit takes at least the L1 latency"
            );
            prop_assert!(r.ready_at >= t, "results are never ready in the past");
        }
    }

    #[test]
    fn repeat_access_after_fill_hits_l1(
        a in addr_strategy(),
        gap in 1u64..50,
    ) {
        let cfg = MachineConfig::in_order();
        let mut h = Hierarchy::new(&cfg);
        let first = h.access_load(a, 0);
        let again = h.access_load(a, first.ready_at + gap);
        prop_assert_eq!(again.hit, HitWhere::L1, "line resident after its fill");
    }

    #[test]
    fn access_during_fill_is_partial_and_no_later(
        a in addr_strategy(),
        frac in 1u64..99,
    ) {
        let cfg = MachineConfig::in_order();
        let mut h = Hierarchy::new(&cfg);
        let first = h.access_load(a, 0);
        let mid = first.ready_at * frac / 100;
        let again = h.access_load(a + 8, mid); // same line
        // `first.ready_at` includes the TLB-miss penalty; the fill itself
        // can land earlier, so a late probe may already hit L1. Otherwise
        // it must be a partial hit that completes no later than the fill.
        if again.hit != HitWhere::L1 {
            prop_assert!(matches!(
                again.hit,
                HitWhere::MemPartial | HitWhere::L2Partial | HitWhere::L3Partial
            ));
            prop_assert!(
                again.ready_at <= first.ready_at,
                "piggybacking on the in-flight fill cannot be slower than the fill"
            );
        }
    }

    #[test]
    fn within_associativity_working_set_stays_resident(
        ways in 1usize..4,
    ) {
        // `ways` distinct lines in one set (stride = sets * line), touched
        // round-robin: after the first pass everything is an L1 hit.
        let cfg = MachineConfig::in_order();
        let mut h = Hierarchy::new(&cfg);
        let set_stride = (cfg.l1d.num_sets() * cfg.l1d.line) as u64;
        let addrs: Vec<u64> = (0..ways as u64).map(|i| 0x40_0000 + i * set_stride).collect();
        let mut t = 0;
        for &a in &addrs {
            let r = h.access_load(a, t);
            t = r.ready_at + 1;
        }
        for _ in 0..3 {
            for &a in &addrs {
                let r = h.access_load(a, t);
                prop_assert_eq!(r.hit, HitWhere::L1);
                t = r.ready_at + 1;
            }
        }
    }

    #[test]
    fn prefetch_never_slows_down_a_later_load(
        a in addr_strategy(),
        delay in 0u64..400,
    ) {
        let cfg = MachineConfig::in_order();
        // Without prefetch.
        let mut h1 = Hierarchy::new(&cfg);
        let plain = h1.access_load(a, delay);
        // With a prefetch at t=0.
        let mut h2 = Hierarchy::new(&cfg);
        let _ = h2.access_prefetch(a, 0);
        let fetched = h2.access_load(a, delay);
        prop_assert!(
            fetched.ready_at <= plain.ready_at,
            "prefetched {} vs plain {}",
            fetched.ready_at,
            plain.ready_at
        );
    }
}
