//! Regression suite for the incremental next-event queues: run the fast
//! engine with per-query verification enabled
//! ([`ssp_sim::simulate_crosschecked`]), so every incremental
//! next-event computation — the per-thread monotone queues maintained at
//! dispatch and wakeup — is checked against a brute-force O(ROB) rescan
//! of the same event definition. The engine panics on the first
//! divergence, or on any event that is not strictly in the future; on
//! top of that, the final statistics must still be byte-identical to the
//! stepped engine's.
//!
//! The bench-crate twin (`event_queue_crosscheck` there) extends this to
//! SSP-adapted binaries and the checked-in fuzz corpus.

use ssp_sim::{simulate_crosschecked, simulate_stepped, simulate_windowed, MachineConfig};

const SEED: u64 = 2002;

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

fn machines(max: u64) -> [(&'static str, MachineConfig); 2] {
    [
        ("in-order", capped(MachineConfig::in_order(), max)),
        ("out-of-order", capped(MachineConfig::out_of_order(), max)),
    ]
}

#[test]
fn event_queues_match_brute_force_rescan_on_workload_baselines() {
    for w in ssp_workloads::suite(SEED) {
        for (model, cfg) in machines(120_000) {
            let checked = simulate_crosschecked(&w.program, &cfg);
            let stepped = simulate_stepped(&w.program, &cfg);
            assert_eq!(checked, stepped, "{} on {model}: crosschecked run diverged", w.name);
        }
    }
}

#[test]
fn window_accounting_covers_every_simulated_cycle() {
    // `simulate_windowed` asserts busy + idle + stepped == total_cycles
    // internally; this drives that invariant across the same grid the
    // crosscheck runs on, including odd caps that halt mid-window.
    for w in ssp_workloads::suite(SEED) {
        for cap in [997, 20_011, 120_000] {
            for (model, cfg) in machines(cap) {
                let (windowed, stats) = simulate_windowed(&w.program, &cfg);
                let stepped = simulate_stepped(&w.program, &cfg);
                assert_eq!(
                    windowed, stepped,
                    "{} on {model} capped at {cap}: windowed run diverged",
                    w.name
                );
                assert_eq!(
                    stats.simulated(),
                    windowed.total_cycles,
                    "{} on {model} capped at {cap}: accounting leak",
                    w.name
                );
            }
        }
    }
}

#[test]
fn event_queues_match_brute_force_rescan_under_odd_cycle_caps() {
    // Odd caps land mid-stall, so the clamp path of the fast-forward jump
    // gets crosschecked too (not just full-length runs).
    for w in ssp_workloads::suite(SEED) {
        for cap in [997, 20_011] {
            for (model, cfg) in machines(cap) {
                let checked = simulate_crosschecked(&w.program, &cfg);
                let stepped = simulate_stepped(&w.program, &cfg);
                assert_eq!(
                    checked, stepped,
                    "{} on {model} capped at {cap}: crosschecked run diverged",
                    w.name
                );
            }
        }
    }
}
