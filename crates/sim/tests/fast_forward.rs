//! Differential tests of the event-driven clock fast-forward: the
//! skipping engine must be byte-identical to the stepped engine on every
//! observable output — `SimResult` (all fields, including the Figure-10
//! stall breakdown), architectural snapshots, and telemetry traces.
//!
//! Machine configs are cycle-capped because tier-1 runs this in a debug
//! build; equivalence does not depend on the cap (and one test checks
//! the cap interaction explicitly).

use ssp_sim::{
    simulate, simulate_snapshot, simulate_snapshot_stepped, simulate_stepped, simulate_traced,
    simulate_traced_stepped, MachineConfig,
};

const SEED: u64 = 2002;

fn capped(mut mc: MachineConfig, max: u64) -> MachineConfig {
    mc.max_cycles = max;
    mc
}

fn machines(max: u64) -> [(&'static str, MachineConfig); 2] {
    [
        ("in-order", capped(MachineConfig::in_order(), max)),
        ("out-of-order", capped(MachineConfig::out_of_order(), max)),
    ]
}

#[test]
fn workload_baselines_match_stepped_engine() {
    for w in ssp_workloads::suite(SEED) {
        for (model, cfg) in machines(120_000) {
            let fast = simulate(&w.program, &cfg);
            let stepped = simulate_stepped(&w.program, &cfg);
            assert_eq!(fast, stepped, "{} on {model}: fast-forward diverged", w.name);
        }
    }
}

#[test]
fn snapshots_match_stepped_engine() {
    for w in ssp_workloads::suite(SEED) {
        for (model, cfg) in machines(120_000) {
            let bound = w.program.next_tag;
            let (fr, fs) = simulate_snapshot(&w.program, &cfg, bound);
            let (sr, ss) = simulate_snapshot_stepped(&w.program, &cfg, bound);
            assert_eq!(fr, sr, "{} on {model}: snapshot-run stats diverged", w.name);
            assert_eq!(fs, ss, "{} on {model}: architectural snapshot diverged", w.name);
        }
    }
}

#[test]
fn telemetry_matches_stepped_engine() {
    // Tracing attaches the `Telemetry` side-structure; the skip must not
    // change any prefetch-timeliness classification. Empty target map:
    // baseline programs have no SSP prefetches, but demand-load records
    // and totals still flow through the telemetry path.
    let w = ssp_workloads::by_name("mcf", SEED).expect("known workload");
    for (model, cfg) in machines(120_000) {
        let (fr, ft) = simulate_traced(&w.program, &cfg, &[]);
        let (sr, st) = simulate_traced_stepped(&w.program, &cfg, &[]);
        assert_eq!(fr, sr, "{model}: traced-run stats diverged");
        assert_eq!(ft, st, "{model}: telemetry trace diverged");
    }
}

#[test]
fn cycle_cap_clamps_the_jump() {
    // A cap small enough to land mid-run — and, on the memory-bound
    // workloads, mid-stall: a fast-forward jump in flight when the cap
    // hits must be clamped to it, not sail past. Several odd caps make
    // it overwhelmingly likely at least one falls inside a skip window.
    for w in ssp_workloads::suite(SEED) {
        for cap in [997, 5_003, 20_011] {
            for (model, cfg) in machines(cap) {
                let fast = simulate(&w.program, &cfg);
                let stepped = simulate_stepped(&w.program, &cfg);
                assert_eq!(
                    fast.total_cycles, stepped.total_cycles,
                    "{} on {model} cap={cap}: total_cycles diverged",
                    w.name
                );
                assert!(
                    fast.total_cycles <= cap,
                    "{} on {model} cap={cap}: jump escaped the cycle cap",
                    w.name
                );
                assert_eq!(fast, stepped, "{} on {model} cap={cap}: stats diverged", w.name);
            }
        }
    }
}
