//! Bounded-cycle probe of the hand-built SSP program (regression guard
//! against trigger/stub livelock).

use ssp_ir::reg::conv;
use ssp_ir::{CmpKind, Operand, Program, ProgramBuilder, Reg};
use ssp_sim::{simulate, MachineConfig};

const ARCS: u64 = 0x0100_0000;
const NODES: u64 = 0x0800_0000;
const N: i64 = 400;

fn pointer_chase_ssp() -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..N as u64 {
        let perm = (i * 7919) % N as u64;
        pb.data_word(ARCS + 64 * i, NODES + 64 * perm);
        pb.data_word(NODES + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let e = f.entry_block();
    let pre = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    let stub = f.new_block();
    let slice = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, ARCS as i64).movi(k, ARCS as i64 + 64 * N).movi(sum, 0).br(pre);
    let rest = f.new_block();
    f.at(pre).br(body);
    // Trigger block: the `chk.c` fires at most once per loop iteration;
    // the stub resumes at `rest`, not re-executing the trigger (the
    // tool's Figure-7 layout after the block split).
    f.at(body).chk_c(stub).br(rest);
    f.at(rest)
        .mov(t, arc)
        .ld(u, t, 0)
        .ld(v, u, 0)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, arc, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let slot = Reg(20);
    f.at(stub).lib_alloc(slot).lib_st(slot, 0, arc).lib_st(slot, 1, k).spawn(slice, slot).br(rest);
    let (st, sk, snext, sp_, su, sslot) = (Reg(30), Reg(31), Reg(32), Reg(33), Reg(34), Reg(35));
    let spawn_blk = f.new_block();
    let work = f.new_block();
    f.at(slice)
        .lib_ld(st, conv::SLOT, 0)
        .lib_ld(sk, conv::SLOT, 1)
        .lib_free(conv::SLOT)
        .add(snext, st, 64)
        .cmp(CmpKind::Lt, sp_, snext, Operand::Reg(sk))
        .br_cond(sp_, spawn_blk, work);
    f.at(spawn_blk)
        .lib_alloc(sslot)
        .lib_st(sslot, 0, snext)
        .lib_st(sslot, 1, sk)
        .spawn(slice, sslot)
        .br(work);
    f.at(work).ld(su, st, 0).lfetch(su, 0).kill_thread();
    let main = f.finish();
    pb.finish_with(main)
}

#[test]
fn hand_ssp_terminates_quickly() {
    let mut cfg = MachineConfig::in_order();
    cfg.max_cycles = 3_000_000;
    let r = simulate(&pointer_chase_ssp(), &cfg);
    println!(
        "halted={} cycles={} main={} spec={} spawned={} fired={} suppressed={} dropped={} lib_fail?",
        r.halted, r.cycles, r.main_insts, r.spec_insts, r.threads_spawned,
        r.spawns_fired, r.spawns_suppressed, r.spawns_dropped
    );
    assert!(r.halted, "livelock: {} main insts in {} cycles", r.main_insts, r.total_cycles);
}
