//! Micro repro: one chk.c-triggered chain; the chain must spawn links.

use ssp_ir::reg::conv;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};
use ssp_sim::{simulate, MachineConfig};

#[test]
fn chain_gate_passes_live_in_values() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let stub = f.new_block();
    let slice = f.new_block();
    let spawn_blk = f.new_block();
    let work = f.new_block();
    let (arc, k, i, p) = (Reg(64), Reg(65), Reg(66), Reg(67));
    f.at(e).movi(arc, 0x1000).movi(k, 0x1000 + 64 * 50).movi(i, 0).br(body);
    let rest = f.new_block();
    f.at(body).chk_c(stub).br(rest);
    f.at(rest).add(i, i, 1).cmp(CmpKind::Lt, p, i, 2000).br_cond(p, body, exit);
    f.at(exit).halt();
    let slot = Reg(20);
    f.at(stub).lib_alloc(slot).lib_st(slot, 0, arc).lib_st(slot, 1, k).spawn(slice, slot).br(rest);
    let (st, sk, snext, sp_, sslot) = (Reg(30), Reg(31), Reg(32), Reg(33), Reg(35));
    f.at(slice)
        .lib_ld(st, conv::SLOT, 0)
        .lib_ld(sk, conv::SLOT, 1)
        .lib_free(conv::SLOT)
        .add(snext, st, 64)
        .cmp(CmpKind::Lt, sp_, snext, Operand::Reg(sk))
        .br_cond(sp_, spawn_blk, work);
    f.at(spawn_blk)
        .lib_alloc(sslot)
        .lib_st(sslot, 0, snext)
        .lib_st(sslot, 1, sk)
        .spawn(slice, sslot)
        .br(work);
    f.at(work).lfetch(st, 0).kill_thread();
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    for b in [stub, slice, spawn_blk, work] {
        prog.funcs[0].blocks[b.index()].attachment = true;
    }
    let mut cfg = MachineConfig::in_order();
    cfg.max_cycles = 500_000;
    let r = simulate(&prog, &cfg);
    println!(
        "halted={} spawned={} fired={} dropped={} spec_insts={} avg_child={:.1}",
        r.halted,
        r.threads_spawned,
        r.spawns_fired,
        r.spawns_dropped,
        r.spec_insts,
        r.spec_insts as f64 / r.threads_spawned.max(1) as f64
    );
    assert!(r.halted);
    // Chains should spawn many more links than the stub seeds.
    assert!(
        r.threads_spawned > r.spawns_fired + 20,
        "chains never extend: spawned={} fired={}",
        r.threads_spawned,
        r.spawns_fired
    );
}

#[test] // variant: real load in work block
fn chain_gate_with_real_load() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let stub = f.new_block();
    let slice = f.new_block();
    let spawn_blk = f.new_block();
    let work = f.new_block();
    let (arc, k, i, p) = (Reg(64), Reg(65), Reg(66), Reg(67));
    f.at(e).movi(arc, 0x1000).movi(k, 0x1000 + 64 * 50).movi(i, 0).br(body);
    let rest = f.new_block();
    f.at(body).chk_c(stub).br(rest);
    f.at(rest).add(i, i, 1).cmp(CmpKind::Lt, p, i, 2000).br_cond(p, body, exit);
    f.at(exit).halt();
    let slot = Reg(20);
    f.at(stub).lib_alloc(slot).lib_st(slot, 0, arc).lib_st(slot, 1, k).spawn(slice, slot).br(rest);
    let (st, sk, snext, sp_, sslot) = (Reg(30), Reg(31), Reg(32), Reg(33), Reg(35));
    f.at(slice)
        .lib_ld(st, conv::SLOT, 0)
        .lib_ld(sk, conv::SLOT, 1)
        .lib_free(conv::SLOT)
        .add(snext, st, 64)
        .cmp(CmpKind::Lt, sp_, snext, Operand::Reg(sk))
        .br_cond(sp_, spawn_blk, work);
    f.at(spawn_blk)
        .lib_alloc(sslot)
        .lib_st(sslot, 0, snext)
        .lib_st(sslot, 1, sk)
        .spawn(slice, sslot)
        .br(work);
    f.at(work).ld(Reg(40), st, 0).lfetch(Reg(40), 0).kill_thread();
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    for b in [stub, slice, spawn_blk, work] {
        prog.funcs[0].blocks[b.index()].attachment = true;
    }
    let mut cfg = MachineConfig::in_order();
    cfg.max_cycles = 500_000;
    let r = simulate(&prog, &cfg);
    println!(
        "halted={} spawned={} fired={} dropped={} spec_insts={} avg_child={:.1}",
        r.halted,
        r.threads_spawned,
        r.spawns_fired,
        r.spawns_dropped,
        r.spec_insts,
        r.spec_insts as f64 / r.threads_spawned.max(1) as f64
    );
    assert!(r.halted);
    // Chains should spawn many more links than the stub seeds.
    assert!(
        r.threads_spawned > r.spawns_fired + 20,
        "chains never extend: spawned={} fired={}",
        r.threads_spawned,
        r.spawns_fired
    );
}

/// Variant 3: main body stalls on dependent loads (like the mcf kernel).
#[test]
fn chain_gate_with_stalling_main() {
    let mut pb = ProgramBuilder::new();
    const ARCS: u64 = 0x0100_0000;
    const NODES: u64 = 0x0800_0000;
    const N: i64 = 400;
    for i in 0..N as u64 {
        let perm = (i * 7919) % N as u64;
        pb.data_word(ARCS + 64 * i, NODES + 64 * perm);
        pb.data_word(NODES + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let stub = f.new_block();
    let slice = f.new_block();
    let spawn_blk = f.new_block();
    let work = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, ARCS as i64).movi(k, ARCS as i64 + 64 * N).movi(sum, 0).br(body);
    let rest = f.new_block();
    f.at(body).chk_c(stub).br(rest);
    f.at(rest)
        .mov(t, arc)
        .ld(u, t, 0)
        .ld(v, u, 0)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, arc, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let slot = Reg(20);
    f.at(stub).lib_alloc(slot).lib_st(slot, 0, arc).lib_st(slot, 1, k).spawn(slice, slot).br(rest);
    let (st, sk, snext, sp_, su, sslot) = (Reg(30), Reg(31), Reg(32), Reg(33), Reg(34), Reg(35));
    f.at(slice)
        .lib_ld(st, conv::SLOT, 0)
        .lib_ld(sk, conv::SLOT, 1)
        .lib_free(conv::SLOT)
        .add(snext, st, 64)
        .cmp(CmpKind::Lt, sp_, snext, Operand::Reg(sk))
        .br_cond(sp_, spawn_blk, work);
    f.at(spawn_blk)
        .lib_alloc(sslot)
        .lib_st(sslot, 0, snext)
        .lib_st(sslot, 1, sk)
        .spawn(slice, sslot)
        .br(work);
    f.at(work).ld(su, st, 0).lfetch(su, 0).kill_thread();
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    for b in [stub, slice, spawn_blk, work] {
        prog.funcs[0].blocks[b.index()].attachment = true;
    }
    let mut cfg = MachineConfig::in_order();
    cfg.max_cycles = if std::env::var_os("SSP_TRACE").is_some() { 1500 } else { 1_000_000 };
    let r = simulate(&prog, &cfg);
    println!(
        "v3: halted={} cycles={} main={} spawned={} fired={} dropped={} avg_child={:.1}",
        r.halted,
        r.total_cycles,
        r.main_insts,
        r.threads_spawned,
        r.spawns_fired,
        r.spawns_dropped,
        r.spec_insts as f64 / r.threads_spawned.max(1) as f64
    );
    assert!(r.halted, "livelock");
}
