//! Behavioural tests of the timed engine: stall-on-use, OOO latency
//! hiding, prefetching, SMT spawning, and a hand-built miniature SSP
//! adaptation exercising the whole `chk.c`/stub/slice/live-in-buffer path.

use ssp_ir::reg::conv;
use ssp_ir::{CmpKind, Operand, Program, ProgramBuilder, Reg};
use ssp_sim::{simulate, simulate_reference, MachineConfig, MemoryMode, PipelineKind};

const ARCS: u64 = 0x0100_0000;
const NODES: u64 = 0x0800_0000;
const N: i64 = 400;

/// A pointer-chasing loop modelled on mcf's `primal_bea_map` (Figure 3):
///
/// ```text
/// do { t = arc; u = load(t->tail); v = load(u->potential);
///      sum += v; arc += 64; } while (arc < K);
/// ```
///
/// Arcs are sequential (one per cache line); `tail` pointers are scattered
/// by a multiplicative permutation so the dependent load defeats any
/// stride pattern.
fn pointer_chase_program() -> Program {
    let mut pb = ProgramBuilder::new();
    // Data image: arc[i].tail at ARCS + 64 i -> NODES + 64 perm(i);
    // node.potential = i (value loaded).
    for i in 0..N as u64 {
        let perm = (i * 7919) % N as u64;
        pb.data_word(ARCS + 64 * i, NODES + 64 * perm);
        pb.data_word(NODES + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, ARCS as i64).movi(k, ARCS as i64 + 64 * N).movi(sum, 0).br(body);
    f.at(body)
        .mov(t, arc)
        .ld(u, t, 0) // u = t->tail
        .ld(v, u, 0) // v = u->potential  (the delinquent load)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, arc, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    pb.finish_with(main)
}

/// The same program hand-adapted for chaining SSP, following Figure 5(b)
/// and the Figure 7 code layout: a `chk.c` trigger in the loop preheader,
/// a stub block copying live-ins, and a chaining slice block that spawns
/// its successor before doing the two dependent loads.
fn pointer_chase_ssp() -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..N as u64 {
        let perm = (i * 7919) % N as u64;
        pb.data_word(ARCS + 64 * i, NODES + 64 * perm);
        pb.data_word(NODES + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let e = f.entry_block();
    let pre = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    let stub = f.new_block();
    let slice = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, ARCS as i64).movi(k, ARCS as i64 + 64 * N).movi(sum, 0).br(pre);
    // Trigger point: the `chk.c` sits in the loop, so whenever a hardware
    // context is free a fresh chain is seeded from the main thread's
    // current position; while contexts are busy it is a nop. The stub
    // resumes *after* the trigger (the tool's Figure-7 layout after the
    // block split), so the trigger runs at most once per iteration.
    let rest = f.new_block();
    f.at(pre).br(body);
    f.at(body).chk_c(stub).br(rest);
    f.at(rest)
        .mov(t, arc)
        .ld(u, t, 0)
        .ld(v, u, 0)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, arc, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();

    // Stub (executed by the main thread as chk.c recovery code):
    // copy live-ins {arc, k} to a fresh LIB slot, spawn, resume.
    let slot = Reg(20);
    f.at(stub).lib_alloc(slot).lib_st(slot, 0, arc).lib_st(slot, 1, k).spawn(slice, slot).br(rest);

    // Chaining slice (Figure 5(b)): critical sub-slice first, then spawn
    // the next chaining thread, then the two dependent loads.
    let (st, sk, snext, sp_, su, sslot) = (Reg(30), Reg(31), Reg(32), Reg(33), Reg(34), Reg(35));
    let spawn_blk = f.new_block();
    let work = f.new_block();
    f.at(slice)
        .lib_ld(st, conv::SLOT, 0) // A: t = arc (live-in)
        .lib_ld(sk, conv::SLOT, 1)
        .lib_free(conv::SLOT)
        .add(snext, st, 64) // D: arc' = t + 64
        .cmp(CmpKind::Lt, sp_, snext, Operand::Reg(sk)) // E: arc' < K ?
        .br_cond(sp_, spawn_blk, work);
    f.at(spawn_blk)
        .lib_alloc(sslot)
        .lib_st(sslot, 0, snext)
        .lib_st(sslot, 1, sk)
        .spawn(slice, sslot)
        .br(work);
    f.at(work)
        .ld(su, st, 0) // B: u = load(t->tail)
        .lfetch(su, 0) // C: prefetch(u->potential)
        .kill_thread();

    let main = f.finish();
    let mut prog = pb.finish_with(main);
    for b in [stub, slice, spawn_blk, work] {
        prog.funcs[0].blocks[b.index()].attachment = true;
    }
    ssp_ir::verify::verify(&prog).expect("hand adaptation is structurally valid");
    ssp_ir::verify::verify_speculative(&prog).expect("slice contains no stores");
    prog
}

#[test]
fn straightline_program_halts() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    f.at(e).movi(Reg(1), 1).movi(Reg(2), 2).add(Reg(3), Reg(1), Operand::Reg(Reg(2))).halt();
    let main = f.finish();
    let prog = pb.finish_with(main);
    let r = simulate(&prog, &MachineConfig::in_order());
    assert!(r.halted);
    assert!(r.cycles >= 1);
    assert_eq!(r.main_insts, 4);
}

#[test]
fn in_order_stalls_on_dependent_load_use() {
    let prog = pointer_chase_program();
    let r = simulate(&prog, &MachineConfig::in_order());
    assert!(r.halted);
    // Two dependent cold misses per iteration: at least ~2*230 cycles/iter
    // minus partial-hit effects. Far more than the handful of instructions.
    assert!(
        r.cycles > (N as u64) * 300,
        "pointer chase must be memory bound: {} cycles for {} iters",
        r.cycles,
        N
    );
    let agg = r.load_stats_all();
    assert!(agg.l1_miss_rate() > 0.9, "cold scattered loads mostly miss");
}

#[test]
fn perfect_memory_is_dramatically_faster() {
    let prog = pointer_chase_program();
    let base = simulate(&prog, &MachineConfig::in_order());
    let perfect =
        simulate(&prog, &MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectAll));
    assert!(perfect.halted);
    assert!(
        base.cycles > 10 * perfect.cycles,
        "perfect memory should give order-of-magnitude speedup: {} vs {}",
        base.cycles,
        perfect.cycles
    );
}

#[test]
fn perfect_delinquent_mode_targets_selected_loads() {
    let prog = pointer_chase_program();
    // Find the two loads' tags via profile.
    let profile = ssp_sim::profile(&prog, &MachineConfig::in_order());
    let delinquent = profile.delinquent_loads(0.9);
    assert!(!delinquent.is_empty());
    let cfg = MachineConfig::in_order()
        .with_memory_mode(MemoryMode::PerfectDelinquent(delinquent.iter().copied().collect()));
    let r = simulate(&prog, &cfg);
    let base = simulate(&prog, &MachineConfig::in_order());
    assert!(r.cycles < base.cycles, "fixing delinquent loads must help");
}

#[test]
fn ooo_hides_latency_better_than_in_order() {
    let prog = pointer_chase_program();
    let io = simulate(&prog, &MachineConfig::in_order());
    let ooo = simulate(&prog, &MachineConfig::out_of_order());
    assert!(ooo.halted);
    assert!(
        ooo.cycles * 3 < io.cycles * 2,
        "OOO should be at least 1.5x faster on independent-iteration misses: io={} ooo={}",
        io.cycles,
        ooo.cycles
    );
}

#[test]
fn software_prefetch_helps_in_order() {
    // Strided load with an lfetch 8 lines ahead vs. without.
    let build = |prefetch: bool| {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (a, i, x, p) = (Reg(64), Reg(65), Reg(66), Reg(67));
        f.at(e).movi(a, 0x200_0000).movi(i, 0).br(body);
        let mut c = f.at(body);
        if prefetch {
            c = c.lfetch(a, 64 * 8);
        }
        c.ld(x, a, 0)
            .add(Reg(68), x, Operand::Imm(1)) // use the value: stall-on-use
            .add(a, a, 64)
            .add(i, i, 1)
            .cmp(CmpKind::Lt, p, i, 600)
            .br_cond(p, body, exit);
        f.at(exit).halt();
        let main = f.finish();
        pb.finish_with(main)
    };
    let base = simulate(&build(false), &MachineConfig::in_order());
    let pf = simulate(&build(true), &MachineConfig::in_order());
    assert!(
        pf.cycles * 10 < base.cycles * 9,
        "prefetching 8 lines ahead should save >10%: base={} pf={}",
        base.cycles,
        pf.cycles
    );
}

#[test]
fn hand_built_chaining_ssp_speeds_up_in_order() {
    let base = simulate(&pointer_chase_program(), &MachineConfig::in_order());
    let ssp = simulate(&pointer_chase_ssp(), &MachineConfig::in_order());
    assert!(ssp.halted);
    assert!(ssp.threads_spawned > 10, "chaining threads must actually run");
    assert!(
        ssp.cycles * 5 < base.cycles * 4,
        "chaining SSP should save >20% on the in-order model: base={} ssp={}",
        base.cycles,
        ssp.cycles
    );
    // The speculative threads did real work.
    assert!(ssp.spec_insts > 0);
}

#[test]
fn ssp_preserves_program_semantics() {
    // The adapted binary must compute the same `sum`: both versions halt
    // after the same number of main-thread loop iterations, and the
    // speculative threads never store. We check via instruction counts
    // and identical load values being summed (indirectly: same main inst
    // count modulo the trigger/stub overhead).
    let base = simulate(&pointer_chase_program(), &MachineConfig::in_order());
    let ssp = simulate(&pointer_chase_ssp(), &MachineConfig::in_order());
    let per_iter = 7;
    assert_eq!(base.main_insts, 4 + per_iter * N as u64 + 1);
    // SSP adds the preheader br, then per iteration either chk.c + br
    // (suppressed) or chk.c + the 5-instruction stub (fired; the raise
    // skips the trigger block's own br).
    let fired = ssp.spawns_fired;
    assert!(fired > 0);
    assert_eq!(ssp.main_insts, base.main_insts + 1 + 2 * N as u64 + 4 * fired);
}

#[test]
fn spawn_without_free_context_is_dropped() {
    // Spawn 5 threads back-to-back on a 4-context machine; each child
    // spins long enough to exhaust contexts (main + 3 children). Children
    // are killed by the runaway cap eventually.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let spin = f.new_block();
    let slot = Reg(20);
    let mut c = f.at(e);
    for _ in 0..5 {
        c = c.lib_alloc(slot).spawn(spin, slot);
    }
    c.halt();
    // Child: infinite loop (runaway-capped).
    f.at(spin).add(Reg(30), Reg(30), 1).br(spin);
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    prog.funcs[0].blocks[spin.index()].attachment = true;
    let r = simulate(&prog, &MachineConfig::in_order());
    assert_eq!(r.threads_spawned, 3, "only 3 free contexts");
    assert_eq!(r.spawns_dropped, 2);
}

#[test]
fn runaway_speculative_thread_is_killed() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let wait = f.new_block();
    let exit = f.new_block();
    let spin = f.new_block();
    let slot = Reg(20);
    let (i, p) = (Reg(64), Reg(65));
    f.at(e).lib_alloc(slot).spawn(spin, slot).movi(i, 0).br(wait);
    // Main busy-waits long enough for the cap to trigger.
    f.at(wait).add(i, i, 1).cmp(CmpKind::Lt, p, i, 20_000).br_cond(p, wait, exit);
    f.at(exit).halt();
    f.at(spin).add(Reg(30), Reg(30), 1).br(spin);
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    prog.funcs[0].blocks[spin.index()].attachment = true;
    let r = simulate(&prog, &MachineConfig::in_order());
    assert_eq!(r.runaway_kills, 1);
}

#[test]
fn speculative_store_does_not_modify_memory() {
    // A (hand-broken) slice stores to memory; the engine must drop it.
    let mut pb = ProgramBuilder::new();
    pb.data_word(0x1000, 7);
    let mut f = pb.function("main");
    let e = f.entry_block();
    let wait = f.new_block();
    let check = f.new_block();
    let spin = f.new_block();
    let (slot, i, p, v) = (Reg(20), Reg(64), Reg(65), Reg(66));
    f.at(e).lib_alloc(slot).spawn(spin, slot).movi(i, 0).br(wait);
    f.at(wait).add(i, i, 1).cmp(CmpKind::Lt, p, i, 3000).br_cond(p, wait, check);
    // Read 0x1000: must still be 7, else spin forever (the run would then
    // hit the cycle cap and report !halted).
    let good = f.new_block();
    let bad = f.new_block();
    f.at(check)
        .movi(Reg(70), 0x1000)
        .ld(v, Reg(70), 0)
        .cmp(CmpKind::Eq, p, v, 7)
        .br_cond(p, good, bad);
    f.at(good).halt();
    f.at(bad).br(bad);
    // The rogue slice writes 99 to 0x1000 then dies.
    f.at(spin).movi(Reg(30), 0x1000).movi(Reg(31), 99).st(Reg(31), Reg(30), 0).kill_thread();
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    prog.funcs[0].blocks[spin.index()].attachment = true;
    // The speculative verifier rejects this program; the engine must
    // enforce isolation anyway (defence in depth).
    assert!(ssp_ir::verify::verify_speculative(&prog).is_err());
    let mut cfg = MachineConfig::in_order();
    cfg.max_cycles = 200_000;
    let r = simulate(&prog, &cfg);
    assert!(r.halted, "main thread saw the unmodified value");
}

#[test]
fn lib_values_flow_parent_to_child() {
    // Parent passes 0xABCD via the LIB; child prefetches [value], which
    // we observe through the spawn/thread counters and clean halt.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let wait = f.new_block();
    let exit = f.new_block();
    let slice = f.new_block();
    let (slot, x, i, p) = (Reg(20), Reg(21), Reg(64), Reg(65));
    f.at(e)
        .movi(x, 0xABCD0)
        .lib_alloc(slot)
        .lib_st(slot, 0, x)
        .spawn(slice, slot)
        .movi(i, 0)
        .br(wait);
    f.at(wait).add(i, i, 1).cmp(CmpKind::Lt, p, i, 500).br_cond(p, wait, exit);
    f.at(exit).halt();
    let (cv,) = (Reg(30),);
    f.at(slice).lib_ld(cv, conv::SLOT, 0).lfetch(cv, 0).lib_free(conv::SLOT).kill_thread();
    let main = f.finish();
    let mut prog = pb.finish_with(main);
    prog.funcs[0].blocks[slice.index()].attachment = true;
    let r = simulate(&prog, &MachineConfig::in_order());
    assert_eq!(r.threads_spawned, 1);
    assert!(r.halted);
    assert!(r.spec_insts >= 4);
}

#[test]
fn roi_markers_limit_cycle_accounting() {
    let build = |with_roi: bool| {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let warm = f.new_block();
        let hot = f.new_block();
        let exit = f.new_block();
        let (a, i, p) = (Reg(64), Reg(65), Reg(66));
        f.at(e).movi(a, 0x300_0000).movi(i, 0).br(warm);
        // Warm-up loop: 300 missy loads whose values are used, so the
        // in-order pipe stalls on each.
        f.at(warm)
            .ld(Reg(67), a, 0)
            .add(Reg(68), Reg(67), 1)
            .add(a, a, 64)
            .add(i, i, 1)
            .cmp(CmpKind::Lt, p, i, 300)
            .br_cond(p, warm, hot);
        let mut c = f.at(hot);
        if with_roi {
            c = c.roi_begin();
        }
        c.movi(i, 0).br(exit);
        let done = f.new_block();
        f.at(exit).add(i, i, 1).cmp(CmpKind::Lt, p, i, 100).br_cond(p, exit, done);
        let mut c = f.at(done);
        if with_roi {
            c = c.roi_end();
        }
        c.halt();
        let main = f.finish();
        pb.finish_with(main)
    };
    let full = simulate(&build(false), &MachineConfig::in_order());
    let roi = simulate(&build(true), &MachineConfig::in_order());
    assert!(roi.cycles < full.cycles / 4, "ROI excludes the missy warm-up");
    assert!(roi.total_cycles >= full.cycles / 2, "total still includes warm-up");
}

/// Differential check of the pre-decoded hot path: for every workload in
/// the suite, on both machine models, the optimized engine must produce
/// a `SimResult` equal in every field (cycles, instruction counts, cycle
/// breakdown, per-load hit stats, spawn counters) to the reference
/// engine that re-derives uses and FU classes from the `Op` at issue
/// time. Cycle-capped because tier-1 runs this in a debug build.
#[test]
fn predecoded_engine_matches_reference_on_all_workloads() {
    let mut io = MachineConfig::in_order();
    io.max_cycles = 150_000;
    let mut ooo = MachineConfig::out_of_order();
    ooo.max_cycles = 150_000;
    for w in ssp_workloads::suite(2002) {
        for cfg in [&io, &ooo] {
            let fast = simulate(&w.program, cfg);
            let reference = simulate_reference(&w.program, cfg);
            assert_eq!(
                fast, reference,
                "pre-decoded engine diverged from reference on {} ({:?})",
                w.name, cfg.pipeline
            );
        }
    }
}

/// Same differential check on the hand-adapted SSP binary, so the
/// speculative side (spawns, LIB traffic, chaining threads) is covered
/// too, not just main-thread execution.
#[test]
fn predecoded_engine_matches_reference_with_speculative_threads() {
    let prog = pointer_chase_ssp();
    for cfg in [MachineConfig::in_order(), MachineConfig::out_of_order()] {
        let fast = simulate(&prog, &cfg);
        let reference = simulate_reference(&prog, &cfg);
        assert!(fast.threads_spawned > 0, "test must exercise speculation");
        assert_eq!(
            fast, reference,
            "pre-decoded engine diverged from reference on the SSP binary ({:?})",
            cfg.pipeline
        );
    }
}

#[test]
fn ooo_pipeline_identifier_differs() {
    // Sanity: the two configs drive different pipelines end to end.
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    assert_eq!(io.pipeline, PipelineKind::InOrder);
    assert_eq!(ooo.pipeline, PipelineKind::OutOfOrder);
    let prog = pointer_chase_program();
    let a = simulate(&prog, &io);
    let b = simulate(&prog, &ooo);
    assert_ne!(a.cycles, b.cycles);
}
