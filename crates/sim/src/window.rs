//! Busy-window batching: a lean main-thread-only replica of the cycle
//! loop for spans where no speculative context can issue.
//!
//! The event-driven clock ([`crate::engine`]) already jumps over *idle*
//! windows — cycles where nothing issues anywhere. After the adaptation
//! pass, though, most simulation time goes to *busy* windows: the main
//! thread issuing steadily while every speculative context is dead,
//! blocked on a slice load, or waiting out its spawn latency. Those
//! cycles can't be skipped (architectural state changes every cycle),
//! but they can be run on a specialised loop that drops the work the
//! full [`Engine::step_cycle`] wastes on provably-blocked contexts:
//!
//! * no per-cycle speculative-thread scan (their round-robin rotation is
//!   applied in closed form, their bandwidth is untouched since blocked
//!   threads consume no bundles);
//! * speculative ROB commit drains are deferred to window exit and
//!   replayed in one bandwidth-limited pass ([`drain_thread`]) — legal
//!   because nothing observes a blocked context's ROB mid-window;
//! * main-thread fetch bubbles and source/occupancy stalls inside the
//!   window are bulk-skipped with the same event queries and Figure-10
//!   bulk accounting the idle fast-forward uses.
//!
//! **Preconditions.** A window may only start when every speculative
//! context is provably unable to issue before a *horizon* cycle
//! ([`Engine::spec_blocked_until`]), and it ends early the moment the
//! proof could be invalidated — a successful spawn activates a new
//! context — or the main thread halts. Within the window the main
//! thread runs the exact per-cycle issue-group protocol of
//! [`Engine::step_cycle`] (two bundle groups, round-robin rotation
//! between them, redirect and halt handling), so every statistic,
//! snapshot, and telemetry byte matches the stepped engine; the
//! equivalence suite asserts exactly that.

use crate::cache::HitWhere;
use crate::config::PipelineKind;
use crate::engine::{drain_thread, Engine, StallReason};

/// What [`Engine::try_busy_window`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BatchOutcome {
    /// Preconditions not met (or the window closed before simulating
    /// anything): the caller must step normally.
    NotApplicable,
    /// At least one cycle was simulated; state is consistent and the
    /// caller should re-evaluate from the new current cycle.
    Ran,
    /// The program halted inside the window; the current cycle is the
    /// halt cycle (not yet incremented), as after a halting step.
    Halt,
}

/// The stall-payload cache level, as the bulk accounting needs it.
fn stall_hit(stall: Option<StallReason>) -> Option<HitWhere> {
    match stall {
        Some(StallReason::SrcNotReady(h))
        | Some(StallReason::RobFull(h))
        | Some(StallReason::RsFull(h)) => h,
        _ => None,
    }
}

impl Engine<'_> {
    /// The earliest cycle at which speculative context `tid` could
    /// possibly issue again, or `u64::MAX` for an inactive context. A
    /// return equal to `self.cycle` means "not provably blocked".
    ///
    /// The proof obligations, per pipeline:
    ///
    /// * front end redirecting → blocked before `fetch_ready`;
    /// * **in-order** → some source of the thread's current instruction
    ///   is unready; blocked until the earliest such source's ready
    ///   time (bitset scoreboard query);
    /// * **out-of-order**, ROB at capacity → the head pops at the
    ///   commit phase of cycle `max(head.complete_at, now)`, so
    ///   dispatch resumes no earlier than the following cycle;
    /// * **out-of-order**, reservation station at capacity → a slot
    ///   frees when the earliest future `start_at` passes
    ///   (`rs_waiting` queue minimum).
    ///
    /// Nothing a blocked context waits on can be accelerated by other
    /// threads (its scoreboard, ROB and queues are written only by its
    /// own dispatch), so the bound stays valid for the whole window —
    /// except across a successful `spawn`, which the window loop
    /// treats as a window-closing event.
    pub(crate) fn spec_blocked_until(&mut self, tid: usize) -> u64 {
        let now = self.cycle;
        if !self.threads[tid].active() {
            return u64::MAX;
        }
        if self.threads[tid].fetch_ready > now {
            return self.threads[tid].fetch_ready;
        }
        match self.cfg.pipeline {
            PipelineKind::InOrder => {
                let at = self.threads[tid].pc.expect("active thread has a pc");
                let mask = self.decode.get(at).use_mask;
                let ev = self.threads[tid].sb.min_ready(&mask, now);
                if ev == u64::MAX {
                    now // every source ready: could issue this cycle
                } else {
                    ev
                }
            }
            PipelineKind::OutOfOrder => {
                if self.threads[tid].rob.len() >= self.cfg.rob_entries {
                    let head = self.threads[tid].rob.front().expect("full ROB has a head");
                    head.complete_at.max(now) + 1
                } else if self.threads[tid].rs_waiting_count(now) >= self.cfg.rs_entries {
                    match self.threads[tid].rs_waiting.peek() {
                        Some(&std::cmp::Reverse(s)) => s,
                        None => now,
                    }
                } else {
                    now // room to dispatch: could issue this cycle
                }
            }
        }
    }

    /// Try to run a busy window starting at the current cycle: if every
    /// speculative context is provably blocked until some horizon, run
    /// the lean main-only loop up to that horizon (clamped to the cycle
    /// cap `max`) and return what happened.
    pub(crate) fn try_busy_window(&mut self, max: u64) -> BatchOutcome {
        let entry = self.cycle;
        let mut horizon = max;
        for tid in 1..self.threads.len() {
            // Consult the cached wakeup first — for a sleeping context
            // this is one compare; the full proof runs only for contexts
            // whose cached bound has lapsed (and is re-cached, so the
            // next attempt is cheap again).
            let t = &self.threads[tid];
            let b = if !t.active() {
                u64::MAX
            } else if t.fetch_ready > entry {
                t.fetch_ready
            } else if t.blocked_until > entry {
                t.blocked_until
            } else {
                let b = self.spec_blocked_until(tid);
                self.threads[tid].blocked_until = b;
                b
            };
            horizon = horizon.min(b);
            if horizon <= entry + 1 {
                // Too small for the entry/exit bookkeeping to pay off
                // (and `<= entry` means a context can issue right now).
                return BatchOutcome::NotApplicable;
            }
        }
        let width = self.cfg.bundle_width;
        let commit_width = self.cfg.bundles_per_cycle * width;
        let ooo = self.cfg.pipeline == PipelineKind::OutOfOrder;
        let spawned0 = self.result.threads_spawned;
        let mut halted = false;

        while self.cycle < horizon {
            if !self.threads[0].active() {
                break;
            }
            let now = self.cycle;

            // Fetch-redirect span: the main thread is waiting on its
            // front end, so (with every other context blocked) these are
            // pure FetchWait cycles — bulk-account them exactly as the
            // idle fast-forward would.
            let fr = self.threads[0].fetch_ready;
            if fr > now {
                let to = fr.min(horizon);
                if ooo {
                    drain_thread(&mut self.threads[0], commit_width, now, to - 1);
                }
                self.rotate_rr(to - now);
                if self.effective_roi() {
                    self.result.cycles += to - now;
                    self.result.account_stalled(None, to - now);
                }
                self.cycle = to;
                continue;
            }

            self.fu_used = [0; 4];
            self.advance_fu_ring();
            let mut bundles_left = self.cfg.bundles_per_cycle;
            let (g1, stall, h1) = self.issue_thread(0, width);
            let mut main_issued = g1;
            halted = h1;
            if g1 > 0 {
                bundles_left -= 1;
            }
            if !halted {
                if g1 == 0 {
                    let Some(stall) = stall else {
                        // No issue and no stall classification: bail to
                        // the full loop rather than guess.
                        break;
                    };
                    self.zero_issue_skip(stall, horizon, commit_width, ooo);
                    continue;
                }
                // The speculative round-robin pointer rotates once per
                // cycle whether or not anything speculative issues.
                self.rotate_rr(1);
                // Leftover bundle back to the main thread ("2 bundles
                // from 1") — unless its front end was redirected.
                if bundles_left > 0
                    && self.threads[0].active()
                    && self.threads[0].fetch_ready <= now
                {
                    let (g2, _, h2) = self.issue_thread(0, bundles_left * width);
                    main_issued += g2;
                    halted = h2;
                }
            }
            // Main-thread commit phase; blocked contexts' drains are
            // deferred to window exit.
            if ooo {
                let t = &mut self.threads[0];
                let mut committed = 0;
                while committed < commit_width {
                    match t.rob.front() {
                        Some(e) if e.complete_at <= now => {
                            t.rob.pop_front();
                            committed += 1;
                        }
                        _ => break,
                    }
                }
            }
            if self.effective_roi() {
                let has_miss = main_issued > 0 && self.main_has_miss();
                self.result.cycles_account(main_issued, None, has_miss);
                self.result.cycles += 1;
            }
            if halted {
                break;
            }
            self.cycle += 1;
            if self.result.threads_spawned != spawned0 {
                // A spawn activated a new context; the horizon proof no
                // longer covers it. Close the window.
                break;
            }
        }

        let simulated = self.cycle > entry || halted;
        if !simulated {
            return BatchOutcome::NotApplicable;
        }
        // Replay the deferred speculative commit drains over every cycle
        // the window completed (the halt cycle, when there is one, runs
        // its commit phase like any other).
        let drain_to = if halted { self.cycle } else { self.cycle - 1 };
        if ooo {
            for tid in 1..self.threads.len() {
                drain_thread(&mut self.threads[tid], commit_width, entry, drain_to);
            }
        }
        // The window's contribution to `total_cycles` is `cycle - entry`:
        // on halt the clock stays on the halt cycle, which
        // `total_cycles` excludes, so it is not part of the window
        // length either (a window that halts on its first cycle
        // contributes nothing and is not recorded).
        if let Some(w) = self.winstats.as_deref_mut() {
            let len = self.cycle - entry;
            if len > 0 {
                w.record_busy(len);
            }
        }
        if halted {
            BatchOutcome::Halt
        } else {
            BatchOutcome::Ran
        }
    }

    /// Handle a zero-issue main-thread cycle inside a busy window:
    /// account the current cycle under `stall`, then bulk-skip to the
    /// main thread's next event (clamped to the window horizon), just
    /// like the idle fast-forward — every other context is blocked past
    /// the horizon, so the whole machine repeats this cycle until then.
    fn zero_issue_skip(
        &mut self,
        stall: StallReason,
        horizon: u64,
        commit_width: usize,
        ooo: bool,
    ) {
        let now = self.cycle;
        self.rotate_rr(1);
        if ooo {
            let t = &mut self.threads[0];
            let mut committed = 0;
            while committed < commit_width {
                match t.rob.front() {
                    Some(e) if e.complete_at <= now => {
                        t.rob.pop_front();
                        committed += 1;
                    }
                    _ => break,
                }
            }
        }
        if self.effective_roi() {
            self.result.cycles_account(0, Some(stall), false);
            self.result.cycles += 1;
        }
        self.cycle = now + 1;
        let ev = self.thread_event_fast(0, now);
        if self.crosscheck {
            let brute = self.thread_event_brute(0, now);
            assert_eq!(
                ev, brute,
                "event-queue divergence in busy window: thread 0, now {now}: \
                 fast {ev} != brute {brute}"
            );
            assert!(ev > now, "thread 0: event {ev} not after now {now}");
        }
        let target = ev.min(horizon);
        if target > self.cycle {
            let skipped = target - self.cycle;
            if ooo {
                drain_thread(&mut self.threads[0], commit_width, self.cycle, target - 1);
            }
            self.rotate_rr(skipped);
            if self.effective_roi() {
                self.result.cycles += skipped;
                self.result.account_stalled(stall_hit(Some(stall)), skipped);
            }
            self.cycle = target;
        }
    }
}
