//! Pure-value evaluation helpers shared by the timed engine and the fast
//! functional profiler.

use ssp_ir::{AluKind, CmpKind, FAluKind, Operand, Reg};

/// A thread's architectural register file.
#[derive(Clone, Debug)]
pub struct RegFile {
    regs: [u64; ssp_ir::reg::NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All-zero register file.
    pub fn new() -> Self {
        RegFile { regs: [0; ssp_ir::reg::NUM_REGS] }
    }

    /// Read `r` (`r0` always reads 0).
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write `r` (writes to `r0` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Read an operand.
    #[inline]
    pub fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(i) => i as u64,
        }
    }
}

/// Evaluate an integer ALU operation.
pub fn alu_eval(kind: AluKind, a: u64, b: u64) -> u64 {
    match kind {
        AluKind::Add => a.wrapping_add(b),
        AluKind::Sub => a.wrapping_sub(b),
        AluKind::Mul => a.wrapping_mul(b),
        AluKind::And => a & b,
        AluKind::Or => a | b,
        AluKind::Xor => a ^ b,
        AluKind::Shl => a.wrapping_shl(b as u32 & 63),
        AluKind::Shr => a.wrapping_shr(b as u32 & 63),
    }
}

/// Evaluate a comparison to 0 or 1.
pub fn cmp_eval(kind: CmpKind, a: u64, b: u64) -> u64 {
    let r = match kind {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::SLt => (a as i64) < (b as i64),
        CmpKind::SGt => (a as i64) > (b as i64),
    };
    u64::from(r)
}

/// Evaluate an FP operation over `f64` bit patterns.
pub fn falu_eval(kind: FAluKind, a: u64, b: u64) -> u64 {
    let (x, y) = (f64::from_bits(a), f64::from_bits(b));
    let r = match kind {
        FAluKind::Add => x + y,
        FAluKind::Sub => x - y,
        FAluKind::Mul => x * y,
    };
    r.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regfile_zero_register() {
        let mut rf = RegFile::new();
        rf.write(Reg(0), 99);
        assert_eq!(rf.read(Reg(0)), 0);
        rf.write(Reg(5), 7);
        assert_eq!(rf.read(Reg(5)), 7);
        assert_eq!(rf.operand(Operand::Imm(-1)), u64::MAX);
        assert_eq!(rf.operand(Operand::Reg(Reg(5))), 7);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_eval(AluKind::Add, 3, 4), 7);
        assert_eq!(alu_eval(AluKind::Sub, 3, 4), u64::MAX);
        assert_eq!(alu_eval(AluKind::Mul, 6, 7), 42);
        assert_eq!(alu_eval(AluKind::Shl, 1, 10), 1024);
        assert_eq!(alu_eval(AluKind::Shr, 1024, 10), 1);
        assert_eq!(alu_eval(AluKind::Shl, 1, 64), 1, "shift count masked");
        assert_eq!(alu_eval(AluKind::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu_eval(AluKind::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu_eval(AluKind::Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn cmp_semantics_signed_vs_unsigned() {
        let neg1 = (-1i64) as u64;
        assert_eq!(cmp_eval(CmpKind::Lt, neg1, 1), 0, "unsigned: MAX > 1");
        assert_eq!(cmp_eval(CmpKind::SLt, neg1, 1), 1, "signed: -1 < 1");
        assert_eq!(cmp_eval(CmpKind::Eq, 5, 5), 1);
        assert_eq!(cmp_eval(CmpKind::Ne, 5, 5), 0);
        assert_eq!(cmp_eval(CmpKind::Ge, 5, 5), 1);
        assert_eq!(cmp_eval(CmpKind::Gt, 5, 5), 0);
        assert_eq!(cmp_eval(CmpKind::Le, 4, 5), 1);
        assert_eq!(cmp_eval(CmpKind::SGt, 1, neg1), 1);
    }

    #[test]
    fn falu_roundtrip() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Add, a, b)), 3.75);
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Sub, a, b)), -0.75);
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Mul, a, b)), 3.375);
    }
}
