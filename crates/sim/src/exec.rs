//! Pure-value evaluation helpers shared by the timed engine and the fast
//! functional profiler, plus the per-thread register [`Scoreboard`] the
//! timing model consults on every issue decision.

use crate::cache::HitWhere;
use ssp_ir::reg::NUM_REGS;
use ssp_ir::{AluKind, CmpKind, FAluKind, Operand, Reg};

/// Words in a register bitset: 128 architected registers fit in two
/// `u64`s, so every mask operation is a pair of word ops.
pub const MASK_WORDS: usize = NUM_REGS.div_ceil(64);

/// A register bitset: bit `r % 64` of word `r / 64` covers register `r`.
pub type RegMask = [u64; MASK_WORDS];

/// Per-thread register readiness scoreboard.
///
/// Tracks, for every architected register, the cycle its last write
/// becomes available (`ready_at`), the cache level that produced it when
/// the producer was a load (`src`, the stall-payload of Figure 10), and —
/// for the fast engine — a **pending bitset** summarising which registers
/// may still be in flight.
///
/// The bitset is maintained *lazily*: a write whose result lands in the
/// future sets the register's bit, and the bit is cleared the next time a
/// mask query observes that the ready time has passed. The invariant is
/// one-sided — a set bit may be stale, but a clear bit always means
/// ready — so intersecting an instruction's pre-decoded operand mask
/// with `pending` is a conservative two-word filter: when the
/// intersection is empty the instruction provably has all sources ready
/// and the per-register ready-time walk is skipped entirely. Issue
/// selection on the fast engine is therefore a handful of
/// `trailing_zeros` operations instead of per-operand array probes.
#[derive(Clone, Debug)]
pub struct Scoreboard {
    ready_at: [u64; NUM_REGS],
    src: [Option<HitWhere>; NUM_REGS],
    pending: RegMask,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Scoreboard {
    /// A scoreboard with every register ready at cycle 0.
    pub fn new() -> Self {
        Scoreboard { ready_at: [0; NUM_REGS], src: [None; NUM_REGS], pending: [0; MASK_WORDS] }
    }

    /// The cycle register `r`'s last write becomes available.
    #[inline]
    pub fn ready_at(&self, r: Reg) -> u64 {
        self.ready_at[r.index()]
    }

    /// The cache level that produced `r`'s outstanding value, when the
    /// producer was a load (the Figure-10 stall payload).
    #[inline]
    pub fn src_of(&self, r: Reg) -> Option<HitWhere> {
        self.src[r.index()]
    }

    /// Record a write of `r` whose result is available at `ready`.
    /// Writes to `r0` are discarded, matching the register file.
    #[inline]
    pub fn set(&mut self, r: Reg, ready: u64, src: Option<HitWhere>, now: u64) {
        if r.is_zero() {
            return;
        }
        let i = r.index();
        self.ready_at[i] = ready;
        self.src[i] = src;
        let bit = 1u64 << (i % 64);
        if ready > now {
            self.pending[i / 64] |= bit;
        } else {
            self.pending[i / 64] &= !bit;
        }
    }

    /// Mark every register as written with availability `at` — the spawn
    /// hand-off, where a fresh context's whole file materialises at once.
    pub fn fill(&mut self, at: u64) {
        self.ready_at = [at; NUM_REGS];
        self.src = [None; NUM_REGS];
        self.pending = [u64::MAX; MASK_WORDS];
    }

    /// The subset of `mask` whose registers are *not* ready at `now`,
    /// clearing stale pending bits along the way. An all-zero return
    /// means every source in `mask` is ready.
    #[inline]
    pub fn unready_among(&mut self, mask: &RegMask, now: u64) -> RegMask {
        let mut out = [0; MASK_WORDS];
        for w in 0..MASK_WORDS {
            let mut bits = mask[w] & self.pending[w];
            let mut keep = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.ready_at[w * 64 + b] <= now {
                    let clear = !(1u64 << b);
                    self.pending[w] &= clear;
                    keep &= clear;
                }
            }
            out[w] = keep;
        }
        out
    }

    /// Latest ready time over the unready subset of `mask`, floored at
    /// `now` — the out-of-order issue (reservation-station leave) time.
    #[inline]
    pub fn max_ready(&mut self, mask: &RegMask, now: u64) -> u64 {
        let unready = self.unready_among(mask, now);
        let mut t = now;
        for (w, &word) in unready.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                t = t.max(self.ready_at[w * 64 + b]);
            }
        }
        t
    }

    /// Earliest ready time over the unready subset of `mask` —
    /// the in-order thread's next source-availability event.
    /// `u64::MAX` when every source in `mask` is ready.
    #[inline]
    pub fn min_ready(&mut self, mask: &RegMask, now: u64) -> u64 {
        let unready = self.unready_among(mask, now);
        let mut t = u64::MAX;
        for (w, &word) in unready.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                t = t.min(self.ready_at[w * 64 + b]);
            }
        }
        t
    }
}

/// A thread's architectural register file.
#[derive(Clone, Debug)]
pub struct RegFile {
    regs: [u64; ssp_ir::reg::NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All-zero register file.
    pub fn new() -> Self {
        RegFile { regs: [0; ssp_ir::reg::NUM_REGS] }
    }

    /// Read `r` (`r0` always reads 0).
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write `r` (writes to `r0` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Read an operand.
    #[inline]
    pub fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(i) => i as u64,
        }
    }
}

/// Evaluate an integer ALU operation.
pub fn alu_eval(kind: AluKind, a: u64, b: u64) -> u64 {
    match kind {
        AluKind::Add => a.wrapping_add(b),
        AluKind::Sub => a.wrapping_sub(b),
        AluKind::Mul => a.wrapping_mul(b),
        AluKind::And => a & b,
        AluKind::Or => a | b,
        AluKind::Xor => a ^ b,
        AluKind::Shl => a.wrapping_shl(b as u32 & 63),
        AluKind::Shr => a.wrapping_shr(b as u32 & 63),
    }
}

/// Evaluate a comparison to 0 or 1.
pub fn cmp_eval(kind: CmpKind, a: u64, b: u64) -> u64 {
    let r = match kind {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::SLt => (a as i64) < (b as i64),
        CmpKind::SGt => (a as i64) > (b as i64),
    };
    u64::from(r)
}

/// Evaluate an FP operation over `f64` bit patterns.
pub fn falu_eval(kind: FAluKind, a: u64, b: u64) -> u64 {
    let (x, y) = (f64::from_bits(a), f64::from_bits(b));
    let r = match kind {
        FAluKind::Add => x + y,
        FAluKind::Sub => x - y,
        FAluKind::Mul => x * y,
    };
    r.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regfile_zero_register() {
        let mut rf = RegFile::new();
        rf.write(Reg(0), 99);
        assert_eq!(rf.read(Reg(0)), 0);
        rf.write(Reg(5), 7);
        assert_eq!(rf.read(Reg(5)), 7);
        assert_eq!(rf.operand(Operand::Imm(-1)), u64::MAX);
        assert_eq!(rf.operand(Operand::Reg(Reg(5))), 7);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_eval(AluKind::Add, 3, 4), 7);
        assert_eq!(alu_eval(AluKind::Sub, 3, 4), u64::MAX);
        assert_eq!(alu_eval(AluKind::Mul, 6, 7), 42);
        assert_eq!(alu_eval(AluKind::Shl, 1, 10), 1024);
        assert_eq!(alu_eval(AluKind::Shr, 1024, 10), 1);
        assert_eq!(alu_eval(AluKind::Shl, 1, 64), 1, "shift count masked");
        assert_eq!(alu_eval(AluKind::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu_eval(AluKind::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu_eval(AluKind::Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn cmp_semantics_signed_vs_unsigned() {
        let neg1 = (-1i64) as u64;
        assert_eq!(cmp_eval(CmpKind::Lt, neg1, 1), 0, "unsigned: MAX > 1");
        assert_eq!(cmp_eval(CmpKind::SLt, neg1, 1), 1, "signed: -1 < 1");
        assert_eq!(cmp_eval(CmpKind::Eq, 5, 5), 1);
        assert_eq!(cmp_eval(CmpKind::Ne, 5, 5), 0);
        assert_eq!(cmp_eval(CmpKind::Ge, 5, 5), 1);
        assert_eq!(cmp_eval(CmpKind::Gt, 5, 5), 0);
        assert_eq!(cmp_eval(CmpKind::Le, 4, 5), 1);
        assert_eq!(cmp_eval(CmpKind::SGt, 1, neg1), 1);
    }

    #[test]
    fn scoreboard_pending_bits_are_lazy_but_one_sided() {
        let mut sb = Scoreboard::new();
        // A write landing in the future sets the bit; a mask query after
        // the ready time clears it and reports the register ready.
        sb.set(Reg(5), 10, Some(HitWhere::L2), 3);
        sb.set(Reg(70), 4, None, 3);
        let mask = {
            let mut m = [0u64; MASK_WORDS];
            m[0] |= 1 << 5;
            m[1] |= 1 << (70 - 64);
            m
        };
        let un = sb.unready_among(&mask, 5);
        assert_eq!(un[0], 1 << 5, "r5 still in flight at cycle 5");
        assert_eq!(un[1], 0, "r70 became ready at cycle 4");
        assert_eq!(sb.min_ready(&mask, 5), 10);
        assert_eq!(sb.max_ready(&mask, 5), 10);
        assert_eq!(sb.src_of(Reg(5)), Some(HitWhere::L2));
        let un = sb.unready_among(&mask, 10);
        assert_eq!(un, [0, 0], "everything ready at cycle 10");
        assert_eq!(sb.min_ready(&mask, 10), u64::MAX);
        assert_eq!(sb.max_ready(&mask, 10), 10, "floored at now");
        // Writes to r0 are discarded.
        sb.set(Reg(0), 99, None, 0);
        assert_eq!(sb.ready_at(Reg(0)), 0);
        // fill() marks the whole file in flight (spawn hand-off).
        sb.fill(20);
        assert_eq!(sb.ready_at(Reg(0)), 20);
        let un = sb.unready_among(&mask, 12);
        assert_eq!(un, mask);
    }

    #[test]
    fn falu_roundtrip() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Add, a, b)), 3.75);
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Sub, a, b)), -0.75);
        assert_eq!(f64::from_bits(falu_eval(FAluKind::Mul, a, b)), 3.375);
    }
}
