//! The profiling pass: a fast functional run with cache simulation.
//!
//! The post-pass tool's first step (Figure 1) runs the original binary to
//! collect (a) cache profiles per static load, used to identify delinquent
//! loads and annotate dependence edges with latencies, (b) basic-block and
//! edge frequencies, used by speculative slicing and trigger placement,
//! and (c) the dynamic call graph from instrumented indirect calls.
//!
//! Time advances by one unit per executed instruction — a cheap proxy for
//! cycles that preserves the reuse-distance structure the cache model
//! needs (the timed engine is an order of magnitude slower and is not
//! needed for profiling).

use crate::cache::{Hierarchy, HitWhere};
use crate::config::MachineConfig;
use crate::exec::{alu_eval, cmp_eval, falu_eval, RegFile};
use crate::mem::Memory;
use crate::stats::LoadStats;
use ssp_ir::reg::conv;
use ssp_ir::{BlockId, FuncId, InstRef, InstTag, Op, Program};
use std::collections::HashMap;

/// Cache behaviour of one static load.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LoadProfile {
    /// Dynamic executions.
    pub accesses: u64,
    /// L1 misses.
    pub misses: u64,
    /// Total cycles beyond an L1 hit spent servicing this load's misses —
    /// the "miss cycles" of §3.4.1's region selection.
    pub miss_cycles: u64,
    /// Full hit-level breakdown.
    pub stats: LoadStats,
}

/// Result of a profiling run.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-static-load cache behaviour.
    pub loads: HashMap<InstTag, LoadProfile>,
    /// Basic-block execution counts.
    pub block_freq: HashMap<(FuncId, BlockId), u64>,
    /// Taken CFG edge counts `(func, from, to)`.
    pub edge_freq: HashMap<(FuncId, BlockId, BlockId), u64>,
    /// Observed targets of indirect call sites, with counts.
    pub indirect_targets: HashMap<InstRef, HashMap<FuncId, u64>>,
    /// Direct + indirect call-site execution counts.
    pub call_freq: HashMap<InstRef, u64>,
    /// Per call site: total dynamic instructions executed between the
    /// call and its return (nested work included) and invocation count —
    /// the latency estimate for `Call` nodes in dependence graphs.
    pub call_cost: HashMap<InstRef, (u64, u64)>,
    /// Instructions executed (inside the ROI).
    pub insts: u64,
}

impl Profile {
    /// The delinquent loads: the smallest set of static loads covering at
    /// least `coverage` (e.g. 0.9) of all miss cycles, ordered by
    /// decreasing contribution. Loads with zero misses never qualify.
    pub fn delinquent_loads(&self, coverage: f64) -> Vec<InstTag> {
        let total: u64 = self.loads.values().map(|l| l.miss_cycles).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut entries: Vec<(InstTag, u64)> = self
            .loads
            .iter()
            .filter(|(_, l)| l.miss_cycles > 0)
            .map(|(t, l)| (*t, l.miss_cycles))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = Vec::new();
        let mut acc = 0u64;
        let target = (coverage * total as f64).ceil() as u64;
        for (tag, mc) in entries {
            if acc >= target {
                break;
            }
            out.push(tag);
            acc += mc;
        }
        out
    }

    /// Execution count of block `b` in `f`.
    pub fn block_count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_freq.get(&(f, b)).copied().unwrap_or(0)
    }

    /// Average dynamic instructions per invocation of the call at `site`
    /// (nested calls included), if it was profiled.
    pub fn avg_call_cost(&self, site: InstRef) -> Option<f64> {
        self.call_cost.get(&site).and_then(|&(total, n)| (n > 0).then(|| total as f64 / n as f64))
    }

    /// Average trip count of a loop given its header and preheader
    /// predecessors: header executions divided by entries from outside.
    pub fn trip_count(&self, f: FuncId, header: BlockId, outside_preds: &[BlockId]) -> f64 {
        let h = self.block_count(f, header) as f64;
        let entries: u64 = outside_preds
            .iter()
            .map(|&p| self.edge_freq.get(&(f, p, header)).copied().unwrap_or(0))
            .sum();
        if entries == 0 {
            if h > 0.0 {
                h
            } else {
                0.0
            }
        } else {
            h / entries as f64
        }
    }
}

/// Run the profiler over `prog` with the cache geometry of `cfg`.
///
/// Execution is purely functional (no pipeline); SSP operations behave as
/// no-ops (`chk.c` never raises, `spawn` never spawns), matching a profile
/// of the *original* binary.
///
/// # Panics
///
/// Panics if the program executes more than `limit` instructions
/// (runaway guard), with `limit = 500_000_000`.
pub fn profile(prog: &Program, cfg: &MachineConfig) -> Profile {
    let mut mem = Memory::new();
    mem.load_image(&prog.image);
    let mut hier = Hierarchy::new(cfg);
    let mut rf = RegFile::new();
    rf.write(conv::SP, 0x7FFF_FF00_0000);
    let mut stack: Vec<(InstRef, InstRef, u64)> = Vec::new(); // (ret to, site, insts at entry)
    let entry_block = prog.func(prog.entry).entry;
    let mut pc = InstRef { func: prog.entry, block: entry_block, idx: 0 };
    let mut out = Profile::default();

    let has_roi = prog.iter_funcs().any(|(_, f)| {
        f.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i.op, Op::RoiBegin)))
    });
    let mut in_roi = !has_roi;

    let mut t: u64 = 0;
    let limit: u64 = 500_000_000;
    let mut executed: u64 = 0;
    // Count block entry for the entry block.
    if in_roi {
        *out.block_freq.entry((pc.func, pc.block)).or_insert(0) += 1;
    }

    loop {
        executed += 1;
        assert!(executed < limit, "profiler runaway: >{limit} instructions");
        t += 1;
        if in_roi {
            out.insts += 1;
        }
        let inst = prog.inst(pc);
        let next = InstRef { idx: pc.idx + 1, ..pc };
        let enter =
            |out: &mut Profile, in_roi: bool, f: FuncId, from: Option<BlockId>, b: BlockId| {
                if in_roi {
                    *out.block_freq.entry((f, b)).or_insert(0) += 1;
                    if let Some(fr) = from {
                        *out.edge_freq.entry((f, fr, b)).or_insert(0) += 1;
                    }
                }
            };
        match inst.op {
            Op::Movi { dst, imm } => {
                rf.write(dst, imm as u64);
                pc = next;
            }
            Op::Mov { dst, src } => {
                let v = rf.read(src);
                rf.write(dst, v);
                pc = next;
            }
            Op::Alu { kind, dst, a, b } => {
                let v = alu_eval(kind, rf.read(a), rf.operand(b));
                rf.write(dst, v);
                pc = next;
            }
            Op::Cmp { kind, dst, a, b } => {
                let v = cmp_eval(kind, rf.read(a), rf.operand(b));
                rf.write(dst, v);
                pc = next;
            }
            Op::FAlu { kind, dst, a, b } => {
                let v = falu_eval(kind, rf.read(a), rf.read(b));
                rf.write(dst, v);
                pc = next;
            }
            Op::Ld { dst, base, off } => {
                let addr = rf.read(base).wrapping_add(off as u64);
                rf.write(dst, mem.read(addr));
                let r = hier.access_load(addr, t);
                if in_roi {
                    let lp = out.loads.entry(inst.tag).or_default();
                    lp.accesses += 1;
                    lp.stats.record(r.hit);
                    if r.hit != HitWhere::L1 {
                        lp.misses += 1;
                        lp.miss_cycles += (r.ready_at - t).saturating_sub(cfg.l1d.latency);
                    }
                }
                pc = next;
            }
            Op::St { src, base, off } => {
                let addr = rf.read(base).wrapping_add(off as u64);
                mem.write(addr, rf.read(src));
                hier.access_store(addr, t);
                pc = next;
            }
            Op::Lfetch { base, off } => {
                let addr = rf.read(base).wrapping_add(off as u64);
                hier.access_prefetch(addr, t);
                pc = next;
            }
            Op::Br { target } => {
                enter(&mut out, in_roi, pc.func, Some(pc.block), target);
                pc = InstRef { func: pc.func, block: target, idx: 0 };
            }
            Op::BrCond { pred, if_true, if_false } => {
                let target = if rf.read(pred) != 0 { if_true } else { if_false };
                enter(&mut out, in_roi, pc.func, Some(pc.block), target);
                pc = InstRef { func: pc.func, block: target, idx: 0 };
            }
            Op::Call { callee, .. } => {
                if in_roi {
                    *out.call_freq.entry(pc).or_insert(0) += 1;
                }
                stack.push((next, pc, executed));
                let eb = prog.func(callee).entry;
                enter(&mut out, in_roi, callee, None, eb);
                pc = InstRef { func: callee, block: eb, idx: 0 };
            }
            Op::CallInd { target, .. } => {
                let v = rf.read(target);
                match FuncId::from_value(v) {
                    Some(f) if (f.0 as usize) < prog.funcs.len() => {
                        if in_roi {
                            *out.call_freq.entry(pc).or_insert(0) += 1;
                            *out.indirect_targets.entry(pc).or_default().entry(f).or_insert(0) += 1;
                        }
                        stack.push((next, pc, executed));
                        let eb = prog.func(f).entry;
                        enter(&mut out, in_roi, f, None, eb);
                        pc = InstRef { func: f, block: eb, idx: 0 };
                    }
                    _ => break, // wild indirect call ends the run
                }
            }
            Op::Ret => match stack.pop() {
                Some((r, site, at_entry)) => {
                    let c = out.call_cost.entry(site).or_insert((0, 0));
                    c.0 += executed - at_entry;
                    c.1 += 1;
                    pc = r;
                }
                None => break,
            },
            // SSP operations are inert during profiling.
            Op::ChkC { .. }
            | Op::Spawn { .. }
            | Op::LibAlloc { .. }
            | Op::LibSt { .. }
            | Op::LibLd { .. }
            | Op::LibFree { .. }
            | Op::Nop => {
                pc = next;
            }
            Op::KillThread | Op::Halt => break,
            Op::RoiBegin => {
                in_roi = true;
                // Attribute the current block so frequencies line up.
                *out.block_freq.entry((pc.func, pc.block)).or_insert(0) += 1;
                pc = next;
            }
            Op::RoiEnd => {
                in_roi = false;
                pc = next;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, ProgramBuilder, Reg};

    /// A loop reading a large array with 64B stride: every load misses.
    fn missy_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(b0).movi(Reg(1), 0x10_0000).movi(Reg(2), 0).movi(Reg(3), n).br(body);
        f.at(body)
            .ld(Reg(4), Reg(1), 0)
            .add(Reg(1), Reg(1), 64)
            .add(Reg(2), Reg(2), 1)
            .cmp(CmpKind::Lt, Reg(5), Reg(2), ssp_ir::Operand::Reg(Reg(3)))
            .br_cond(Reg(5), body, exit);
        f.at(exit).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn profiles_block_frequencies() {
        let prog = missy_loop(100);
        let p = profile(&prog, &MachineConfig::in_order());
        let f = prog.entry;
        assert_eq!(p.block_count(f, BlockId(0)), 1);
        assert_eq!(p.block_count(f, BlockId(1)), 100);
        assert_eq!(p.block_count(f, BlockId(2)), 1);
        assert_eq!(p.edge_freq[&(f, BlockId(1), BlockId(1))], 99);
    }

    #[test]
    fn identifies_delinquent_load() {
        let prog = missy_loop(200);
        let p = profile(&prog, &MachineConfig::in_order());
        let del = p.delinquent_loads(0.9);
        assert_eq!(del.len(), 1, "the strided load dominates misses");
        let lp = &p.loads[&del[0]];
        assert_eq!(lp.accesses, 200);
        assert_eq!(lp.misses, 200, "64B stride = one miss per access");
        assert!(lp.miss_cycles > 200 * 200, "each miss costs ~memory latency");
    }

    #[test]
    fn no_delinquent_loads_without_misses() {
        // Tiny loop over one cached word.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(b0).movi(Reg(1), 0x1000).movi(Reg(2), 0).br(body);
        f.at(body)
            .ld(Reg(4), Reg(1), 0)
            .add(Reg(2), Reg(2), 1)
            .cmp(CmpKind::Lt, Reg(5), Reg(2), 200)
            .br_cond(Reg(5), body, exit);
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let p = profile(&prog, &MachineConfig::in_order());
        // One compulsory miss to memory; iterations arriving while the
        // line is in transit are partial hits (still L1 misses), and once
        // the fill lands everything hits L1.
        let del = p.delinquent_loads(0.9);
        assert!(del.len() <= 1);
        let lp = p.loads.values().next().unwrap();
        assert_eq!(lp.stats.mem, 1, "exactly one access went all the way to memory");
        assert_eq!(lp.stats.mem + lp.stats.mem_partial + lp.stats.l1, lp.accesses);
        assert!(lp.stats.l1 > 0, "post-fill iterations hit L1");
    }

    #[test]
    fn trip_count_estimation() {
        let prog = missy_loop(40);
        let p = profile(&prog, &MachineConfig::in_order());
        let f = prog.entry;
        let tc = p.trip_count(f, BlockId(1), &[BlockId(0)]);
        assert!((tc - 40.0).abs() < 1e-9, "tc = {tc}");
    }

    #[test]
    fn roi_markers_scope_the_profile() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        // Pre-ROI load, then ROI with a small loop.
        f.at(b0).movi(Reg(1), 0x2000).ld(Reg(4), Reg(1), 0).roi_begin().movi(Reg(2), 0).br(body);
        f.at(body).add(Reg(2), Reg(2), 1).cmp(CmpKind::Lt, Reg(5), Reg(2), 10).br_cond(
            Reg(5),
            body,
            exit,
        );
        f.at(exit).roi_end().halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let p = profile(&prog, &MachineConfig::in_order());
        assert!(p.loads.is_empty(), "pre-ROI load not profiled");
        assert_eq!(p.block_count(prog.entry, BlockId(1)), 10);
    }
}
