//! A conventional hardware stride prefetcher (reference prediction
//! table), the baseline technique the paper's introduction contrasts SSP
//! against: "pointer-intensive applications ... tend to defy conventional
//! stride-based prefetching techniques".
//!
//! Per static load (keyed by instruction tag) the table tracks the last
//! address and the last observed stride with a 2-bit confidence counter;
//! once confident it prefetches `degree` strides ahead.

use ssp_ir::InstTag;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// The reference prediction table.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    entries: Vec<Entry>,
    degree: u64,
    /// Prefetch addresses issued (statistics).
    pub issued: u64,
}

impl StridePrefetcher {
    /// A 256-entry direct-mapped table with the given lookahead degree.
    pub fn new(degree: u64) -> Self {
        StridePrefetcher { entries: vec![Entry::default(); 256], degree, issued: 0 }
    }

    /// Observe a demand load; returns the addresses to prefetch (empty
    /// until the stride is confident).
    pub fn observe(&mut self, tag: InstTag, addr: u64) -> Vec<u64> {
        let idx = (tag.0 as usize) & 255;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag.0 {
            *e = Entry { tag: tag.0, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return Vec::new();
        }
        let delta = addr.wrapping_sub(e.last_addr) as i64;
        if delta == e.stride && delta != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = delta;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            let out: Vec<u64> = (1..=self.degree)
                .map(|i| addr.wrapping_add((e.stride * i as i64) as u64))
                .collect();
            self.issued += out.len() as u64;
            out
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_stride() {
        let mut p = StridePrefetcher::new(2);
        let tag = InstTag(7);
        assert!(p.observe(tag, 0x1000).is_empty(), "first touch trains");
        assert!(p.observe(tag, 0x1040).is_empty(), "stride recorded");
        assert!(p.observe(tag, 0x1080).is_empty(), "confidence 1");
        let pf = p.observe(tag, 0x10C0); // confidence 2 -> fire
        assert_eq!(pf, vec![0x1100, 0x1140]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn random_addresses_never_fire() {
        let mut p = StridePrefetcher::new(2);
        let tag = InstTag(9);
        for a in [0x1000u64, 0x9040, 0x2310, 0x77C0, 0x1888, 0xF000] {
            assert!(p.observe(tag, a).is_empty(), "no stable stride at {a:#x}");
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn interleaved_tags_do_not_interfere() {
        let mut p = StridePrefetcher::new(1);
        let (a, b) = (InstTag(1), InstTag(2));
        for i in 0..4u64 {
            p.observe(a, 0x1000 + i * 64);
            p.observe(b, 0x9000 + i * 128);
        }
        let pa = p.observe(a, 0x1000 + 4 * 64);
        let pb = p.observe(b, 0x9000 + 4 * 128);
        assert_eq!(pa, vec![0x1000 + 5 * 64]);
        assert_eq!(pb, vec![0x9000 + 5 * 128]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(1);
        let tag = InstTag(3);
        for i in 0..4u64 {
            p.observe(tag, 0x1000 + i * 64);
        }
        assert!(!p.observe(tag, 0x1000 + 4 * 64).is_empty());
        // Break the pattern.
        assert!(p.observe(tag, 0x5000).is_empty());
        assert!(p.observe(tag, 0x5040).is_empty(), "needs to re-train");
    }
}
