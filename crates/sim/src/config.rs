//! Machine configuration: the research Itanium models of Table 1.

use ssp_ir::InstTag;
use std::collections::HashSet;

/// Which pipeline the machine uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PipelineKind {
    /// The 12-stage in-order, two-bundle-wide model. Stalls on use of the
    /// destination register of an outstanding load miss.
    InOrder,
    /// The 16-stage out-of-order model: per-thread 255-entry reorder
    /// buffer, 18-entry reservation station, plus four extra front-end
    /// stages for renaming/scheduling.
    OutOfOrder,
}

/// One cache level's geometry and load-use latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Load-use latency in cycles when the access hits at this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }
}

/// How the memory subsystem behaves, for the Figure 2 limit studies.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum MemoryMode {
    /// Real cache hierarchy.
    #[default]
    Normal,
    /// "Perfect memory": every load hits in the L1 cache.
    PerfectAll,
    /// "Perfect delinquent loads": the given static loads always hit in
    /// L1; everything else goes through the real hierarchy.
    PerfectDelinquent(HashSet<InstTag>),
}

/// Full machine configuration.
///
/// Defaults come from Table 1 of the paper; construct with
/// [`MachineConfig::in_order`] or [`MachineConfig::out_of_order`] and
/// adjust fields for sensitivity studies.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineConfig {
    /// Pipeline model.
    pub pipeline: PipelineKind,
    /// Number of SMT hardware thread contexts.
    pub num_contexts: usize,
    /// Instructions per bundle (Itanium: 3).
    pub bundle_width: usize,
    /// Bundles fetched/issued per cycle in total across threads.
    pub bundles_per_cycle: usize,
    /// Integer ALUs.
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Branch units.
    pub branch_units: usize,
    /// Memory ports.
    pub mem_ports: usize,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache (shared by all threads).
    pub l2: CacheConfig,
    /// Unified L3 cache (shared by all threads).
    pub l3: CacheConfig,
    /// Fill buffer (MSHR) entries shared by the hierarchy.
    pub fill_buffer: usize,
    /// Main-memory load-use latency in cycles.
    pub mem_latency: u64,
    /// TLB miss penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// TLB entries (page-granular, LRU).
    pub tlb_entries: usize,
    /// Page size in bytes.
    pub page_size: u64,
    /// GSHARE pattern-history-table entries.
    pub gshare_entries: usize,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Cycles lost on a branch misprediction (front-end refill).
    pub mispredict_penalty: u64,
    /// Cycles the main thread loses when `chk.c` raises its spawn
    /// exception (pipeline flush, like exception handling).
    pub spawn_flush_penalty: u64,
    /// Cycles between a `spawn` executing and the child thread's first
    /// fetch (context allocation).
    pub spawn_latency: u64,
    /// Latency of integer ALU ops.
    pub int_latency: u64,
    /// Latency of integer multiply.
    pub mul_latency: u64,
    /// Latency of FP ops.
    pub fp_latency: u64,
    /// Latency of live-in buffer reads/writes (on-chip RSE backing store).
    pub lib_latency: u64,
    /// Live-in buffer slots available for concurrent spawns.
    pub lib_slots: usize,
    /// Words per live-in buffer slot.
    pub lib_slot_words: u8,
    /// Reorder-buffer entries per thread (OOO only).
    pub rob_entries: usize,
    /// Reservation-station entries per thread (OOO only).
    pub rs_entries: usize,
    /// Expansion-queue length in bundles per thread (in-order only).
    pub expansion_queue_bundles: usize,
    /// Memory subsystem behaviour.
    pub memory_mode: MemoryMode,
    /// Enable a hardware stride prefetcher (per-PC reference prediction
    /// table): the conventional technique the paper's introduction says
    /// pointer-intensive applications defy. Off by default.
    pub stride_prefetcher: bool,
    /// Stride-prefetch lookahead distance (lines of `stride` ahead).
    pub stride_degree: u64,
    /// Hard cap on instructions a speculative thread may execute before
    /// the hardware kills it (runaway protection).
    pub spec_inst_cap: u64,
    /// Hard cap on total simulated cycles (safety net; 0 = unlimited).
    pub max_cycles: u64,
}

impl MachineConfig {
    /// The baseline in-order research Itanium model (Table 1).
    pub fn in_order() -> Self {
        MachineConfig {
            pipeline: PipelineKind::InOrder,
            num_contexts: 4,
            bundle_width: 3,
            bundles_per_cycle: 2,
            int_units: 4,
            fp_units: 2,
            branch_units: 3,
            mem_ports: 2,
            l1d: CacheConfig { size: 16 * 1024, assoc: 4, line: 64, latency: 2 },
            l2: CacheConfig { size: 256 * 1024, assoc: 4, line: 64, latency: 14 },
            l3: CacheConfig { size: 3072 * 1024, assoc: 12, line: 64, latency: 30 },
            fill_buffer: 16,
            mem_latency: 230,
            tlb_miss_penalty: 30,
            tlb_entries: 128,
            page_size: 4096,
            gshare_entries: 2048,
            btb_entries: 256,
            btb_assoc: 4,
            // The 12-stage pipe resolves branches near the back end.
            mispredict_penalty: 9,
            spawn_flush_penalty: 12,
            spawn_latency: 4,
            int_latency: 1,
            mul_latency: 3,
            fp_latency: 4,
            lib_latency: 1,
            lib_slots: 32,
            lib_slot_words: 16,
            rob_entries: 255,
            rs_entries: 18,
            expansion_queue_bundles: 16,
            memory_mode: MemoryMode::Normal,
            stride_prefetcher: false,
            stride_degree: 2,
            spec_inst_cap: 50_000,
            max_cycles: 2_000_000_000,
        }
    }

    /// The out-of-order research Itanium model: 4 extra front-end stages,
    /// per-thread 255-entry ROB, 18-entry reservation station.
    pub fn out_of_order() -> Self {
        MachineConfig {
            pipeline: PipelineKind::OutOfOrder,
            mispredict_penalty: 13,
            spawn_flush_penalty: 16,
            ..Self::in_order()
        }
    }

    /// Same machine with a different memory mode.
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Versioned canonical fingerprint: a field-explicit `key=value`
    /// encoding under a `ssp-machine-config/1` header, stable across
    /// field reorders, rustc versions, and `Debug` format changes —
    /// the identity the `ssp-bench` baseline cache and the `ssp-serve`
    /// on-disk store key their shards by.
    ///
    /// Two configs that compare equal always fingerprint identically
    /// (the one non-canonical field, `MemoryMode::PerfectDelinquent`'s
    /// `HashSet`, is sorted before encoding). The full-struct
    /// destructuring is deliberate: adding a field to `MachineConfig`
    /// breaks this function at compile time, forcing the encoding — and
    /// its version header, if the change is semantic — to be updated.
    pub fn fingerprint(&self) -> String {
        fn cache(c: &CacheConfig) -> String {
            let CacheConfig { size, assoc, line, latency } = c;
            format!("{size}:{assoc}:{line}:{latency}")
        }
        let MachineConfig {
            pipeline,
            num_contexts,
            bundle_width,
            bundles_per_cycle,
            int_units,
            fp_units,
            branch_units,
            mem_ports,
            l1d,
            l2,
            l3,
            fill_buffer,
            mem_latency,
            tlb_miss_penalty,
            tlb_entries,
            page_size,
            gshare_entries,
            btb_entries,
            btb_assoc,
            mispredict_penalty,
            spawn_flush_penalty,
            spawn_latency,
            int_latency,
            mul_latency,
            fp_latency,
            lib_latency,
            lib_slots,
            lib_slot_words,
            rob_entries,
            rs_entries,
            expansion_queue_bundles,
            memory_mode,
            stride_prefetcher,
            stride_degree,
            spec_inst_cap,
            max_cycles,
        } = self;
        let pipeline = match pipeline {
            PipelineKind::InOrder => "in-order",
            PipelineKind::OutOfOrder => "out-of-order",
        };
        let mode = match memory_mode {
            MemoryMode::Normal => "normal".to_string(),
            MemoryMode::PerfectAll => "perfect-all".to_string(),
            MemoryMode::PerfectDelinquent(tags) => {
                let mut tags: Vec<u32> = tags.iter().map(|t| t.0).collect();
                tags.sort_unstable();
                let tags: Vec<String> = tags.iter().map(u32::to_string).collect();
                format!("perfect-delinquent:{}", tags.join(","))
            }
        };
        format!(
            "ssp-machine-config/1 pipeline={pipeline} num_contexts={num_contexts} \
             bundle_width={bundle_width} bundles_per_cycle={bundles_per_cycle} \
             int_units={int_units} fp_units={fp_units} branch_units={branch_units} \
             mem_ports={mem_ports} l1d={} l2={} l3={} fill_buffer={fill_buffer} \
             mem_latency={mem_latency} tlb_miss_penalty={tlb_miss_penalty} \
             tlb_entries={tlb_entries} page_size={page_size} gshare_entries={gshare_entries} \
             btb_entries={btb_entries} btb_assoc={btb_assoc} \
             mispredict_penalty={mispredict_penalty} spawn_flush_penalty={spawn_flush_penalty} \
             spawn_latency={spawn_latency} int_latency={int_latency} mul_latency={mul_latency} \
             fp_latency={fp_latency} lib_latency={lib_latency} lib_slots={lib_slots} \
             lib_slot_words={lib_slot_words} rob_entries={rob_entries} rs_entries={rs_entries} \
             expansion_queue_bundles={expansion_queue_bundles} memory_mode={mode} \
             stride_prefetcher={stride_prefetcher} stride_degree={stride_degree} \
             spec_inst_cap={spec_inst_cap} max_cycles={max_cycles}",
            cache(l1d),
            cache(l2),
            cache(l3),
        )
    }

    /// Same machine with the hardware stride prefetcher enabled.
    pub fn with_stride_prefetcher(mut self) -> Self {
        self.stride_prefetcher = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let c = MachineConfig::in_order();
        assert_eq!(c.l1d.num_sets(), 16 * 1024 / (64 * 4));
        assert_eq!(c.l2.num_sets(), 256 * 1024 / (64 * 4));
        assert_eq!(c.l3.num_sets(), 3072 * 1024 / (64 * 12));
        assert_eq!(c.num_contexts, 4);
        assert_eq!(c.mem_latency, 230);
    }

    #[test]
    fn ooo_extends_in_order() {
        let io = MachineConfig::in_order();
        let ooo = MachineConfig::out_of_order();
        assert_eq!(ooo.pipeline, PipelineKind::OutOfOrder);
        assert!(ooo.mispredict_penalty > io.mispredict_penalty);
        assert_eq!(ooo.l3, io.l3);
    }

    #[test]
    fn memory_mode_builder() {
        let c = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectAll);
        assert_eq!(c.memory_mode, MemoryMode::PerfectAll);
    }

    #[test]
    fn fingerprint_is_pinned() {
        // Golden encoding of the Table-1 in-order model. This string is
        // persisted in on-disk store shards: if this test fails because
        // the encoding changed, bump the version header — do not just
        // update the expectation.
        assert_eq!(
            MachineConfig::in_order().fingerprint(),
            "ssp-machine-config/1 pipeline=in-order num_contexts=4 bundle_width=3 \
             bundles_per_cycle=2 int_units=4 fp_units=2 branch_units=3 mem_ports=2 \
             l1d=16384:4:64:2 l2=262144:4:64:14 l3=3145728:12:64:30 fill_buffer=16 \
             mem_latency=230 tlb_miss_penalty=30 tlb_entries=128 page_size=4096 \
             gshare_entries=2048 btb_entries=256 btb_assoc=4 mispredict_penalty=9 \
             spawn_flush_penalty=12 spawn_latency=4 int_latency=1 mul_latency=3 fp_latency=4 \
             lib_latency=1 lib_slots=32 lib_slot_words=16 rob_entries=255 rs_entries=18 \
             expansion_queue_bundles=16 memory_mode=normal stride_prefetcher=false \
             stride_degree=2 spec_inst_cap=50000 max_cycles=2000000000"
        );
    }

    #[test]
    fn fingerprint_distinguishes_and_canonicalizes() {
        use ssp_ir::InstTag;
        let io = MachineConfig::in_order();
        assert_ne!(io.fingerprint(), MachineConfig::out_of_order().fingerprint());
        let mut capped = io.clone();
        capped.max_cycles = 1;
        assert_ne!(io.fingerprint(), capped.fingerprint());
        // PerfectDelinquent sets built in different insertion orders
        // (HashSet iteration order is not stable) encode identically.
        let fwd: HashSet<_> = (0..20).map(InstTag).collect();
        let rev: HashSet<_> = (0..20).rev().map(InstTag).collect();
        assert_eq!(
            io.clone().with_memory_mode(MemoryMode::PerfectDelinquent(fwd)).fingerprint(),
            io.clone().with_memory_mode(MemoryMode::PerfectDelinquent(rev)).fingerprint(),
        );
    }
}
