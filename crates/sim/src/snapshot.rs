//! Architectural-state snapshots and commit-stream digests for
//! differential testing.
//!
//! The fuzz oracle (`ssp-fuzz`) runs every generated program twice —
//! original and SSP-adapted — and asserts the adaptation is
//! *semantically transparent* (§3.5): same final registers and memory,
//! same trap status, and the same main-thread committed-instruction
//! stream once tool-synthesized instructions (fresh tags) are filtered
//! out. [`crate::simulate_snapshot`] produces the [`ArchSnapshot`] those
//! comparisons run on.
//!
//! Like the telemetry layer, the recorder is an `Option<Box<...>>` side
//! structure on the engine: when absent (every normal simulation) each
//! hook is a single untaken branch, so the untraced cycle loop is
//! unchanged.

use ssp_ir::reg::NUM_REGS;
use ssp_ir::InstTag;

/// How a simulation ended, from the main thread's point of view.
///
/// Differential runs must agree on this too: an adapted binary that turns
/// a clean `halt` into a wild indirect call (or a cycle-cap timeout) is
/// just as wrong as one that corrupts a register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// The main thread executed `halt`.
    Halted,
    /// The main thread ended via `kill.thread` or a return past the
    /// bottom of the call stack.
    MainExit,
    /// The main thread performed an indirect call through a value that is
    /// not a function address.
    WildIndirectCall,
    /// The configured cycle cap expired before the program ended.
    CycleCap,
}

impl TrapKind {
    /// Stable lower-case name (used in oracle reports).
    pub fn name(self) -> &'static str {
        match self {
            TrapKind::Halted => "halted",
            TrapKind::MainExit => "main-exit",
            TrapKind::WildIndirectCall => "wild-indirect-call",
            TrapKind::CycleCap => "cycle-cap",
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_step(h: u64, v: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        h = (h ^ ((v >> shift) & 0xFF)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The engine-side recorder behind [`crate::simulate_snapshot`].
#[derive(Clone, Debug)]
pub(crate) struct SnapshotRec {
    /// Main-thread instructions whose tag is below this bound enter the
    /// commit digest. Adaptation preserves original tags and mints fresh
    /// ones at or above `Program::next_tag` of the original, so passing
    /// that value filters the stub/trigger machinery out of the stream.
    pub(crate) tag_bound: u32,
    pub(crate) commit_digest: u64,
    pub(crate) commit_len: u64,
    pub(crate) spec_store_attempts: u64,
    pub(crate) spec_kills: u64,
    pub(crate) trap: Option<TrapKind>,
}

impl SnapshotRec {
    pub(crate) fn new(tag_bound: u32) -> Self {
        SnapshotRec {
            tag_bound,
            commit_digest: FNV_OFFSET,
            commit_len: 0,
            spec_store_attempts: 0,
            spec_kills: 0,
            trap: None,
        }
    }

    #[inline]
    pub(crate) fn record_commit(&mut self, tag: InstTag) {
        if tag.0 < self.tag_bound {
            self.commit_digest = fnv_step(self.commit_digest, u64::from(tag.0));
            self.commit_len += 1;
        }
    }

    #[inline]
    pub(crate) fn note_trap(&mut self, kind: TrapKind) {
        // First trap wins (there is at most one per run anyway).
        if self.trap.is_none() {
            self.trap = Some(kind);
        }
    }
}

/// Final architectural state of a simulation, for baseline-vs-adapted
/// equivalence checks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArchSnapshot {
    /// Final main-thread register file, all [`NUM_REGS`] registers.
    /// Callers compare only the registers the *original* program
    /// mentions: stub scratch registers are deliberately chosen from
    /// never-mentioned registers and legitimately differ.
    pub regs: Vec<u64>,
    /// Order-independent digest over all nonzero memory words
    /// (`addr -> value`). Unwritten memory reads as zero, so zero-valued
    /// words are excluded to keep the digest a function of the semantic
    /// memory state.
    pub mem_digest: u64,
    /// How the run ended.
    pub trap: TrapKind,
    /// FNV digest of the main thread's committed-instruction tag stream,
    /// restricted to tags below the requested bound.
    pub commit_digest: u64,
    /// Number of committed main-thread instructions below the tag bound.
    pub commit_len: u64,
    /// Stores speculative threads *attempted* to execute (the engine
    /// drops them; any nonzero count is a codegen bug — §3.5 bans stores
    /// in slices).
    pub spec_store_attempts: u64,
    /// Speculative threads that terminated (self-kill, runaway kill, or
    /// silent kill on a wild control transfer).
    pub spec_kills: u64,
    /// Speculative threads still running when the main thread ended.
    pub spec_live_at_end: u64,
}

impl ArchSnapshot {
    /// Whether every spawned thread is accounted for: killed or still
    /// in flight when the run ended (`threads_spawned` from the matching
    /// [`crate::SimResult`]).
    pub fn spawns_balanced(&self, threads_spawned: u64) -> bool {
        self.spec_kills + self.spec_live_at_end == threads_spawned
    }

    /// The number of registers in [`ArchSnapshot::regs`].
    pub fn reg_count() -> usize {
        NUM_REGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_digest_is_order_sensitive_and_bounded() {
        let mut a = SnapshotRec::new(2);
        a.record_commit(InstTag(0));
        a.record_commit(InstTag(1));
        a.record_commit(InstTag(7)); // above bound: ignored
        let mut b = SnapshotRec::new(2);
        b.record_commit(InstTag(1));
        b.record_commit(InstTag(0));
        assert_eq!(a.commit_len, 2);
        assert_eq!(b.commit_len, 2);
        assert_ne!(a.commit_digest, b.commit_digest, "order matters");
    }

    #[test]
    fn first_trap_wins() {
        let mut r = SnapshotRec::new(0);
        r.note_trap(TrapKind::Halted);
        r.note_trap(TrapKind::CycleCap);
        assert_eq!(r.trap, Some(TrapKind::Halted));
        assert_eq!(TrapKind::WildIndirectCall.name(), "wild-indirect-call");
    }
}
