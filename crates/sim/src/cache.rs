//! The timestamped cache hierarchy: L1D, L2, L3, fill buffer (MSHR), TLB.
//!
//! Rather than stepping every cache event on the global clock, each line
//! records the cycle its data arrives (`valid_from`). An access at time
//! `t` to a line still in transit is a *partial* hit — exactly the
//! "partial miss" category of Figure 9: "accesses to cache lines which
//! were already in transit to L1 cache due to accesses by prior loads
//! from the main thread or from a prefetch".

use crate::config::{CacheConfig, MachineConfig};

/// Where a load was satisfied (Figure 9's categories).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HitWhere {
    /// Hit in the L1 data cache.
    L1,
    /// Satisfied by the L2 cache.
    L2,
    /// Line already in transit from the L2 cache.
    L2Partial,
    /// Satisfied by the L3 cache.
    L3,
    /// Line already in transit from the L3 cache.
    L3Partial,
    /// Satisfied by main memory.
    Mem,
    /// Line already in transit from main memory.
    MemPartial,
}

impl HitWhere {
    /// The partial-hit variant for a fill that originated at this level.
    pub fn to_partial(self) -> HitWhere {
        match self {
            HitWhere::L2 | HitWhere::L2Partial => HitWhere::L2Partial,
            HitWhere::L3 | HitWhere::L3Partial => HitWhere::L3Partial,
            HitWhere::Mem | HitWhere::MemPartial => HitWhere::MemPartial,
            HitWhere::L1 => HitWhere::L1,
        }
    }

    /// Whether the access missed L1 (everything but [`HitWhere::L1`]).
    pub fn is_l1_miss(self) -> bool {
        self != HitWhere::L1
    }
}

/// Result of a hierarchy access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle at which the loaded value is usable.
    pub ready_at: u64,
    /// Which level satisfied the access.
    pub hit: HitWhere,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    /// Cycle the data arrives; accesses before this are partial hits.
    valid_from: u64,
    /// Origin of the in-flight fill (for partial classification).
    origin: HitWhere,
    /// LRU timestamp.
    last_used: u64,
}

/// One set-associative cache level, stored as a single contiguous
/// `sets × assoc` array (plus a per-set occupancy count) instead of a
/// `Vec<Vec<Line>>` — one allocation, no per-set pointer chasing, and
/// a whole 4-way set fits in two cache lines of host memory.
///
/// Occupied ways of a set behave exactly like the old per-set `Vec`:
/// lookups scan ways in order, insertion appends at the occupancy
/// cursor, and a full set evicts the first way with the minimum
/// `last_used` via the same swap-remove-then-push dance (the evictee is
/// replaced by the last occupied way, and the new line lands in the
/// last slot). Keeping that order bit-identical keeps every simulated
/// cycle count unchanged.
#[derive(Clone, Debug)]
struct Level {
    /// All ways of all sets: set `s` occupies `lines[s*assoc..(s+1)*assoc]`.
    lines: Vec<Line>,
    /// Occupied ways per set (never exceeds `assoc`).
    occupancy: Vec<u8>,
    assoc: usize,
    set_shift: u32,
    set_mask: u64,
    latency: u64,
}

const EMPTY_LINE: Line = Line { tag: 0, valid_from: 0, origin: HitWhere::L1, last_used: 0 };

impl Level {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(sets.is_power_of_two(), "cache set count must be a power of two");
        assert!(cfg.assoc <= u8::MAX as usize, "associativity exceeds occupancy counter");
        Level {
            lines: vec![EMPTY_LINE; sets * cfg.assoc],
            occupancy: vec![0; sets],
            assoc: cfg.assoc,
            set_shift: cfg.line.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            latency: cfg.latency,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.set_shift) & self.set_mask) as usize
    }

    /// Look the line up; on hit, refresh LRU and return it.
    fn lookup(&mut self, line_addr: u64, now: u64) -> Option<Line> {
        let si = self.set_of(line_addr);
        let base = si * self.assoc;
        let set = &mut self.lines[base..base + self.occupancy[si] as usize];
        if let Some(l) = set.iter_mut().find(|l| l.tag == line_addr) {
            l.last_used = now;
            Some(*l)
        } else {
            None
        }
    }

    /// Insert (or refresh) a line arriving at `valid_from`, evicting LRU.
    fn fill(&mut self, line_addr: u64, valid_from: u64, origin: HitWhere, now: u64) {
        let si = self.set_of(line_addr);
        let base = si * self.assoc;
        let len = self.occupancy[si] as usize;
        let set = &mut self.lines[base..base + len];
        if let Some(l) = set.iter_mut().find(|l| l.tag == line_addr) {
            // Refill of a present line: keep the earlier arrival.
            if valid_from < l.valid_from {
                l.valid_from = valid_from;
                l.origin = origin;
            }
            l.last_used = now;
            return;
        }
        let new = Line { tag: line_addr, valid_from, origin, last_used: now };
        if len >= self.assoc {
            // Evict the first least-recently-used way. The old per-set
            // `Vec` did `swap_remove(vi)` then `push`: the last way moves
            // into the victim's slot and the new line takes the last one.
            let (vi, _) =
                set.iter().enumerate().min_by_key(|(_, l)| l.last_used).expect("nonempty set");
            set[vi] = set[len - 1];
            set[len - 1] = new;
        } else {
            self.lines[base + len] = new;
            self.occupancy[si] += 1;
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct MshrEntry {
    line: u64,
    ready_at: u64,
    origin: HitWhere,
}

/// A simple LRU TLB over page numbers.
///
/// The entry list keeps the original fully-associative LRU semantics
/// (first-minimum eviction, swap-remove insertion), but lookups no
/// longer scan it: a direct-indexed hint table maps `page mod size` to
/// a candidate entry index, validated by page compare. Programs touch
/// the same few pages over and over, so the common case is one array
/// read plus one compare instead of a 128-entry linear scan. A stale
/// hint (entry moved or evicted since it was recorded) just falls back
/// to the scan and is repaired, never changing hit/miss outcomes.
#[derive(Clone, Debug)]
struct Tlb {
    entries: Vec<(u64, u64)>, // (page, last_used)
    /// `page & hint_mask` → entry index + 1 (0 = no hint recorded).
    hints: Vec<u32>,
    hint_mask: u64,
    capacity: usize,
    page_shift: u32,
}

impl Tlb {
    fn new(capacity: usize, page_size: u64) -> Self {
        // 4× capacity keeps the hint slots sparse enough that pages in
        // residence rarely collide.
        let hint_slots = (capacity.max(1) * 4).next_power_of_two();
        Tlb {
            entries: Vec::with_capacity(capacity),
            hints: vec![0; hint_slots],
            hint_mask: hint_slots as u64 - 1,
            capacity,
            page_shift: page_size.trailing_zeros(),
        }
    }

    /// Returns true on TLB hit; inserts on miss.
    fn access(&mut self, addr: u64, now: u64) -> bool {
        let page = addr >> self.page_shift;
        let slot = (page & self.hint_mask) as usize;
        // Fast path: the hint points straight at this page's entry.
        let hinted = self.hints[slot] as usize;
        if hinted > 0 {
            if let Some(e) = self.entries.get_mut(hinted - 1) {
                if e.0 == page {
                    e.1 = now;
                    return true;
                }
            }
        }
        // Hint cold, stale, or collided: scan, then repair the hint.
        if let Some(i) = self.entries.iter().position(|(p, _)| *p == page) {
            self.entries[i].1 = now;
            self.hints[slot] = i as u32 + 1;
            return true;
        }
        if self.entries.len() >= self.capacity {
            let (vi, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lu))| *lu)
                .expect("nonempty tlb");
            self.entries.swap_remove(vi);
        }
        self.entries.push((page, now));
        self.hints[slot] = self.entries.len() as u32;
        false
    }
}

/// The shared three-level hierarchy plus fill buffer and TLB.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Level,
    l2: Level,
    l3: Level,
    mshr: Vec<MshrEntry>,
    mshr_capacity: usize,
    tlb: Tlb,
    tlb_penalty: u64,
    mem_latency: u64,
    line_mask: u64,
    /// Prefetches dropped because the fill buffer was full.
    pub dropped_prefetches: u64,
    /// Loads delayed because the fill buffer was full.
    pub mshr_stalls: u64,
}

impl Hierarchy {
    /// Build the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        Hierarchy {
            l1: Level::new(&cfg.l1d),
            l2: Level::new(&cfg.l2),
            l3: Level::new(&cfg.l3),
            mshr: Vec::new(),
            mshr_capacity: cfg.fill_buffer,
            tlb: Tlb::new(cfg.tlb_entries, cfg.page_size),
            tlb_penalty: cfg.tlb_miss_penalty,
            mem_latency: cfg.mem_latency,
            line_mask: !(cfg.l1d.line as u64 - 1),
            dropped_prefetches: 0,
            mshr_stalls: 0,
        }
    }

    fn retire_mshr(&mut self, now: u64) {
        self.mshr.retain(|e| e.ready_at > now);
    }

    /// Number of fills in flight at `now`.
    pub fn mshr_in_flight(&mut self, now: u64) -> usize {
        self.retire_mshr(now);
        self.mshr.len()
    }

    /// Perform a demand load at cycle `now`.
    pub fn access_load(&mut self, addr: u64, now: u64) -> AccessResult {
        self.access(addr, now, false).expect("demand loads are never dropped")
    }

    /// Perform a store at cycle `now` (write-allocate; the thread does not
    /// wait for the fill). Returns where the line was found.
    pub fn access_store(&mut self, addr: u64, now: u64) -> HitWhere {
        match self.access(addr, now, false) {
            Some(r) => r.hit,
            None => HitWhere::Mem,
        }
    }

    /// Perform a software prefetch (`lfetch`). Dropped (returns `None`)
    /// when the fill buffer is full, like the real instruction.
    pub fn access_prefetch(&mut self, addr: u64, now: u64) -> Option<AccessResult> {
        let line = addr & self.line_mask;
        // A prefetch that hits L1 or an in-flight fill is free.
        if let Some(l) = self.l1.lookup(line, now) {
            let hit = if l.valid_from <= now { HitWhere::L1 } else { l.origin.to_partial() };
            return Some(AccessResult { ready_at: now.max(l.valid_from), hit });
        }
        self.retire_mshr(now);
        if self.mshr.len() >= self.mshr_capacity {
            self.dropped_prefetches += 1;
            return None;
        }
        self.access(addr, now, true)
    }

    fn access(&mut self, addr: u64, now: u64, is_prefetch: bool) -> Option<AccessResult> {
        let line = addr & self.line_mask;
        let tlb_extra = if self.tlb.access(addr, now) { 0 } else { self.tlb_penalty };

        // L1.
        if let Some(l) = self.l1.lookup(line, now) {
            if l.valid_from <= now {
                return Some(AccessResult {
                    ready_at: now + self.l1.latency + tlb_extra,
                    hit: HitWhere::L1,
                });
            }
            return Some(AccessResult {
                ready_at: l.valid_from + tlb_extra,
                hit: l.origin.to_partial(),
            });
        }
        // In-flight fill?
        self.retire_mshr(now);
        if let Some(e) = self.mshr.iter().find(|e| e.line == line) {
            return Some(AccessResult {
                ready_at: e.ready_at + tlb_extra,
                hit: e.origin.to_partial(),
            });
        }
        // Fill buffer full: a demand miss waits for the earliest entry to
        // retire, then proceeds from that time.
        let mut t = now;
        if self.mshr.len() >= self.mshr_capacity {
            if is_prefetch {
                self.dropped_prefetches += 1;
                return None;
            }
            self.mshr_stalls += 1;
            t = self.mshr.iter().map(|e| e.ready_at).min().unwrap_or(now);
            self.mshr.retain(|e| e.ready_at > t);
        }

        // L2.
        let (ready, origin) = if let Some(l) = self.l2.lookup(line, t) {
            if l.valid_from <= t {
                (t + self.l2.latency, HitWhere::L2)
            } else {
                (l.valid_from.max(t + self.l2.latency), l.origin.to_partial())
            }
        } else if let Some(l) = self.l3.lookup(line, t) {
            // L3.
            let r = if l.valid_from <= t {
                (t + self.l3.latency, HitWhere::L3)
            } else {
                (l.valid_from.max(t + self.l3.latency), l.origin.to_partial())
            };
            // Fill L2 on the way in.
            self.l2.fill(line, r.0, HitWhere::L3, t);
            r
        } else {
            // Memory.
            let r = (t + self.mem_latency, HitWhere::Mem);
            self.l3.fill(line, r.0, HitWhere::Mem, t);
            self.l2.fill(line, r.0, HitWhere::Mem, t);
            r
        };
        // Fill L1 and track the in-flight line.
        self.l1.fill(line, ready, origin, t);
        self.mshr.push(MshrEntry { line, ready_at: ready, origin });
        Some(AccessResult { ready_at: ready + tlb_extra, hit: origin })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn hier() -> Hierarchy {
        Hierarchy::new(&MachineConfig::in_order())
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = hier();
        let r = h.access_load(0x10000, 100);
        assert_eq!(r.hit, HitWhere::Mem);
        // Memory latency plus the cold-TLB penalty.
        assert_eq!(r.ready_at, 100 + 230 + 30);
    }

    #[test]
    fn second_access_hits_l1_after_fill() {
        let mut h = hier();
        let r1 = h.access_load(0x10000, 0);
        let r2 = h.access_load(0x10000, r1.ready_at + 1);
        assert_eq!(r2.hit, HitWhere::L1);
        assert_eq!(r2.ready_at, r1.ready_at + 1 + 2);
    }

    #[test]
    fn access_during_fill_is_partial() {
        let mut h = hier();
        let r1 = h.access_load(0x10000, 0);
        let r2 = h.access_load(0x10008, 10); // same 64B line, still in transit
        assert_eq!(r2.hit, HitWhere::MemPartial);
        // The fill itself lands at 230 (r1 additionally paid the TLB miss).
        assert_eq!(r2.ready_at, 230);
        assert!(r2.ready_at <= r1.ready_at);
    }

    #[test]
    fn different_line_misses_independently() {
        let mut h = hier();
        h.access_load(0x10000, 0);
        let r = h.access_load(0x10040, 0);
        assert_eq!(r.hit, HitWhere::Mem);
    }

    #[test]
    fn prefetch_then_load_hits() {
        let mut h = hier();
        let p = h.access_prefetch(0x20000, 0).unwrap();
        assert_eq!(p.hit, HitWhere::Mem);
        // Load after the prefetch completes: L1 hit.
        let r = h.access_load(0x20000, p.ready_at + 1);
        assert_eq!(r.hit, HitWhere::L1);
        // Load while the prefetch is in flight: partial.
        let mut h = hier();
        let p = h.access_prefetch(0x20000, 0).unwrap();
        let r = h.access_load(0x20000, p.ready_at / 2);
        assert_eq!(r.hit, HitWhere::MemPartial);
        // The in-flight fill lands at 230; the prefetch result additionally
        // included its own TLB-miss penalty.
        assert_eq!(r.ready_at, 230);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = hier();
        // Fill one L1 set beyond associativity. L1: 64 sets, 4 ways, so
        // addresses 64B apart with the same set index are 64*64 = 4096 apart.
        let stride = 64 * 64;
        let mut t = 0;
        for i in 0..5u64 {
            let r = h.access_load(0x100000 + i * stride, t);
            t = r.ready_at + 1;
        }
        // The first line was evicted from L1 but lives in L2.
        let r = h.access_load(0x100000, t);
        assert_eq!(r.hit, HitWhere::L2);
        assert_eq!(r.ready_at, t + 14);
    }

    #[test]
    fn fill_buffer_limits_outstanding_prefetches() {
        let mut h = hier();
        for i in 0..16u64 {
            assert!(h.access_prefetch(0x30000 + i * 64, 0).is_some());
        }
        assert!(h.access_prefetch(0x40000, 0).is_none(), "17th prefetch dropped");
        assert_eq!(h.dropped_prefetches, 1);
        // After the fills complete there is room again.
        assert!(h.access_prefetch(0x40000, 300).is_some());
    }

    #[test]
    fn demand_load_waits_for_mshr_capacity() {
        let mut h = hier();
        for i in 0..16u64 {
            h.access_load(0x30000 + i * 64, 0);
        }
        let r = h.access_load(0x50000, 1);
        // Had to wait for an entry to retire at 230, then pay memory plus
        // the cold-TLB penalty for the new page.
        assert_eq!(r.ready_at, 230 + 230 + 30);
        assert_eq!(h.mshr_stalls, 1);
    }

    #[test]
    fn tlb_miss_adds_penalty_once_per_page() {
        let mut h = hier();
        let r1 = h.access_load(0x80000, 0);
        // Cold TLB: first access pays the 30-cycle penalty on top.
        assert_eq!(r1.ready_at, 230 + 30);
        let r2 = h.access_load(0x80040, r1.ready_at);
        // Same page: no TLB penalty.
        assert_eq!(r2.ready_at, r1.ready_at + 230);
    }

    #[test]
    fn store_allocates_line() {
        let mut h = hier();
        let w = h.access_store(0x90000, 0);
        assert_eq!(w, HitWhere::Mem);
        let r = h.access_load(0x90000, 300);
        assert_eq!(r.hit, HitWhere::L1);
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The pre-flattening `Vec<Vec<Line>>` level, kept as a reference
    /// model: the contiguous layout must match it decision for decision.
    struct RefLevel {
        sets: Vec<Vec<Line>>,
        assoc: usize,
        set_shift: u32,
        set_mask: u64,
    }

    impl RefLevel {
        fn set_of(&self, line_addr: u64) -> usize {
            ((line_addr >> self.set_shift) & self.set_mask) as usize
        }

        fn lookup(&mut self, line_addr: u64, now: u64) -> Option<Line> {
            let si = self.set_of(line_addr);
            self.sets[si].iter_mut().find(|l| l.tag == line_addr).map(|l| {
                l.last_used = now;
                *l
            })
        }

        fn fill(&mut self, line_addr: u64, valid_from: u64, origin: HitWhere, now: u64) {
            let si = self.set_of(line_addr);
            let set = &mut self.sets[si];
            if let Some(l) = set.iter_mut().find(|l| l.tag == line_addr) {
                if valid_from < l.valid_from {
                    l.valid_from = valid_from;
                    l.origin = origin;
                }
                l.last_used = now;
                return;
            }
            if set.len() >= self.assoc {
                let (vi, _) = set.iter().enumerate().min_by_key(|(_, l)| l.last_used).unwrap();
                set.swap_remove(vi);
            }
            set.push(Line { tag: line_addr, valid_from, origin, last_used: now });
        }
    }

    #[test]
    fn flattened_level_matches_vec_of_vecs_reference() {
        let cfg = MachineConfig::in_order();
        let mut flat = Level::new(&cfg.l1d);
        let mut reference = RefLevel {
            sets: vec![Vec::new(); cfg.l1d.num_sets()],
            assoc: cfg.l1d.assoc,
            set_shift: cfg.l1d.line.trailing_zeros(),
            set_mask: (cfg.l1d.num_sets() - 1) as u64,
        };
        let mut s = 2002u64;
        for t in 0..20_000u64 {
            // A handful of hot sets so evictions and refills are common.
            let line = (xorshift(&mut s) % 512) * 64;
            if xorshift(&mut s).is_multiple_of(3) {
                let vf = t + xorshift(&mut s) % 100;
                flat.fill(line, vf, HitWhere::Mem, t);
                reference.fill(line, vf, HitWhere::Mem, t);
            } else {
                let a = flat.lookup(line, t);
                let b = reference.lookup(line, t);
                assert_eq!(a.is_some(), b.is_some(), "presence diverged at step {t}");
                if let (Some(a), Some(b)) = (a, b) {
                    assert_eq!(a.tag, b.tag);
                    assert_eq!(a.valid_from, b.valid_from);
                    assert_eq!(a.origin, b.origin);
                }
            }
        }
    }

    #[test]
    fn hinted_tlb_matches_linear_scan_reference() {
        // Reference: the old purely-linear TLB (inlined).
        let capacity = 16;
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut tlb = Tlb::new(capacity, 4096);
        let mut s = 42u64;
        for now in 0..50_000u64 {
            // 24 hot pages over a 16-entry TLB: plenty of eviction, and
            // page numbers far enough apart to exercise hint collisions.
            let page = (xorshift(&mut s) % 24) * 257;
            let addr = page << 12;
            let ref_hit = if let Some(e) = reference.iter_mut().find(|(p, _)| *p == page) {
                e.1 = now;
                true
            } else {
                if reference.len() >= capacity {
                    let (vi, _) =
                        reference.iter().enumerate().min_by_key(|(_, (_, lu))| *lu).unwrap();
                    reference.swap_remove(vi);
                }
                reference.push((page, now));
                false
            };
            assert_eq!(tlb.access(addr, now), ref_hit, "hit/miss diverged at cycle {now}");
            assert_eq!(tlb.entries, reference, "entry state diverged at cycle {now}");
        }
    }
}
