//! The cycle-stepped SMT execution engine.
//!
//! Both research Itanium models share one engine. Instructions execute
//! *functionally* in program order per thread at dispatch (so the machine
//! always follows the correct path), while a timing model decides when
//! their results become available:
//!
//! * **In-order** (12-stage): an instruction issues only when its sources
//!   are ready — the pipeline stalls on *use* of the destination register
//!   of an outstanding load miss, exactly the behaviour §4.3 highlights.
//! * **Out-of-order** (16-stage): dispatch fills a per-thread 255-entry
//!   ROB and 18-entry reservation station; an instruction's start time is
//!   the max of its operands' ready times (perfect renaming), commit is
//!   in order. Branch mispredictions redirect fetch at branch *resolve*
//!   time plus the deeper front-end penalty.
//!
//! SMT fetch/issue bandwidth follows Table 1: two bundles from one thread
//! or one bundle each from two threads per cycle. The main thread has
//! fetch priority; speculative threads round-robin for the rest.
//!
//! Spawning follows §3.4.2: `chk.c` redirects the main thread to its stub
//! block when a context is free (charged like an exception flush), the
//! stub's `spawn` binds a free context to the slice block and passes the
//! live-in-buffer slot, and speculative threads never modify main-thread
//! architectural state (the verifier bans stores in slices; the engine
//! additionally drops any store a speculative thread tries to execute).

use crate::branch::{static_pc, Btb, Gshare};
use crate::cache::{Hierarchy, HitWhere};
use crate::config::{MachineConfig, MemoryMode, PipelineKind};
use crate::decode::{fu_class, DecodedProgram, FuClass};
use crate::exec::{alu_eval, cmp_eval, falu_eval, RegFile, Scoreboard};
use crate::mem::{LiveInBuffer, Memory, LIB_NO_SLOT};
use crate::snapshot::{ArchSnapshot, SnapshotRec, TrapKind};
use crate::stats::{SimResult, WindowStats};
use crate::stride::StridePrefetcher;
use crate::telemetry::Telemetry;
use crate::window::BatchOutcome;
use ssp_ir::reg::{conv, NUM_REGS};
use ssp_ir::{BlockId, FuncId, InstRef, Op, Program};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Why a thread could not issue/dispatch this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StallReason {
    /// Waiting on a source register; payload is the producing load's hit
    /// level if the producer was a load.
    SrcNotReady(Option<HitWhere>),
    /// No functional unit of the needed class.
    Structural,
    /// Front end redirecting (mispredict, BTB miss, spawn flush).
    FetchWait,
    /// OOO: reorder buffer full; payload is the commit-blocking load's
    /// hit level, if the blocker is a load.
    RobFull(Option<HitWhere>),
    /// OOO: reservation station full; payload is the oldest outstanding
    /// load's hit level, if one is pending (the RS is usually what backs
    /// up behind long misses, since it is far smaller than the ROB).
    RsFull(Option<HitWhere>),
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct RobEntry {
    /// When the instruction leaves the reservation station (issues).
    pub(crate) start_at: u64,
    pub(crate) complete_at: u64,
    pub(crate) is_load: bool,
    pub(crate) hit: Option<HitWhere>,
}

#[derive(Clone, Debug)]
pub(crate) struct Thread {
    pub(crate) rf: RegFile,
    pub(crate) pc: Option<InstRef>,
    pub(crate) call_stack: Vec<InstRef>,
    pub(crate) sb: Scoreboard,
    pub(crate) fetch_ready: u64,
    pub(crate) speculative: bool,
    pub(crate) insts: u64,
    pub(crate) owned_slot: Option<u64>,
    pub(crate) rob: VecDeque<RobEntry>,
    /// In-order bookkeeping: outstanding load misses `(ready_at, level)`.
    pub(crate) outstanding: Vec<(u64, HitWhere)>,
    /// Fast-engine event queue: reservation-station leave times
    /// (`start_at`) of dispatched instructions that were still waiting
    /// for operands when they entered the ROB. Times only move forward,
    /// so entries at or before the present are popped lazily on query
    /// and each dispatch is amortised O(log RS) instead of the O(ROB)
    /// occupancy rescan the stepped oracle performs. Maintained only by
    /// the fast engine; the stepped twin keeps the scans.
    pub(crate) rs_waiting: BinaryHeap<Reverse<u64>>,
    /// Fast-engine event queue: `(complete_at, hit)` of every dispatched
    /// load, in program order. The front (after lazily dropping
    /// completed entries) is the oldest outstanding load — the
    /// reservation-station stall payload.
    pub(crate) loads_q: VecDeque<(u64, HitWhere)>,
    /// Fast-engine event queue: completion times of dispatched loads
    /// that missed L1, in program order; non-empty after lazy popping
    /// means a miss is outstanding (the Figure-10 `cache_exec` test).
    pub(crate) missload_q: VecDeque<u64>,
    /// Fast-engine wakeup cache: a proven lower bound on the next cycle
    /// this thread could issue, set when an issue attempt stalls on an
    /// event with a known time ([`Engine::spec_blocked_until`]). While
    /// `blocked_until > cycle` the scheduler skips the thread with one
    /// compare instead of re-deriving the stall from the scoreboard or
    /// occupancy queues every cycle. The bound stays valid while the
    /// thread sleeps because everything it waits on is thread-local and
    /// monotone: its scoreboard and queues are written only by its own
    /// dispatch, and ready/completion times never move. Maintained only
    /// by the fast engine; the stepped oracle re-derives every stall.
    pub(crate) blocked_until: u64,
}

impl Thread {
    fn new() -> Self {
        Thread {
            rf: RegFile::new(),
            pc: None,
            call_stack: Vec::new(),
            sb: Scoreboard::new(),
            fetch_ready: 0,
            speculative: false,
            insts: 0,
            owned_slot: None,
            rob: VecDeque::new(),
            outstanding: Vec::new(),
            rs_waiting: BinaryHeap::new(),
            loads_q: VecDeque::new(),
            missload_q: VecDeque::new(),
            blocked_until: 0,
        }
    }

    pub(crate) fn active(&self) -> bool {
        self.pc.is_some()
    }

    /// Reference implementation of the outstanding-miss test: O(ROB)
    /// rescan, used by the stepped oracle.
    fn has_outstanding_miss(&self, now: u64) -> bool {
        self.outstanding.iter().any(|&(r, h)| r > now && h.is_l1_miss())
            || self.rob.iter().any(|e| {
                e.is_load && e.complete_at > now && e.hit.is_some_and(HitWhere::is_l1_miss)
            })
    }

    /// Fast-engine outstanding-miss test: pops expired miss completions
    /// and answers from queue emptiness — amortised O(1). Agrees with
    /// [`Thread::has_outstanding_miss`] by construction (entries are
    /// popped exactly when the rescan would stop counting them; a load
    /// cannot commit before it completes, so a queue entry never
    /// outlives its ROB entry observably).
    pub(crate) fn has_miss_fast(&mut self, now: u64) -> bool {
        while let Some(&c) = self.missload_q.front() {
            if c > now {
                break;
            }
            self.missload_q.pop_front();
        }
        !self.missload_q.is_empty()
            || self.outstanding.iter().any(|&(r, h)| r > now && h.is_l1_miss())
    }

    /// Number of dispatched instructions still waiting for operands
    /// (reservation-station occupancy), via the monotone event queue.
    pub(crate) fn rs_waiting_count(&mut self, now: u64) -> usize {
        while let Some(&Reverse(t)) = self.rs_waiting.peek() {
            if t > now {
                break;
            }
            self.rs_waiting.pop();
        }
        self.rs_waiting.len()
    }

    /// The oldest dispatched load still outstanding at `now`, via the
    /// monotone event queue: `(complete_at, hit)`.
    pub(crate) fn first_outstanding_load(&mut self, now: u64) -> Option<(u64, HitWhere)> {
        while let Some(&(c, _)) = self.loads_q.front() {
            if c > now {
                break;
            }
            self.loads_q.pop_front();
        }
        self.loads_q.front().copied()
    }
}

/// Replicate the per-cycle in-order commit the stepped engine would
/// perform for one thread over the window `[from, to]` (both
/// inclusive), in one pass: entry `k` pops at the later of its
/// completion time and the cycle commit bandwidth (`width` per cycle)
/// reaches it.
pub(crate) fn drain_thread(t: &mut Thread, width: usize, from: u64, to: u64) {
    let mut at_cycle = from;
    let mut used = 0usize;
    while let Some(e) = t.rob.front() {
        if e.complete_at > to {
            break;
        }
        if e.complete_at > at_cycle {
            at_cycle = e.complete_at;
            used = 0;
        }
        if used == width {
            at_cycle += 1;
            used = 0;
            if at_cycle > to {
                break;
            }
        }
        t.rob.pop_front();
        used += 1;
    }
}

/// What one simulated cycle did — the inputs to the event-driven
/// fast-forward decision in [`Engine::run_to_end`].
pub(crate) struct StepOutcome {
    /// The program halted this cycle.
    pub(crate) halt: bool,
    /// Instructions issued across *all* threads this cycle. Zero means
    /// every active thread was gated on a known future timestamp, which
    /// is exactly when the clock may jump.
    pub(crate) issued: usize,
    /// The main thread's stall classification (`None` when it issued or
    /// is inactive). Constant across a legal skip window, so skipped
    /// cycles are bulk-accounted under the same Figure-10 bucket.
    pub(crate) main_stall: Option<StallReason>,
}

/// What the engine should do after executing one instruction.
enum Flow {
    /// Keep issuing from this thread (fallthrough).
    Continue,
    /// Control transferred: end this thread's issue group.
    Redirect,
    /// The thread ended (kill/ret-from-empty-stack).
    ThreadDone,
    /// The whole simulation ends.
    Halt,
}

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine<'a> {
    pub(crate) prog: &'a Program,
    /// Pre-decoded side table: FU class, use lists, flags, and tags,
    /// computed once so the cycle loop allocates nothing.
    pub(crate) decode: DecodedProgram,
    /// When set, re-derive use lists and FU classes from the [`Op`] on
    /// every issue (the pre-optimization behaviour). Only differential
    /// tests use this; results must be bit-identical to the fast path.
    pub(crate) reference: bool,
    /// When set (the default), the cycle loop jumps over windows where
    /// no thread can issue: if every active thread is gated on a known
    /// future timestamp (`fetch_ready`, a source register's ready time,
    /// or a ROB entry's issue/completion time), the clock advances
    /// straight to the earliest such event and the skipped cycles are
    /// bulk-accounted. It also enables the busy-window batcher
    /// ([`crate::window`]) and the incremental event queues backing
    /// both. Every statistic, snapshot, and telemetry classification is
    /// byte-identical to the stepped engine; the stepped twins
    /// ([`simulate_stepped`] and friends) keep the original O(ROB)
    /// scans as the semantic oracle, so differential tests can assert
    /// exactly that.
    pub(crate) fast_forward: bool,
    /// When set, every fast next-event query is cross-checked against
    /// the brute-force O(ROB) rescan and any disagreement panics — the
    /// property-test hook behind [`simulate_crosschecked`].
    pub(crate) crosscheck: bool,
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) mem: Memory,
    pub(crate) lib: LiveInBuffer,
    pub(crate) hier: Hierarchy,
    pub(crate) gshare: Gshare,
    pub(crate) btb: Btb,
    pub(crate) threads: Vec<Thread>,
    pub(crate) cycle: u64,
    pub(crate) in_roi: bool,
    /// Whether the program contains ROI markers at all; if not, the whole
    /// run is the region of interest.
    pub(crate) has_roi: bool,
    pub(crate) result: SimResult,
    /// Per-cycle FU use (in-order); OOO books into `fu_ring`.
    pub(crate) fu_used: [usize; 4],
    pub(crate) fu_limits: [usize; 4],
    /// OOO functional-unit booking for future cycles, indexed from
    /// `fu_ring_base`.
    pub(crate) fu_ring: VecDeque<[u16; 4]>,
    pub(crate) fu_ring_base: u64,
    pub(crate) rr_next: usize,
    pub(crate) stride: Option<StridePrefetcher>,
    /// Structured-trace collector, present only under
    /// [`simulate_traced`]. `None` (the default) keeps every telemetry
    /// hook to a single branch — no allocation, no time query — so the
    /// untraced cycle loop is unchanged.
    pub(crate) telemetry: Option<Box<Telemetry>>,
    /// Architectural-state recorder, present only under
    /// [`simulate_snapshot`]. Same side-structure discipline as
    /// `telemetry`: `None` keeps every hook to a single branch.
    pub(crate) snap: Option<Box<SnapshotRec>>,
    /// Per-window instrumentation, present only under
    /// [`simulate_windowed`]. Same side-structure discipline as the
    /// recorders above; never feeds back into timing.
    pub(crate) winstats: Option<Box<WindowStats>>,
    /// Fast-engine cache of the main thread's stall classification while
    /// it sleeps on an in-order source stall (`blocked_until > cycle`).
    /// The payload is stable for the whole sleep: the thread's
    /// scoreboard is written only by its own execution, so the first
    /// unready source — and the cache level that produced it — cannot
    /// change before the cached wakeup, which is exactly that source's
    /// ready time.
    pub(crate) main_sleep_stall: Option<StallReason>,
}

impl<'a> Engine<'a> {
    /// Set up a machine to run `prog`.
    pub fn new(prog: &'a Program, cfg: &'a MachineConfig) -> Self {
        let mut mem = Memory::new();
        mem.load_image(&prog.image);
        let mut threads = vec![Thread::new(); cfg.num_contexts];
        // The main thread starts at the program entry with SP set.
        let entry = prog.func(prog.entry).entry;
        threads[0].pc = Some(InstRef { func: prog.entry, block: entry, idx: 0 });
        threads[0].rf.write(conv::SP, 0x7FFF_FF00_0000);
        let has_roi = prog.iter_funcs().any(|(_, f)| {
            f.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i.op, Op::RoiBegin)))
        });
        Engine {
            prog,
            decode: DecodedProgram::new(prog),
            reference: false,
            fast_forward: true,
            crosscheck: false,
            cfg,
            mem,
            lib: LiveInBuffer::new(cfg.lib_slots, cfg.lib_slot_words),
            hier: Hierarchy::new(cfg),
            gshare: Gshare::new(cfg.gshare_entries),
            btb: Btb::new(cfg.btb_entries, cfg.btb_assoc),
            threads,
            cycle: 0,
            in_roi: false,
            has_roi,
            result: SimResult::default(),
            fu_used: [0; 4],
            fu_limits: [cfg.int_units, cfg.fp_units, cfg.branch_units, cfg.mem_ports],
            fu_ring: VecDeque::new(),
            fu_ring_base: 0,
            rr_next: 1,
            stride: cfg.stride_prefetcher.then(|| StridePrefetcher::new(cfg.stride_degree)),
            telemetry: None,
            snap: None,
            winstats: None,
            main_sleep_stall: None,
        }
    }

    /// Run to `halt` (or the cycle cap) and return the statistics.
    pub fn run(mut self) -> SimResult {
        self.run_to_end();
        self.result
    }

    /// The body of [`Engine::run`], borrowed rather than consuming so
    /// [`simulate_traced`] can extract both the result and the trace.
    ///
    /// The fast engine runs a three-regime loop:
    ///
    /// * **busy windows** — when every speculative context is provably
    ///   unable to issue before a known horizon, the busy-window batcher
    ///   ([`crate::window`]) runs a lean main-thread-only replica of the
    ///   cycle loop up to that horizon;
    /// * **idle skips** — after a cycle where *nothing* issued anywhere,
    ///   every active thread is gated on a known future timestamp, so
    ///   the clock jumps straight to the earliest such event (clamped to
    ///   the cycle cap) and the skipped cycles are bulk-accounted under
    ///   the stall bucket the stepped engine would have charged;
    /// * **stepped cycles** — everything else goes through the full
    ///   [`Engine::step_cycle`].
    ///
    /// With [`Engine::fast_forward`] off, only the third regime runs —
    /// that is the stepped oracle the equivalence suite pits the other
    /// two against, byte for byte.
    fn run_to_end(&mut self) {
        let max = if self.cfg.max_cycles == 0 { u64::MAX } else { self.cfg.max_cycles };
        let mut halted = false;
        while self.cycle < max {
            if self.fast_forward {
                match self.try_busy_window(max) {
                    BatchOutcome::Halt => {
                        halted = true;
                        break;
                    }
                    BatchOutcome::Ran => continue,
                    BatchOutcome::NotApplicable => {}
                }
            }
            let step = self.step_cycle();
            // The halting cycle is excluded from `total_cycles` (the
            // clock is never advanced past it), so it must not be
            // counted as a stepped cycle either — the window regimes
            // partition exactly the cycles `total_cycles` counts.
            if !step.halt {
                if let Some(w) = self.winstats.as_deref_mut() {
                    w.stepped_cycles += 1;
                }
            }
            if step.halt {
                halted = true;
                break;
            }
            self.cycle += 1;
            if self.fast_forward && step.issued == 0 && self.cycle < max {
                self.fast_forward_clock(step.main_stall, max);
            }
        }
        self.result.halted = halted;
        self.result.total_cycles = self.cycle;
    }

    pub(crate) fn effective_roi(&self) -> bool {
        !self.has_roi || self.in_roi
    }

    /// The earliest cycle strictly after `now` (the no-progress cycle
    /// just completed) at which any thread's issue eligibility *or* its
    /// stall classification could change. Between `now + 1` and this
    /// cycle the stepped engine would repeat cycle `now` exactly:
    /// nothing issues, nothing commits, and the main thread's stall
    /// reason (including its cache-level payload) is unchanged.
    ///
    /// Computed from the incremental per-thread event queues — O(active
    /// threads) amortised, not O(ROB). Under [`Engine::crosscheck`],
    /// every query is verified against [`Engine::thread_event_brute`],
    /// the O(ROB) rescan spelling out the same event definition.
    fn next_event_cycle(&mut self, now: u64) -> u64 {
        let mut ev = u64::MAX;
        for tid in 0..self.threads.len() {
            let fast = self.thread_event_fast(tid, now);
            if self.crosscheck {
                let brute = self.thread_event_brute(tid, now);
                assert_eq!(
                    fast, brute,
                    "event-queue divergence: thread {tid}, now {now}: fast {fast} != brute {brute}"
                );
                assert!(fast > now, "thread {tid}: event {fast} not after now {now}");
            }
            ev = ev.min(fast);
        }
        ev
    }

    /// Per-thread next-event query backed by the incremental structures:
    /// the earliest cycle strictly after `now` at which thread `tid`'s
    /// issue eligibility or stall classification could change.
    ///
    /// The events, per pipeline:
    ///
    /// * inactive → `u64::MAX` (nothing will ever change);
    /// * front end redirecting → `fetch_ready` (its ROB keeps draining,
    ///   which [`Engine::drain_commits`] replicates);
    /// * **in-order** → the earliest ready time among the current
    ///   instruction's unready sources (bitset scoreboard query); if all
    ///   are ready the thread was gated on something same-cycle-stable
    ///   (e.g. a structural hazard), so `now + 1` guards the skip;
    /// * **out-of-order** → the minimum of the head-commit event (the
    ///   head's `complete_at`, or `now + 1` if it already completed and
    ///   pops at the very next commit), the earliest future
    ///   reservation-station leave time (`rs_waiting`), and the oldest
    ///   outstanding load's completion (`loads_q`, which re-evaluates
    ///   the RS-full stall payload). Interior non-load completions are
    ///   *not* events: commit is in order, so no entry pops before the
    ///   head completes, and occupancy counts only change at `start_at`
    ///   boundaries.
    pub(crate) fn thread_event_fast(&mut self, tid: usize, now: u64) -> u64 {
        if !self.threads[tid].active() {
            return u64::MAX;
        }
        if self.threads[tid].fetch_ready > now {
            return self.threads[tid].fetch_ready;
        }
        let soonest = match self.cfg.pipeline {
            PipelineKind::InOrder => {
                let at = self.threads[tid].pc.expect("active thread has a pc");
                let mask = self.decode.get(at).use_mask;
                self.threads[tid].sb.min_ready(&mask, now)
            }
            PipelineKind::OutOfOrder => {
                let t = &mut self.threads[tid];
                match t.rob.front().copied() {
                    None => u64::MAX,
                    Some(head) => {
                        let mut ev =
                            if head.complete_at <= now { now + 1 } else { head.complete_at };
                        while let Some(&Reverse(s)) = t.rs_waiting.peek() {
                            if s > now {
                                ev = ev.min(s);
                                break;
                            }
                            t.rs_waiting.pop();
                        }
                        if let Some((c, _)) = t.first_outstanding_load(now) {
                            ev = ev.min(c);
                        }
                        ev
                    }
                }
            }
        };
        if soonest == u64::MAX {
            // No future event found for a thread that just failed to
            // issue — never skip past it.
            now + 1
        } else {
            soonest
        }
    }

    /// Brute-force O(ROB) rescan computing exactly the same per-thread
    /// event as [`Engine::thread_event_fast`], straight from the
    /// architectural bookkeeping with no incremental state. The
    /// crosscheck harness ([`simulate_crosschecked`]) asserts the two
    /// agree on every query of a run.
    pub(crate) fn thread_event_brute(&self, tid: usize, now: u64) -> u64 {
        let t = &self.threads[tid];
        if !t.active() {
            return u64::MAX;
        }
        if t.fetch_ready > now {
            return t.fetch_ready;
        }
        let soonest = match self.cfg.pipeline {
            PipelineKind::InOrder => {
                let at = t.pc.expect("active thread has a pc");
                let mut soonest = u64::MAX;
                for &u in self.decode.get(at).uses() {
                    let r = t.sb.ready_at(u);
                    if r > now {
                        soonest = soonest.min(r);
                    }
                }
                soonest
            }
            PipelineKind::OutOfOrder => match t.rob.front() {
                None => u64::MAX,
                Some(head) => {
                    let mut ev = if head.complete_at <= now { now + 1 } else { head.complete_at };
                    for e in &t.rob {
                        if e.start_at > now {
                            ev = ev.min(e.start_at);
                        }
                    }
                    if let Some(e) = t.rob.iter().find(|e| e.is_load && e.complete_at > now) {
                        ev = ev.min(e.complete_at);
                    }
                    ev
                }
            },
        };
        if soonest == u64::MAX {
            now + 1
        } else {
            soonest
        }
    }

    /// Jump the clock from `self.cycle` (the first unsimulated cycle)
    /// to the next event, bulk-applying everything the stepped engine
    /// does on a no-progress cycle: Figure-10 stall accounting for the
    /// main thread, the speculative round-robin rotation, and in-order
    /// ROB commit draining.
    fn fast_forward_clock(&mut self, main_stall: Option<StallReason>, max: u64) {
        let target = self.next_event_cycle(self.cycle - 1).min(max);
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        if let Some(w) = self.winstats.as_deref_mut() {
            w.record_idle(skipped);
        }
        if self.cfg.pipeline == PipelineKind::OutOfOrder {
            self.drain_commits(self.cycle, target - 1);
        }
        // rr_next rotates every simulated cycle whether or not a
        // speculative thread issues; apply `skipped` rotations.
        self.rotate_rr(skipped);
        if self.effective_roi() {
            let hit = match main_stall {
                Some(StallReason::SrcNotReady(h))
                | Some(StallReason::RobFull(h))
                | Some(StallReason::RsFull(h)) => h,
                _ => None,
            };
            self.result.cycles += skipped;
            self.result.account_stalled(hit, skipped);
        }
        self.cycle = target;
    }

    /// Apply `k` cycles' worth of speculative round-robin rotation in
    /// closed form (equal to `k` applications of the per-cycle
    /// `rr_next = 1 + rr_next % (n - 1)` step).
    pub(crate) fn rotate_rr(&mut self, k: u64) {
        let n = self.threads.len();
        if n > 1 && k > 0 {
            let m = (n - 1) as u64;
            self.rr_next = 1 + ((self.rr_next as u64 - 1 + k % m) % m) as usize;
        }
    }

    /// Replicate the per-cycle in-order commit the stepped engine would
    /// perform over the skipped window `[from, to]` (both inclusive),
    /// in one pass, for every thread.
    pub(crate) fn drain_commits(&mut self, from: u64, to: u64) {
        let width = self.cfg.bundles_per_cycle * self.cfg.bundle_width;
        for t in &mut self.threads {
            drain_thread(t, width, from, to);
        }
    }

    /// Simulate one cycle.
    pub(crate) fn step_cycle(&mut self) -> StepOutcome {
        self.fu_used = [0; 4];
        self.advance_fu_ring();

        let width = self.cfg.bundle_width; // instructions per bundle
        let mut main_issued = 0usize;
        let mut spec_issued = 0usize;
        let mut main_stall: Option<StallReason> = None;
        let mut halt = false;

        // Thread selection, per Table 1 ("2 bundles from 1 thread or
        // 1 bundle each from 2 threads") with main-thread priority: the
        // main thread always gets the first bundle; the second goes to a
        // speculative thread (round-robin), falling back to whichever
        // side can use it when the other cannot.
        let n = self.threads.len();
        let mut bundles_left = self.cfg.bundles_per_cycle;
        let main_ready = self.threads[0].active() && self.threads[0].fetch_ready <= self.cycle;
        if self.threads[0].active() && !main_ready {
            main_stall = Some(StallReason::FetchWait);
        }
        if main_ready {
            if self.fast_forward && self.threads[0].blocked_until > self.cycle {
                // Sleeping on an in-order source stall: reuse the cached
                // classification instead of re-deriving it — the payload
                // is provably constant until the cached wakeup.
                main_stall = self.main_sleep_stall;
            } else {
                let (count, stall, halted) = self.issue_thread(0, width);
                main_issued = count;
                if count == 0 {
                    main_stall = stall;
                    if self.fast_forward
                        && self.cfg.pipeline == PipelineKind::InOrder
                        && matches!(stall, Some(StallReason::SrcNotReady(_)))
                    {
                        self.threads[0].blocked_until = self.spec_blocked_until(0);
                        self.main_sleep_stall = stall;
                    }
                }
                halt = halted;
                if count > 0 {
                    bundles_left -= 1;
                }
            }
        }
        // Speculative threads, round-robin, one bundle each.
        if !halt && n > 1 {
            let start = self.rr_next;
            self.rr_next = if start + 1 < n { start + 1 } else { 1 };
            let mut tid = start;
            for _ in 0..n - 1 {
                if bundles_left == 0 {
                    break;
                }
                let cur = tid;
                tid = if tid + 1 < n { tid + 1 } else { 1 };
                let tid = cur;
                if !self.threads[tid].active() || self.threads[tid].fetch_ready > self.cycle {
                    continue;
                }
                // Fast engine: a sleeping context (wakeup cached at stall
                // time) is skipped with one compare. The stepped oracle
                // re-attempts the issue, which has no side effects when
                // it stalls — the equivalence suite pins that down.
                if self.fast_forward && self.threads[tid].blocked_until > self.cycle {
                    continue;
                }
                let (count, _, halted) = self.issue_thread(tid, width);
                spec_issued += count;
                if halted {
                    halt = true;
                    break;
                }
                if count > 0 {
                    bundles_left -= 1;
                } else if self.fast_forward {
                    // Stalled: cache the proven wakeup so the next cycles
                    // skip this context without re-deriving the stall.
                    self.threads[tid].blocked_until = self.spec_blocked_until(tid);
                }
            }
        }
        // Leftover bundle back to the main thread ("2 bundles from 1") —
        // unless its front end was redirected by the first pass.
        if !halt
            && main_ready
            && bundles_left > 0
            && main_issued > 0
            && self.threads[0].active()
            && self.threads[0].fetch_ready <= self.cycle
        {
            let (count, _, halted) = self.issue_thread(0, bundles_left * width);
            main_issued += count;
            halt = halted;
        }

        // OOO commit.
        if self.cfg.pipeline == PipelineKind::OutOfOrder {
            let commit_width = self.cfg.bundles_per_cycle * width;
            for t in &mut self.threads {
                let mut committed = 0;
                while committed < commit_width {
                    match t.rob.front() {
                        Some(e) if e.complete_at <= self.cycle => {
                            t.rob.pop_front();
                            committed += 1;
                        }
                        _ => break,
                    }
                }
            }
        }

        // Cycle accounting for the main thread (Figure 10 categories).
        if self.effective_roi() {
            let has_miss = main_issued > 0 && self.main_has_miss();
            self.result.cycles_account(main_issued, main_stall, has_miss);
            self.result.cycles += 1;
        }
        StepOutcome { halt, issued: main_issued + spec_issued, main_stall }
    }

    /// Whether the main thread has an L1-missing load outstanding — the
    /// `exec` vs `cache_exec` test of Figure 10. The fast engine answers
    /// from the miss-completion queue; the stepped oracle rescans.
    pub(crate) fn main_has_miss(&mut self) -> bool {
        let now = self.cycle;
        if self.fast_forward {
            self.threads[0].has_miss_fast(now)
        } else {
            self.threads[0].has_outstanding_miss(now)
        }
    }

    pub(crate) fn advance_fu_ring(&mut self) {
        while self.fu_ring_base < self.cycle {
            if self.fu_ring.pop_front().is_none() {
                // Ring already empty — after a clock jump, snap the base
                // forward in O(1) instead of iterating the skipped span.
                self.fu_ring_base = self.cycle;
                break;
            }
            self.fu_ring_base += 1;
        }
    }

    /// Book a functional unit of `class` at or after `earliest` (OOO).
    fn book_fu(&mut self, class: FuClass, earliest: u64) -> u64 {
        let mut t = earliest.max(self.cycle);
        loop {
            let off = (t - self.fu_ring_base) as usize;
            while self.fu_ring.len() <= off {
                self.fu_ring.push_back([0; 4]);
            }
            if (self.fu_ring[off][class as usize] as usize) < self.fu_limits[class as usize] {
                self.fu_ring[off][class as usize] += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Issue (in-order) or dispatch (OOO) up to `max` instructions from
    /// thread `tid`. Returns `(issued, stall, halted)`.
    pub(crate) fn issue_thread(
        &mut self,
        tid: usize,
        max: usize,
    ) -> (usize, Option<StallReason>, bool) {
        let mut count = 0usize;
        let ooo = self.cfg.pipeline == PipelineKind::OutOfOrder;
        // `prog` is copied out of `self` so `op` borrows the program (not
        // the engine) and stays usable across `&mut self` calls below —
        // the per-issue `Op::clone` this loop used to do is gone.
        let prog = self.prog;
        while count < max {
            let Some(at) = self.threads[tid].pc else {
                return (count, None, false);
            };
            let op = &prog.inst(at).op;

            if ooo {
                if self.threads[tid].rob.len() >= self.cfg.rob_entries {
                    let head = self.threads[tid].rob.front().copied();
                    let r = head.map(|e| {
                        if e.is_load && e.complete_at > self.cycle {
                            StallReason::RobFull(e.hit)
                        } else {
                            StallReason::RobFull(None)
                        }
                    });
                    return (count, r.or(Some(StallReason::RobFull(None))), false);
                }
                // RS entries are freed at issue, not completion: only
                // instructions still waiting for operands occupy one.
                // The fast engine answers from the monotone event queue;
                // the stepped oracle keeps the O(ROB) occupancy rescan.
                let now = self.cycle;
                let waiting = if self.fast_forward {
                    self.threads[tid].rs_waiting_count(now)
                } else {
                    self.threads[tid].rob.iter().filter(|e| e.start_at > now).count()
                };
                if waiting >= self.cfg.rs_entries {
                    let h = if self.fast_forward {
                        self.threads[tid].first_outstanding_load(now).map(|(_, h)| h)
                    } else {
                        self.threads[tid]
                            .rob
                            .iter()
                            .find(|e| e.is_load && e.complete_at > now)
                            .and_then(|e| e.hit)
                    };
                    return (count, Some(StallReason::RsFull(h)), false);
                }
            } else {
                // In-order: all sources must be ready now. The stall
                // payload reports the *first* unready source in use
                // order, which the decoded table preserves. Use lists
                // are short (≤3), so a direct walk beats the bitset
                // filter here; the pending-bitset queries earn their
                // keep in the event computations (`min_ready` /
                // `max_ready`), where the *unready subset* is needed.
                let mut stall = None;
                if self.reference {
                    let mut uses = Vec::new();
                    op.uses_into(&mut uses);
                    for u in uses {
                        if self.threads[tid].sb.ready_at(u) > self.cycle {
                            stall = Some(self.threads[tid].sb.src_of(u));
                            break;
                        }
                    }
                } else {
                    for &u in self.decode.get(at).uses() {
                        if self.threads[tid].sb.ready_at(u) > self.cycle {
                            stall = Some(self.threads[tid].sb.src_of(u));
                            break;
                        }
                    }
                }
                if let Some(src) = stall {
                    return (count, Some(StallReason::SrcNotReady(src)), false);
                }
            }

            // Functional-unit check (in-order uses per-cycle counters;
            // OOO books at the computed start time inside exec).
            if !ooo {
                let class = self.fu_of(at, op);
                if self.fu_used[class as usize] >= self.fu_limits[class as usize] {
                    return (count, Some(StallReason::Structural), false);
                }
                self.fu_used[class as usize] += 1;
            }

            let flow = self.exec_inst(tid, at, op);
            count += 1;
            if tid == 0 {
                if let Some(s) = self.snap.as_deref_mut() {
                    // Per-thread dispatch is in program order and every
                    // dispatched instruction retires (the machine always
                    // follows the correct path), so the main thread's
                    // dispatch stream *is* its committed stream.
                    s.record_commit(self.decode.get(at).tag);
                }
            }
            if tid == 0 && self.effective_roi() {
                self.result.main_insts += 1;
            } else if tid != 0 && self.effective_roi() {
                self.result.spec_insts += 1;
            }
            if self.threads[tid].speculative {
                self.threads[tid].insts += 1;
                if self.threads[tid].insts > self.cfg.spec_inst_cap {
                    self.kill_thread(tid);
                    self.result.runaway_kills += 1;
                    return (count, None, false);
                }
            }
            match flow {
                Flow::Continue => {}
                Flow::Redirect | Flow::ThreadDone => return (count, None, false),
                Flow::Halt => return (count, None, true),
            }
        }
        (count, None, false)
    }

    fn next_ref(&self, at: InstRef) -> InstRef {
        InstRef { idx: at.idx + 1, ..at }
    }

    fn block_start(&self, func: FuncId, block: BlockId) -> InstRef {
        InstRef { func, block, idx: 0 }
    }

    /// Start time of an instruction: current cycle (in-order) or the max
    /// of its operands' ready times (OOO, perfect renaming). The fast
    /// engine computes the max through the scoreboard bitset (order-free,
    /// so `trailing_zeros` iteration over the pending intersection is
    /// enough); the stepped oracle walks the use list.
    fn start_time(&mut self, tid: usize, at: InstRef, op: &Op) -> u64 {
        if self.cfg.pipeline == PipelineKind::InOrder {
            return self.cycle;
        }
        if self.reference {
            let mut t = self.cycle;
            let mut uses = Vec::new();
            op.uses_into(&mut uses);
            for u in uses {
                t = t.max(self.threads[tid].sb.ready_at(u));
            }
            t
        } else if self.fast_forward {
            let mask = self.decode.get(at).use_mask;
            let now = self.cycle;
            self.threads[tid].sb.max_ready(&mask, now)
        } else {
            let mut t = self.cycle;
            for &u in self.decode.get(at).uses() {
                t = t.max(self.threads[tid].sb.ready_at(u));
            }
            t
        }
    }

    /// Functional-unit class of the instruction at `at` (decoded table in
    /// the fast path, re-derived from the op in reference mode).
    #[inline]
    fn fu_of(&self, at: InstRef, op: &Op) -> FuClass {
        if self.reference {
            fu_class(op)
        } else {
            self.decode.get(at).fu
        }
    }

    fn finish_write(
        &mut self,
        tid: usize,
        dst: ssp_ir::Reg,
        value: u64,
        ready: u64,
        src: Option<HitWhere>,
    ) {
        let now = self.cycle;
        let t = &mut self.threads[tid];
        t.rf.write(dst, value);
        t.sb.set(dst, ready, src, now);
    }

    /// Dispatch an entry into the ROB (OOO only). The fast engine also
    /// feeds the incremental event queues here — the only place entries
    /// are born, so each queue stays a monotone image of the ROB.
    fn push_rob(
        &mut self,
        tid: usize,
        start_at: u64,
        complete_at: u64,
        is_load: bool,
        hit: Option<HitWhere>,
    ) {
        if self.cfg.pipeline == PipelineKind::OutOfOrder {
            let now = self.cycle;
            let fast = self.fast_forward;
            let t = &mut self.threads[tid];
            if fast {
                if start_at > now {
                    t.rs_waiting.push(Reverse(start_at));
                }
                if is_load {
                    if let Some(h) = hit {
                        t.loads_q.push_back((complete_at, h));
                        if h.is_l1_miss() {
                            t.missload_q.push_back(complete_at);
                        }
                    }
                }
            }
            t.rob.push_back(RobEntry { start_at, complete_at, is_load, hit });
        }
    }

    fn free_context(&self) -> Option<usize> {
        self.threads.iter().position(|t| !t.active())
    }

    /// End the whole simulation, recording why for the snapshot layer.
    fn halt_with(&mut self, kind: TrapKind) -> Flow {
        if let Some(s) = self.snap.as_deref_mut() {
            s.note_trap(kind);
        }
        Flow::Halt
    }

    fn kill_thread(&mut self, tid: usize) {
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.slices_killed += 1;
        }
        if let Some(s) = self.snap.as_deref_mut() {
            s.spec_kills += 1;
        }
        if let Some(slot) = self.threads[tid].owned_slot.take() {
            self.lib.free(slot);
        }
        let t = &mut self.threads[tid];
        t.pc = None;
        t.call_stack.clear();
        t.rob.clear();
        t.outstanding.clear();
        t.rs_waiting.clear();
        t.loads_q.clear();
        t.missload_q.clear();
        t.blocked_until = 0;
        t.insts = 0;
    }

    /// Timed load path honouring the perfect-memory modes.
    fn load_access(&mut self, tag: ssp_ir::InstTag, addr: u64, start: u64) -> (u64, HitWhere) {
        let perfect = match &self.cfg.memory_mode {
            MemoryMode::Normal => false,
            MemoryMode::PerfectAll => true,
            MemoryMode::PerfectDelinquent(set) => set.contains(&tag),
        };
        if perfect {
            (start + self.cfg.l1d.latency, HitWhere::L1)
        } else {
            let r = self.hier.access_load(addr, start);
            (r.ready_at, r.hit)
        }
    }

    /// Execute one instruction functionally and apply its timing.
    fn exec_inst(&mut self, tid: usize, at: InstRef, op: &Op) -> Flow {
        let ooo = self.cfg.pipeline == PipelineKind::OutOfOrder;
        let start0 = self.start_time(tid, at, op);
        let start = if ooo {
            let class = self.fu_of(at, op);
            self.book_fu(class, start0)
        } else {
            start0
        };
        let next = self.next_ref(at);
        let spec = self.threads[tid].speculative;

        match *op {
            Op::Movi { dst, imm } => {
                let done = start + self.cfg.int_latency;
                self.finish_write(tid, dst, imm as u64, done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Mov { dst, src } => {
                let v = self.threads[tid].rf.read(src);
                let done = start + self.cfg.int_latency;
                self.finish_write(tid, dst, v, done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Alu { kind, dst, a, b } => {
                let (x, y) = {
                    let rf = &self.threads[tid].rf;
                    (rf.read(a), rf.operand(b))
                };
                let lat = if kind == ssp_ir::AluKind::Mul {
                    self.cfg.mul_latency
                } else {
                    self.cfg.int_latency
                };
                let done = start + lat;
                self.finish_write(tid, dst, alu_eval(kind, x, y), done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Cmp { kind, dst, a, b } => {
                let (x, y) = {
                    let rf = &self.threads[tid].rf;
                    (rf.read(a), rf.operand(b))
                };
                let done = start + self.cfg.int_latency;
                self.finish_write(tid, dst, cmp_eval(kind, x, y), done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::FAlu { kind, dst, a, b } => {
                let (x, y) = {
                    let rf = &self.threads[tid].rf;
                    (rf.read(a), rf.read(b))
                };
                let done = start + self.cfg.fp_latency;
                self.finish_write(tid, dst, falu_eval(kind, x, y), done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Ld { dst, base, off } => {
                let addr = self.threads[tid].rf.read(base).wrapping_add(off as u64);
                let v = self.mem.read(addr);
                let tag = self.decode.get(at).tag;
                let (ready, hit) = self.load_access(tag, addr, start);
                // Hardware stride prefetcher observes demand loads.
                if self.cfg.memory_mode == MemoryMode::Normal {
                    if let Some(sp) = self.stride.as_mut() {
                        for pa in sp.observe(tag, addr) {
                            self.hier.access_prefetch(pa, start);
                        }
                    }
                }
                self.finish_write(tid, dst, v, ready, Some(hit));
                self.push_rob(tid, start, ready, true, Some(hit));
                if hit.is_l1_miss() && !ooo {
                    self.threads[tid].outstanding.retain(|&(r, _)| r > self.cycle);
                    self.threads[tid].outstanding.push((ready, hit));
                }
                let roi = self.effective_roi();
                if roi {
                    self.result.loads.entry(tag).or_default().record(hit);
                }
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    if spec {
                        // A slice load warms the hierarchy exactly like
                        // an lfetch: track it as a prefetch.
                        tel.record_prefetch(tag, addr, ready, hit);
                    } else if roi {
                        tel.record_demand(tag, addr, hit, self.cycle);
                    }
                }
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::St { src, base, off } => {
                // Speculative threads must never modify memory; the
                // verifier bans these, and the hardware drops them.
                if !spec {
                    let addr = self.threads[tid].rf.read(base).wrapping_add(off as u64);
                    let v = self.threads[tid].rf.read(src);
                    self.mem.write(addr, v);
                    if self.cfg.memory_mode == MemoryMode::Normal {
                        self.hier.access_store(addr, start);
                    }
                } else if let Some(s) = self.snap.as_deref_mut() {
                    // The store was dropped, but the oracle wants to know
                    // a speculative thread tried: slices must be
                    // store-free, so any attempt is a codegen bug.
                    s.spec_store_attempts += 1;
                }
                self.push_rob(tid, start, start + 1, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Lfetch { base, off } => {
                let addr = self.threads[tid].rf.read(base).wrapping_add(off as u64);
                if self.cfg.memory_mode == MemoryMode::Normal {
                    let r = self.hier.access_prefetch(addr, start);
                    if spec {
                        let tag = self.decode.get(at).tag;
                        if let Some(tel) = self.telemetry.as_deref_mut() {
                            match r {
                                Some(r) => tel.record_prefetch(tag, addr, r.ready_at, r.hit),
                                None => tel.prefetches_dropped += 1,
                            }
                        }
                    }
                }
                self.push_rob(tid, start, start + 1, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Br { target } => {
                self.push_rob(tid, start, start + 1, false, None);
                self.threads[tid].pc = Some(self.block_start(at.func, target));
                Flow::Redirect
            }
            Op::BrCond { pred, if_true, if_false } => {
                let taken = self.threads[tid].rf.read(pred) != 0;
                let pc_key = static_pc(at.func, at.block, at.idx);
                let predicted = self.gshare.predict(pc_key);
                self.gshare.update(pc_key, taken);
                let resolve = start + 1;
                self.push_rob(tid, start, resolve, false, None);
                if tid == 0 && self.effective_roi() {
                    self.result.branches += 1;
                }
                let target = if taken { if_true } else { if_false };
                self.threads[tid].pc = Some(self.block_start(at.func, target));
                if predicted != taken {
                    if tid == 0 && self.effective_roi() {
                        self.result.mispredicts += 1;
                    }
                    self.threads[tid].fetch_ready = resolve + self.cfg.mispredict_penalty;
                } else if taken {
                    // Correct direction, but the front end still needs the
                    // target: a BTB miss costs a short redirect bubble.
                    let tkey = u64::from(target.0);
                    if !self.btb.lookup(pc_key, tkey, self.cycle) {
                        self.btb.record(pc_key, tkey, self.cycle);
                        self.threads[tid].fetch_ready = self.cycle + 2;
                    }
                }
                Flow::Redirect
            }
            Op::Call { callee, .. } => {
                self.push_rob(tid, start, start + 1, false, None);
                self.threads[tid].call_stack.push(next);
                let entry = self.prog.func(callee).entry;
                self.threads[tid].pc = Some(self.block_start(callee, entry));
                Flow::Redirect
            }
            Op::CallInd { target, .. } => {
                self.push_rob(tid, start, start + 1, false, None);
                let v = self.threads[tid].rf.read(target);
                match FuncId::from_value(v) {
                    Some(f) if (f.0 as usize) < self.prog.funcs.len() => {
                        self.threads[tid].call_stack.push(next);
                        let entry = self.prog.func(f).entry;
                        self.threads[tid].pc = Some(self.block_start(f, entry));
                        Flow::Redirect
                    }
                    // A wild indirect call: fatal for the main thread,
                    // silently fatal for a speculative one.
                    _ if spec => {
                        self.kill_thread(tid);
                        Flow::ThreadDone
                    }
                    _ => self.halt_with(TrapKind::WildIndirectCall),
                }
            }
            Op::Ret => {
                self.push_rob(tid, start, start + 1, false, None);
                match self.threads[tid].call_stack.pop() {
                    Some(r) => {
                        self.threads[tid].pc = Some(r);
                        Flow::Redirect
                    }
                    None if spec => {
                        self.kill_thread(tid);
                        Flow::ThreadDone
                    }
                    None => self.halt_with(TrapKind::MainExit),
                }
            }
            Op::ChkC { stub } => {
                self.push_rob(tid, start, start + 1, false, None);
                // The context check also requires a free live-in-buffer
                // slot — a raise whose stub cannot allocate a slot would
                // flush the pipe for a spawn that must be dropped.
                let resources_free =
                    self.free_context().is_some() && self.lib.busy() < self.cfg.lib_slots;
                if !spec && resources_free {
                    // Raise: pipeline flush, recovery code = stub block.
                    self.result.spawns_fired += 1;
                    self.threads[tid].fetch_ready = start + self.cfg.spawn_flush_penalty;
                    self.threads[tid].pc = Some(self.block_start(at.func, stub));
                    Flow::Redirect
                } else {
                    if !spec {
                        self.result.spawns_suppressed += 1;
                    }
                    self.threads[tid].pc = Some(next);
                    Flow::Continue
                }
            }
            Op::Spawn { entry, slot } => {
                self.push_rob(tid, start, start + 1, false, None);
                let slot_val = self.threads[tid].rf.read(slot);
                if slot_val != LIB_NO_SLOT {
                    if let Some(child) = self.free_context() {
                        let ready = start + self.cfg.spawn_latency;
                        let child_pc = self.block_start(at.func, entry);
                        let t = &mut self.threads[child];
                        *t = Thread::new();
                        t.rf.write(conv::SLOT, slot_val);
                        // The spawn hand-off materialises the whole
                        // register file at once.
                        t.sb.fill(ready);
                        t.fetch_ready = ready;
                        t.speculative = true;
                        t.owned_slot = Some(slot_val);
                        t.pc = Some(child_pc);
                        self.result.threads_spawned += 1;
                    } else {
                        self.lib.free(slot_val);
                        self.result.spawns_dropped += 1;
                    }
                } else {
                    self.result.spawns_dropped += 1;
                }
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::LibAlloc { dst } => {
                let s = self.lib.alloc();
                let done = start + self.cfg.lib_latency;
                self.finish_write(tid, dst, s, done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::LibSt { slot, idx, src } => {
                let (s, v) = {
                    let rf = &self.threads[tid].rf;
                    (rf.read(slot), rf.read(src))
                };
                self.lib.write(s, idx, v);
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    tel.live_in_copies += 1;
                }
                self.push_rob(tid, start, start + self.cfg.lib_latency, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::LibLd { dst, slot, idx } => {
                let s = self.threads[tid].rf.read(slot);
                let v = self.lib.read(s, idx);
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    tel.live_in_copies += 1;
                }
                let done = start + self.cfg.lib_latency;
                self.finish_write(tid, dst, v, done, None);
                self.push_rob(tid, start, done, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::LibFree { slot } => {
                let s = self.threads[tid].rf.read(slot);
                self.lib.free(s);
                if self.threads[tid].owned_slot == Some(s) {
                    self.threads[tid].owned_slot = None;
                }
                self.push_rob(tid, start, start + self.cfg.lib_latency, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::KillThread => {
                if spec {
                    self.kill_thread(tid);
                    Flow::ThreadDone
                } else {
                    // The main thread ending via kill ends the run.
                    self.halt_with(TrapKind::MainExit)
                }
            }
            Op::RoiBegin => {
                self.in_roi = true;
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::RoiEnd => {
                self.in_roi = false;
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
            Op::Halt => self.halt_with(TrapKind::Halted),
            Op::Nop => {
                self.push_rob(tid, start, start + 1, false, None);
                self.threads[tid].pc = Some(next);
                Flow::Continue
            }
        }
    }
}

impl SimResult {
    /// Classify one cycle of main-thread progress. `has_miss` is the
    /// outstanding-L1-miss test, computed by the caller (only consulted
    /// when the thread issued) so the fast engine can answer it from its
    /// event queues while the stepped oracle rescans.
    pub(crate) fn cycles_account(
        &mut self,
        main_issued: usize,
        main_stall: Option<StallReason>,
        has_miss: bool,
    ) {
        let b = &mut self.breakdown;
        if main_issued > 0 {
            if has_miss {
                b.cache_exec += 1;
            } else {
                b.exec += 1;
            }
            return;
        }
        let hit = match main_stall {
            Some(StallReason::SrcNotReady(h))
            | Some(StallReason::RobFull(h))
            | Some(StallReason::RsFull(h)) => h,
            _ => None,
        };
        self.account_stalled(hit, 1);
    }

    /// Charge `n` zero-issue cycles to the Figure-10 stall bucket for a
    /// main thread blocked on a load that hit at `hit`. Used per-cycle by
    /// [`SimResult::cycles_account`] and in bulk by the fast-forward skip.
    pub(crate) fn account_stalled(&mut self, hit: Option<HitWhere>, n: u64) {
        let b = &mut self.breakdown;
        match hit {
            Some(HitWhere::Mem) | Some(HitWhere::MemPartial) => b.l3_miss += n,
            Some(HitWhere::L3) | Some(HitWhere::L3Partial) => b.l2_miss += n,
            Some(HitWhere::L2) | Some(HitWhere::L2Partial) => b.l1_miss += n,
            _ => b.other += n,
        }
    }
}

/// Run `prog` on the machine described by `cfg`.
pub fn simulate(prog: &Program, cfg: &MachineConfig) -> SimResult {
    Engine::new(prog, cfg).run()
}

/// Run `prog` with the pre-decode fast path disabled: use lists and
/// functional-unit classes are re-derived from each [`Op`] on every
/// issue, as the engine did before the side table existed.
///
/// This exists so differential tests can assert the optimized engine is
/// bit-identical to the original behaviour; it is not meant for regular
/// use.
pub fn simulate_reference(prog: &Program, cfg: &MachineConfig) -> SimResult {
    let mut e = Engine::new(prog, cfg);
    e.reference = true;
    e.fast_forward = false;
    e.run()
}

/// Run `prog` with the event-driven clock fast-forward disabled: every
/// cycle is stepped individually, as the engine did before skips existed.
///
/// This exists so differential tests (and the `perf_report` timing
/// comparison) can pit the fast-forward engine against the stepped one;
/// the two must produce byte-identical [`SimResult`]s.
pub fn simulate_stepped(prog: &Program, cfg: &MachineConfig) -> SimResult {
    let mut e = Engine::new(prog, cfg);
    e.fast_forward = false;
    e.run()
}

/// Run `prog` with the fast engine *and* per-query verification: every
/// incremental next-event computation is checked against a brute-force
/// O(ROB) rescan of the same event definition, panicking on the first
/// divergence or on any event not strictly in the future.
///
/// This is the property-test harness behind the event-queue regression
/// suite; it is not meant for regular use (the rescans make it as slow
/// as the stepped engine).
pub fn simulate_crosschecked(prog: &Program, cfg: &MachineConfig) -> SimResult {
    let mut e = Engine::new(prog, cfg);
    e.crosscheck = true;
    e.run()
}

/// Run `prog` on the fast engine and additionally report how its cycles
/// were simulated — busy-window batches, idle skips, and individually
/// stepped cycles, with per-window length histograms
/// ([`WindowStats`]). The instrumentation never feeds back into timing:
/// the returned [`SimResult`] is identical to what [`simulate`]
/// produces.
pub fn simulate_windowed(prog: &Program, cfg: &MachineConfig) -> (SimResult, WindowStats) {
    let mut e = Engine::new(prog, cfg);
    e.winstats = Some(Box::new(WindowStats::default()));
    e.run_to_end();
    let w = e.winstats.take().expect("window stats installed above");
    assert_eq!(
        w.simulated(),
        e.result.total_cycles,
        "window accounting: busy {} + idle {} + stepped {} must equal total_cycles {}",
        w.busy_cycles,
        w.idle_cycles,
        w.stepped_cycles,
        e.result.total_cycles,
    );
    (e.result, *w)
}

/// Run `prog` with structured tracing enabled, returning the usual
/// statistics plus a [`ssp_trace::SimTrace`] that classifies every
/// speculative prefetch as early / timely / late / useless relative to
/// the main-thread load that consumed it.
///
/// `targets` maps prefetching instruction tags (slice loads and
/// `lfetch`es, as reported by `ssp_core::prefetch_targets`) to the
/// delinquent load their slice targets, so unconsumed prefetches are
/// attributed to the right static load. An empty slice is fine:
/// unconsumed prefetches then credit their own tag.
///
/// Tracing never changes timing: the returned [`SimResult`] is
/// identical to what [`simulate`] produces for the same inputs.
pub fn simulate_traced(
    prog: &Program,
    cfg: &MachineConfig,
    targets: &[(ssp_ir::InstTag, ssp_ir::InstTag)],
) -> (SimResult, ssp_trace::SimTrace) {
    traced_impl(prog, cfg, targets, true)
}

/// [`simulate_traced`] with the clock fast-forward disabled; for
/// differential tests that the telemetry classification is skip-proof.
pub fn simulate_traced_stepped(
    prog: &Program,
    cfg: &MachineConfig,
    targets: &[(ssp_ir::InstTag, ssp_ir::InstTag)],
) -> (SimResult, ssp_trace::SimTrace) {
    traced_impl(prog, cfg, targets, false)
}

fn traced_impl(
    prog: &Program,
    cfg: &MachineConfig,
    targets: &[(ssp_ir::InstTag, ssp_ir::InstTag)],
    fast_forward: bool,
) -> (SimResult, ssp_trace::SimTrace) {
    let mut e = Engine::new(prog, cfg);
    e.fast_forward = fast_forward;
    e.telemetry = Some(Box::new(Telemetry::new(prog, cfg, targets)));
    e.run_to_end();
    let tel = e.telemetry.take().expect("telemetry installed above");
    let trace = tel.finish(&e.result, e.cycle);
    (e.result, trace)
}

/// Run `prog` and additionally capture its final architectural state —
/// main-thread registers, a memory digest, the trap kind, and a digest of
/// the main thread's committed-instruction stream restricted to tags
/// below `tag_bound` — for differential baseline-vs-adapted checks.
///
/// Pass the *original* program's `next_tag` as `tag_bound` when
/// snapshotting an adapted binary (adaptation preserves original tags and
/// mints fresh ones above that bound), and the program's own `next_tag`
/// when snapshotting the baseline; the two commit digests are then
/// directly comparable.
///
/// Like tracing, snapshotting never changes timing: the returned
/// [`SimResult`] is identical to what [`simulate`] produces.
pub fn simulate_snapshot(
    prog: &Program,
    cfg: &MachineConfig,
    tag_bound: u32,
) -> (SimResult, ArchSnapshot) {
    snapshot_impl(prog, cfg, tag_bound, true)
}

/// [`simulate_snapshot`] with the clock fast-forward disabled; for
/// differential tests that skips preserve final architectural state.
pub fn simulate_snapshot_stepped(
    prog: &Program,
    cfg: &MachineConfig,
    tag_bound: u32,
) -> (SimResult, ArchSnapshot) {
    snapshot_impl(prog, cfg, tag_bound, false)
}

fn snapshot_impl(
    prog: &Program,
    cfg: &MachineConfig,
    tag_bound: u32,
    fast_forward: bool,
) -> (SimResult, ArchSnapshot) {
    let mut e = Engine::new(prog, cfg);
    e.fast_forward = fast_forward;
    e.snap = Some(Box::new(SnapshotRec::new(tag_bound)));
    e.run_to_end();
    let rec = e.snap.take().expect("snapshot recorder installed above");
    // `run_to_end` ends either at a Flow::Halt site (all of which record
    // a trap) or at the cycle cap.
    let trap = rec.trap.unwrap_or(TrapKind::CycleCap);
    let regs = (0..NUM_REGS).map(|r| e.threads[0].rf.read(ssp_ir::Reg(r as u16))).collect();
    let spec_live_at_end = e.threads[1..].iter().filter(|t| t.active()).count() as u64;
    let snap = ArchSnapshot {
        regs,
        mem_digest: e.mem.digest(),
        trap,
        commit_digest: rec.commit_digest,
        commit_len: rec.commit_len,
        spec_store_attempts: rec.spec_store_attempts,
        spec_kills: rec.spec_kills,
        spec_live_at_end,
    };
    (e.result, snap)
}
