//! Branch prediction: 2k-entry GSHARE plus a 256-entry 4-way BTB.

use ssp_ir::{BlockId, FuncId};

/// GSHARE direction predictor with 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// A predictor with `entries` counters (must be a power of two).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "GSHARE table size must be a power of two");
        Gshare { table: vec![1; entries], history: 0, mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predict the direction for the branch identified by `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Update with the actual outcome and shift the global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
    }
}

/// Branch target buffer: caches taken-branch targets; a taken branch whose
/// target is absent pays a small redirect bubble even when the direction
/// was predicted correctly.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<(u64, u64, u64)>>, // (pc, target_key, last_used)
    assoc: usize,
    mask: u64,
}

impl Btb {
    /// A BTB with `entries` total entries and `assoc` ways.
    pub fn new(entries: usize, assoc: usize) -> Self {
        let sets = entries / assoc;
        assert!(sets.is_power_of_two(), "BTB set count must be a power of two");
        Btb { sets: vec![Vec::new(); sets], assoc, mask: sets as u64 - 1 }
    }

    /// Whether `pc`'s target is cached as `target_key`; updates LRU.
    pub fn lookup(&mut self, pc: u64, target_key: u64, now: u64) -> bool {
        let si = (pc & self.mask) as usize;
        if let Some(e) = self.sets[si].iter_mut().find(|e| e.0 == pc) {
            e.2 = now;
            return e.1 == target_key;
        }
        false
    }

    /// Record the taken target of `pc`.
    pub fn record(&mut self, pc: u64, target_key: u64, now: u64) {
        let si = (pc & self.mask) as usize;
        if let Some(e) = self.sets[si].iter_mut().find(|e| e.0 == pc) {
            e.1 = target_key;
            e.2 = now;
            return;
        }
        if self.sets[si].len() >= self.assoc {
            let (vi, _) =
                self.sets[si].iter().enumerate().min_by_key(|(_, e)| e.2).expect("nonempty set");
            self.sets[si].swap_remove(vi);
        }
        self.sets[si].push((pc, target_key, now));
    }
}

/// A synthetic "program counter" for a static branch: stable and unique
/// per (function, block, index).
pub fn static_pc(func: FuncId, block: BlockId, idx: usize) -> u64 {
    (u64::from(func.0) << 40) ^ (u64::from(block.0) << 16) ^ idx as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_bias() {
        let mut g = Gshare::new(2048);
        let pc = static_pc(FuncId(0), BlockId(3), 2);
        // With history-based indexing the first few updates each train a
        // different counter; after the history saturates to all-taken the
        // index is stable and the counter saturates too.
        for _ in 0..100 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
        for _ in 0..100 {
            g.update(pc, false);
        }
        assert!(!g.predict(pc));
    }

    #[test]
    fn gshare_learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(2048);
        let pc = static_pc(FuncId(0), BlockId(1), 0);
        // Train on a strict T/N alternation; with history-based indexing
        // the two phases use different counters and both become correct.
        let mut taken = false;
        for _ in 0..64 {
            g.update(pc, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..32 {
            if g.predict(pc) == taken {
                correct += 1;
            }
            g.update(pc, taken);
            taken = !taken;
        }
        assert!(
            correct >= 30,
            "alternation should be nearly perfectly predicted, got {correct}/32"
        );
    }

    #[test]
    fn btb_caches_targets() {
        let mut b = Btb::new(256, 4);
        let pc = static_pc(FuncId(1), BlockId(2), 5);
        assert!(!b.lookup(pc, 77, 0), "cold BTB misses");
        b.record(pc, 77, 0);
        assert!(b.lookup(pc, 77, 1));
        assert!(!b.lookup(pc, 88, 2), "target mismatch is a miss");
        b.record(pc, 88, 3);
        assert!(b.lookup(pc, 88, 4));
    }

    #[test]
    fn btb_evicts_lru_within_set() {
        let mut b = Btb::new(4, 2); // 2 sets x 2 ways
                                    // Three branches mapping to set 0 (pc & 1 == 0).
        let pcs = [0u64, 2, 4];
        b.record(pcs[0], 1, 0);
        b.record(pcs[1], 1, 1);
        b.record(pcs[2], 1, 2); // evicts pcs[0]
        assert!(!b.lookup(pcs[0], 1, 3));
        assert!(b.lookup(pcs[1], 1, 4));
        assert!(b.lookup(pcs[2], 1, 5));
    }
}
