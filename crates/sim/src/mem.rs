//! Functional memory: a sparse 64-bit word store, plus the live-in buffer.

use std::collections::HashMap;

/// Sparse simulated memory. Word-granular (8 bytes); unaligned accesses
/// are rounded down to the containing word, matching the aligned-only
/// discipline the workloads follow. Unwritten memory reads as zero.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load the initialized-data image of a program.
    pub fn load_image(&mut self, image: &[(u64, u64)]) {
        for &(addr, val) in image {
            self.write(addr, val);
        }
    }

    /// Read the word containing `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Write the word containing `addr`.
    pub fn write(&mut self, addr: u64, val: u64) {
        self.words.insert(addr & !7, val);
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// Order-independent digest of the semantic memory state: an XOR-fold
    /// of a per-entry FNV hash over every *nonzero* word. Zero-valued
    /// words are skipped because unwritten memory reads as zero — two
    /// memories that answer every `read` identically digest identically,
    /// regardless of which zeros were ever explicitly stored and of
    /// `HashMap` iteration order.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut acc = 0u64;
        for (&addr, &val) in &self.words {
            if val == 0 {
                continue;
            }
            let mut h = FNV_OFFSET;
            for v in [addr, val] {
                for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                    h = (h ^ ((v >> shift) & 0xFF)).wrapping_mul(FNV_PRIME);
                }
            }
            acc ^= h;
        }
        acc
    }
}

/// The live-in buffer: the on-chip RSE backing-store region used to pass
/// live-in values from a parent thread to its spawned child (§2.1, §3.4.2).
///
/// Slots are allocated by `lib.alloc` in the stub block, written by the
/// parent, handed to the child through the spawn, read by the child, and
/// released with `lib.free`. If every slot is busy, allocation fails and
/// the spawn is dropped — mirroring "if a free hardware context is not
/// available, the spawn request is ignored" for the communication buffer.
#[derive(Clone, Debug)]
pub struct LiveInBuffer {
    slots: Vec<Option<Vec<u64>>>,
    words_per_slot: u8,
    /// Total successful allocations (statistics).
    pub allocs: u64,
    /// Allocations that failed because all slots were busy.
    pub alloc_failures: u64,
}

/// Sentinel slot id returned when allocation fails.
pub const LIB_NO_SLOT: u64 = u64::MAX;

impl LiveInBuffer {
    /// A buffer with `slots` slots of `words_per_slot` words each.
    pub fn new(slots: usize, words_per_slot: u8) -> Self {
        LiveInBuffer { slots: vec![None; slots], words_per_slot, allocs: 0, alloc_failures: 0 }
    }

    /// Allocate a slot; returns its id or [`LIB_NO_SLOT`].
    pub fn alloc(&mut self) -> u64 {
        match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(vec![0; self.words_per_slot as usize]);
                self.allocs += 1;
                i as u64
            }
            None => {
                self.alloc_failures += 1;
                LIB_NO_SLOT
            }
        }
    }

    /// Write word `idx` of `slot`. Out-of-range slots/indices and the
    /// sentinel are ignored (the hardware simply drops the write).
    pub fn write(&mut self, slot: u64, idx: u8, val: u64) {
        if idx >= self.words_per_slot {
            return;
        }
        if let Some(Some(words)) = self.slots.get_mut(slot as usize) {
            words[idx as usize] = val;
        }
    }

    /// Read word `idx` of `slot`; 0 for invalid slots (a speculative
    /// thread reading garbage is a performance problem, not a fault).
    pub fn read(&self, slot: u64, idx: u8) -> u64 {
        if idx >= self.words_per_slot {
            return 0;
        }
        match self.slots.get(slot as usize) {
            Some(Some(words)) => words[idx as usize],
            _ => 0,
        }
    }

    /// Release `slot`. Releasing an invalid or free slot is a no-op.
    pub fn free(&mut self, slot: u64) {
        if let Some(s) = self.slots.get_mut(slot as usize) {
            *s = None;
        }
    }

    /// Number of currently busy slots.
    pub fn busy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_reads_zero_when_untouched() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
    }

    #[test]
    fn memory_write_read_roundtrip() {
        let mut m = Memory::new();
        m.write(0x1000, 42);
        assert_eq!(m.read(0x1000), 42);
        assert_eq!(m.read(0x1004), 42, "sub-word address maps to same word");
        assert_eq!(m.read(0x1008), 0);
    }

    #[test]
    fn image_loading() {
        let mut m = Memory::new();
        m.load_image(&[(0x100, 1), (0x108, 2)]);
        assert_eq!(m.read(0x100), 1);
        assert_eq!(m.read(0x108), 2);
        assert_eq!(m.footprint_words(), 2);
    }

    #[test]
    fn digest_ignores_zero_words_and_order() {
        let mut a = Memory::new();
        a.write(0x100, 1);
        a.write(0x108, 2);
        a.write(0x200, 0); // explicit zero: invisible to reads
        let mut b = Memory::new();
        b.write(0x108, 2);
        b.write(0x100, 1);
        assert_eq!(a.digest(), b.digest());
        b.write(0x108, 3);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn lib_alloc_and_rw() {
        let mut lib = LiveInBuffer::new(2, 4);
        let a = lib.alloc();
        let b = lib.alloc();
        assert_ne!(a, LIB_NO_SLOT);
        assert_ne!(b, LIB_NO_SLOT);
        assert_eq!(lib.alloc(), LIB_NO_SLOT, "only 2 slots");
        assert_eq!(lib.alloc_failures, 1);
        lib.write(a, 0, 7);
        lib.write(a, 3, 9);
        assert_eq!(lib.read(a, 0), 7);
        assert_eq!(lib.read(a, 3), 9);
        assert_eq!(lib.read(b, 0), 0);
        lib.free(a);
        assert_eq!(lib.busy(), 1);
        let c = lib.alloc();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(lib.read(c, 0), 0, "slot contents cleared on realloc");
    }

    #[test]
    fn lib_invalid_ops_are_noops() {
        let mut lib = LiveInBuffer::new(1, 2);
        lib.write(LIB_NO_SLOT, 0, 5);
        assert_eq!(lib.read(LIB_NO_SLOT, 0), 0);
        lib.free(LIB_NO_SLOT);
        let a = lib.alloc();
        lib.write(a, 7, 5); // idx out of range
        assert_eq!(lib.read(a, 7), 0);
    }
}
