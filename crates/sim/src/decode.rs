//! Pre-decoded instruction side table.
//!
//! The cycle loop used to re-derive an instruction's functional-unit
//! class and source-register list (with a fresh `Vec`) every time it was
//! issued — once per dynamic instruction. This module computes those
//! facts once per *static* instruction, up front, into one flat,
//! cache-friendly array. The engine then indexes the table by
//! [`InstRef`] with two small lookups and touches no heap in the hot
//! path.
//!
//! The table is derived data only: functional execution still reads the
//! [`Program`] itself, so the decoded view cannot drift from program
//! semantics, and the `uses` array is filled by the same visitor that
//! backs [`Op::uses_into`], so stall-reporting order is identical by
//! construction.

use crate::exec::{RegMask, MASK_WORDS};
use ssp_ir::inst::MAX_USES;
use ssp_ir::{InstRef, InstTag, Op, Program, Reg};

/// Functional-unit classes (Table 1: 4 int, 2 FP, 3 branch, 2 mem ports).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuClass {
    /// Integer ALU.
    Int = 0,
    /// Floating-point unit.
    Fp = 1,
    /// Branch unit.
    Branch = 2,
    /// Memory port.
    Mem = 3,
}

/// The functional-unit class executing `op`.
pub fn fu_class(op: &Op) -> FuClass {
    match op {
        Op::FAlu { .. } => FuClass::Fp,
        Op::Ld { .. } | Op::St { .. } | Op::Lfetch { .. } | Op::LibLd { .. } | Op::LibSt { .. } => {
            FuClass::Mem
        }
        Op::Br { .. }
        | Op::BrCond { .. }
        | Op::Call { .. }
        | Op::CallInd { .. }
        | Op::Ret
        | Op::Spawn { .. }
        | Op::KillThread => FuClass::Branch,
        _ => FuClass::Int,
    }
}

/// Everything the timing model needs about one static instruction.
#[derive(Clone, Copy, Debug)]
pub struct DecodedInst {
    /// Source registers, in [`Op::uses_into`] order; only the first
    /// `n_uses` entries are meaningful.
    uses: [Reg; MAX_USES],
    /// Number of valid entries in `uses`.
    n_uses: u8,
    /// The source registers as a bitset — the operand mask the fast
    /// engine intersects with the thread's pending-register scoreboard
    /// ([`crate::exec::Scoreboard`]) so the all-sources-ready check is
    /// two word ANDs instead of a per-operand walk.
    pub use_mask: RegMask,
    /// Which functional unit executes this instruction.
    pub fu: FuClass,
    /// Profile identity (avoids re-walking the program for loads).
    pub tag: InstTag,
    /// [`Op::is_load`].
    pub is_load: bool,
    /// [`Op::is_store`].
    pub is_store: bool,
    /// [`Op::is_terminator`].
    pub is_terminator: bool,
}

impl DecodedInst {
    fn new(op: &Op, tag: InstTag) -> Self {
        let mut uses = [Reg(0); MAX_USES];
        let n_uses = op.uses_fixed(&mut uses) as u8;
        let mut use_mask = [0u64; MASK_WORDS];
        for u in &uses[..n_uses as usize] {
            use_mask[u.index() / 64] |= 1u64 << (u.index() % 64);
        }
        DecodedInst {
            uses,
            n_uses,
            use_mask,
            fu: fu_class(op),
            tag,
            is_load: op.is_load(),
            is_store: op.is_store(),
            is_terminator: op.is_terminator(),
        }
    }

    /// The source registers, in use order.
    #[inline]
    pub fn uses(&self) -> &[Reg] {
        &self.uses[..self.n_uses as usize]
    }
}

/// A flat side table of [`DecodedInst`]s for one [`Program`].
///
/// Lookup is two array reads: per-function bases give each function's
/// run of blocks, per-block bases give each block's run of instructions.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    /// Per function: index of its first block in `block_base`.
    func_base: Vec<u32>,
    /// Per block (all functions, flattened): index of its first
    /// instruction in `insts`.
    block_base: Vec<u32>,
    insts: Vec<DecodedInst>,
}

impl DecodedProgram {
    /// Decode every instruction of `prog`.
    pub fn new(prog: &Program) -> Self {
        let mut func_base = Vec::with_capacity(prog.funcs.len());
        let mut block_base = Vec::new();
        let mut insts = Vec::with_capacity(prog.inst_count());
        for f in &prog.funcs {
            func_base.push(block_base.len() as u32);
            for b in &f.blocks {
                block_base.push(insts.len() as u32);
                for i in &b.insts {
                    insts.push(DecodedInst::new(&i.op, i.tag));
                }
            }
        }
        DecodedProgram { func_base, block_base, insts }
    }

    /// The decoded entry for the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if any component of `r` is out of range for the decoded
    /// program.
    #[inline]
    pub fn get(&self, r: InstRef) -> &DecodedInst {
        let fb = self.func_base[r.func.0 as usize] as usize + r.block.index();
        &self.insts[self.block_base[fb] as usize + r.idx]
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program had no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{conv, BlockId, FuncId, Operand, ProgramBuilder};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("leaf");
        let e = f.entry_block();
        f.at(e).add(conv::RV, conv::arg(0), Operand::Imm(1)).ret();
        let leaf = pb.install(f.finish());
        let mut f = pb.function("main");
        let e = f.entry_block();
        let done = f.new_block();
        f.at(e).movi(Reg(1), 5).ld(Reg(2), Reg(1), 0).st(Reg(2), Reg(1), 8).call(leaf, 1).br(done);
        f.at(done).halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    #[test]
    fn decoded_matches_op_queries() {
        let prog = sample();
        let d = DecodedProgram::new(&prog);
        assert_eq!(d.len(), prog.inst_count());
        assert!(!d.is_empty());
        for (fid, f) in prog.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    let r = InstRef { func: fid, block: bid, idx: i };
                    let e = d.get(r);
                    assert_eq!(e.uses(), inst.op.uses().as_slice(), "at {r}");
                    let mut mask = [0u64; MASK_WORDS];
                    for u in inst.op.uses() {
                        mask[u.index() / 64] |= 1u64 << (u.index() % 64);
                    }
                    assert_eq!(e.use_mask, mask, "at {r}");
                    assert_eq!(e.fu, fu_class(&inst.op), "at {r}");
                    assert_eq!(e.tag, inst.tag, "at {r}");
                    assert_eq!(e.is_load, inst.op.is_load(), "at {r}");
                    assert_eq!(e.is_store, inst.op.is_store(), "at {r}");
                    assert_eq!(e.is_terminator, inst.op.is_terminator(), "at {r}");
                }
            }
        }
    }

    #[test]
    fn lookup_crosses_function_boundaries() {
        let prog = sample();
        let d = DecodedProgram::new(&prog);
        // main is the second function; its first instruction is `movi`.
        let main = prog.func_by_name("main").unwrap();
        let r = InstRef { func: main, block: prog.func(main).entry, idx: 0 };
        assert_eq!(d.get(r).uses(), &[] as &[Reg]);
        assert_eq!(d.get(r).fu, FuClass::Int);
        // The leaf's `ret` is a branch-class terminator.
        let leaf = prog.func_by_name("leaf").unwrap();
        let r = InstRef { func: leaf, block: BlockId(0), idx: 1 };
        assert!(d.get(r).is_terminator);
        assert_eq!(d.get(r).fu, FuClass::Branch);
        let _ = FuncId(0);
    }
}
