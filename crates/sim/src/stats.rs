//! Simulation statistics: cycle accounting (Figure 10), per-load hit
//! breakdowns (Figure 9), and spawn/thread counters.

use crate::cache::HitWhere;
use ssp_ir::InstTag;
use std::collections::HashMap;

/// Where accesses of one static load were satisfied (Figure 9's bars).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoadStats {
    /// Total executions of the load.
    pub accesses: u64,
    /// L1 hits.
    pub l1: u64,
    /// Satisfied by L2.
    pub l2: u64,
    /// Line in transit from L2.
    pub l2_partial: u64,
    /// Satisfied by L3.
    pub l3: u64,
    /// Line in transit from L3.
    pub l3_partial: u64,
    /// Satisfied by memory.
    pub mem: u64,
    /// Line in transit from memory.
    pub mem_partial: u64,
}

impl LoadStats {
    /// Record one access.
    pub fn record(&mut self, hit: HitWhere) {
        self.accesses += 1;
        match hit {
            HitWhere::L1 => self.l1 += 1,
            HitWhere::L2 => self.l2 += 1,
            HitWhere::L2Partial => self.l2_partial += 1,
            HitWhere::L3 => self.l3 += 1,
            HitWhere::L3Partial => self.l3_partial += 1,
            HitWhere::Mem => self.mem += 1,
            HitWhere::MemPartial => self.mem_partial += 1,
        }
    }

    /// L1 misses (everything that wasn't an L1 hit).
    pub fn l1_misses(&self) -> u64 {
        self.accesses - self.l1
    }

    /// L1 miss rate in [0, 1].
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.accesses as f64
        }
    }

    /// Merge another load's stats into this one.
    pub fn merge(&mut self, other: &LoadStats) {
        self.accesses += other.accesses;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.l2_partial += other.l2_partial;
        self.l3 += other.l3;
        self.l3_partial += other.l3_partial;
        self.mem += other.mem;
        self.mem_partial += other.mem_partial;
    }
}

/// Per-cycle classification of the main thread's progress — the six
/// categories of Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleBreakdown {
    /// No issue; blocked on a load being serviced from memory (an L3 miss).
    pub l3_miss: u64,
    /// No issue; blocked on a load being serviced from L3 (an L2 miss).
    pub l2_miss: u64,
    /// No issue; blocked on a load being serviced from L2 (an L1 miss).
    pub l1_miss: u64,
    /// Issued while cache misses were outstanding.
    pub cache_exec: u64,
    /// Issued with no outstanding misses.
    pub exec: u64,
    /// Everything else: branch bubbles, fetch stalls, spawn flushes,
    /// structural stalls.
    pub other: u64,
}

impl CycleBreakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.l3_miss + self.l2_miss + self.l1_miss + self.cache_exec + self.exec + self.other
    }
}

/// Complete result of one timed simulation.
///
/// `PartialEq` compares every field, so two results are equal only when
/// the runs were cycle-for-cycle identical — what the differential and
/// determinism tests assert.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimResult {
    /// Cycles spent inside the region of interest (whole run if the
    /// program has no ROI markers).
    pub cycles: u64,
    /// Total cycles including any pre/post-ROI execution.
    pub total_cycles: u64,
    /// Main-thread instructions executed inside the ROI.
    pub main_insts: u64,
    /// Speculative-thread instructions executed inside the ROI.
    pub spec_insts: u64,
    /// Per-cycle classification (ROI only).
    pub breakdown: CycleBreakdown,
    /// Per-static-load hit statistics (ROI only).
    pub loads: HashMap<InstTag, LoadStats>,
    /// `chk.c` executions that found a free context and fired.
    pub spawns_fired: u64,
    /// `chk.c` executions that found no free context (behaved as a nop).
    pub spawns_suppressed: u64,
    /// `spawn` instructions that actually started a thread.
    pub threads_spawned: u64,
    /// `spawn` instructions dropped for want of a free context.
    pub spawns_dropped: u64,
    /// Speculative threads killed by the runaway cap.
    pub runaway_kills: u64,
    /// Conditional-branch executions in the main thread.
    pub branches: u64,
    /// Mispredicted conditional branches in the main thread.
    pub mispredicts: u64,
    /// Whether the program reached `halt` (vs. the cycle cap).
    pub halted: bool,
}

impl SimResult {
    /// Main-thread IPC over the ROI.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.main_insts as f64 / self.cycles as f64
        }
    }

    /// Aggregate load stats over a set of tags (e.g. the delinquent set).
    pub fn load_stats_for(&self, tags: &[InstTag]) -> LoadStats {
        let mut agg = LoadStats::default();
        for t in tags {
            if let Some(s) = self.loads.get(t) {
                agg.merge(s);
            }
        }
        agg
    }

    /// Aggregate load stats over every static load.
    pub fn load_stats_all(&self) -> LoadStats {
        let mut agg = LoadStats::default();
        for s in self.loads.values() {
            agg.merge(s);
        }
        agg
    }
}

/// Speedup of `new` over `base` as a ratio of ROI cycles.
pub fn speedup(base: &SimResult, new: &SimResult) -> f64 {
    base.cycles as f64 / new.cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_stats_record_and_rate() {
        let mut s = LoadStats::default();
        s.record(HitWhere::L1);
        s.record(HitWhere::Mem);
        s.record(HitWhere::MemPartial);
        s.record(HitWhere::L2);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.l1_misses(), 3);
        assert!((s.l1_miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total() {
        let b =
            CycleBreakdown { l3_miss: 1, l2_miss: 2, l1_miss: 3, cache_exec: 4, exec: 5, other: 6 };
        assert_eq!(b.total(), 21);
    }

    #[test]
    fn speedup_ratio() {
        let base = SimResult { cycles: 200, ..Default::default() };
        let new = SimResult { cycles: 100, ..Default::default() };
        assert!((speedup(&base, &new) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = LoadStats { accesses: 2, l1: 1, mem: 1, ..Default::default() };
        let b = LoadStats { accesses: 3, l2: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.accesses, 5);
        assert_eq!(a.l2, 3);
        assert_eq!(a.l1_misses(), 4);
    }
}
