//! Simulation statistics: cycle accounting (Figure 10), per-load hit
//! breakdowns (Figure 9), and spawn/thread counters.

use crate::cache::HitWhere;
use ssp_ir::InstTag;
use std::collections::HashMap;

/// Where accesses of one static load were satisfied (Figure 9's bars).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoadStats {
    /// Total executions of the load.
    pub accesses: u64,
    /// L1 hits.
    pub l1: u64,
    /// Satisfied by L2.
    pub l2: u64,
    /// Line in transit from L2.
    pub l2_partial: u64,
    /// Satisfied by L3.
    pub l3: u64,
    /// Line in transit from L3.
    pub l3_partial: u64,
    /// Satisfied by memory.
    pub mem: u64,
    /// Line in transit from memory.
    pub mem_partial: u64,
}

impl LoadStats {
    /// Record one access.
    pub fn record(&mut self, hit: HitWhere) {
        self.accesses += 1;
        match hit {
            HitWhere::L1 => self.l1 += 1,
            HitWhere::L2 => self.l2 += 1,
            HitWhere::L2Partial => self.l2_partial += 1,
            HitWhere::L3 => self.l3 += 1,
            HitWhere::L3Partial => self.l3_partial += 1,
            HitWhere::Mem => self.mem += 1,
            HitWhere::MemPartial => self.mem_partial += 1,
        }
    }

    /// L1 misses (everything that wasn't an L1 hit).
    pub fn l1_misses(&self) -> u64 {
        self.accesses - self.l1
    }

    /// L1 miss rate in [0, 1].
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.accesses as f64
        }
    }

    /// Merge another load's stats into this one.
    pub fn merge(&mut self, other: &LoadStats) {
        self.accesses += other.accesses;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.l2_partial += other.l2_partial;
        self.l3 += other.l3;
        self.l3_partial += other.l3_partial;
        self.mem += other.mem;
        self.mem_partial += other.mem_partial;
    }
}

/// Per-cycle classification of the main thread's progress — the six
/// categories of Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleBreakdown {
    /// No issue; blocked on a load being serviced from memory (an L3 miss).
    pub l3_miss: u64,
    /// No issue; blocked on a load being serviced from L3 (an L2 miss).
    pub l2_miss: u64,
    /// No issue; blocked on a load being serviced from L2 (an L1 miss).
    pub l1_miss: u64,
    /// Issued while cache misses were outstanding.
    pub cache_exec: u64,
    /// Issued with no outstanding misses.
    pub exec: u64,
    /// Everything else: branch bubbles, fetch stalls, spawn flushes,
    /// structural stalls.
    pub other: u64,
}

impl CycleBreakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.l3_miss + self.l2_miss + self.l1_miss + self.cache_exec + self.exec + self.other
    }
}

/// Complete result of one timed simulation.
///
/// `PartialEq` compares every field, so two results are equal only when
/// the runs were cycle-for-cycle identical — what the differential and
/// determinism tests assert.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimResult {
    /// Cycles spent inside the region of interest (whole run if the
    /// program has no ROI markers).
    pub cycles: u64,
    /// Total cycles including any pre/post-ROI execution.
    pub total_cycles: u64,
    /// Main-thread instructions executed inside the ROI.
    pub main_insts: u64,
    /// Speculative-thread instructions executed inside the ROI.
    pub spec_insts: u64,
    /// Per-cycle classification (ROI only).
    pub breakdown: CycleBreakdown,
    /// Per-static-load hit statistics (ROI only).
    pub loads: HashMap<InstTag, LoadStats>,
    /// `chk.c` executions that found a free context and fired.
    pub spawns_fired: u64,
    /// `chk.c` executions that found no free context (behaved as a nop).
    pub spawns_suppressed: u64,
    /// `spawn` instructions that actually started a thread.
    pub threads_spawned: u64,
    /// `spawn` instructions dropped for want of a free context.
    pub spawns_dropped: u64,
    /// Speculative threads killed by the runaway cap.
    pub runaway_kills: u64,
    /// Conditional-branch executions in the main thread.
    pub branches: u64,
    /// Mispredicted conditional branches in the main thread.
    pub mispredicts: u64,
    /// Whether the program reached `halt` (vs. the cycle cap).
    pub halted: bool,
}

impl SimResult {
    /// Main-thread IPC over the ROI.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.main_insts as f64 / self.cycles as f64
        }
    }

    /// Aggregate load stats over a set of tags (e.g. the delinquent set).
    pub fn load_stats_for(&self, tags: &[InstTag]) -> LoadStats {
        let mut agg = LoadStats::default();
        for t in tags {
            if let Some(s) = self.loads.get(t) {
                agg.merge(s);
            }
        }
        agg
    }

    /// Aggregate load stats over every static load.
    pub fn load_stats_all(&self) -> LoadStats {
        let mut agg = LoadStats::default();
        for s in self.loads.values() {
            agg.merge(s);
        }
        agg
    }
}

/// Speedup of `new` over `base` as a ratio of ROI cycles.
pub fn speedup(base: &SimResult, new: &SimResult) -> f64 {
    base.cycles as f64 / new.cycles as f64
}

/// Number of power-of-two buckets in a [`WindowStats`] length histogram:
/// bucket `i` counts windows of length in `[2^i, 2^(i+1))`, with the last
/// bucket open-ended.
pub const WINDOW_HIST_BUCKETS: usize = 24;

/// How the fast engine spent its simulated cycles — the per-window
/// instrumentation behind `ssp-perf-report/4`'s `windows` object.
///
/// Three regimes are distinguished:
///
/// * **busy windows** — spans the busy-path batcher ran in its lean
///   main-thread-only loop (no speculative thread could issue);
/// * **idle skips** — spans the event-driven clock jumped over entirely
///   (no thread could issue);
/// * **stepped cycles** — everything else, simulated one cycle at a time
///   by the full `step_cycle` loop.
///
/// The two histograms bucket window lengths by power of two (bucket `i`
/// counts lengths in `[2^i, 2^(i+1))`), so a glance shows whether the
/// residual bottleneck is many short windows (per-window entry/exit
/// overhead) or a few long ones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WindowStats {
    /// Busy windows the batcher completed.
    pub busy_windows: u64,
    /// Cycles simulated inside busy windows.
    pub busy_cycles: u64,
    /// Idle spans the event-driven clock jumped over.
    pub idle_skips: u64,
    /// Cycles skipped by idle jumps.
    pub idle_cycles: u64,
    /// Cycles simulated one at a time by the full cycle loop.
    pub stepped_cycles: u64,
    /// Busy-window lengths, bucketed by power of two.
    pub busy_len_hist: [u64; WINDOW_HIST_BUCKETS],
    /// Idle-skip lengths, bucketed by power of two.
    pub idle_len_hist: [u64; WINDOW_HIST_BUCKETS],
}

impl Default for WindowStats {
    fn default() -> Self {
        WindowStats {
            busy_windows: 0,
            busy_cycles: 0,
            idle_skips: 0,
            idle_cycles: 0,
            stepped_cycles: 0,
            busy_len_hist: [0; WINDOW_HIST_BUCKETS],
            idle_len_hist: [0; WINDOW_HIST_BUCKETS],
        }
    }
}

/// The histogram bucket for a window of `len` cycles.
fn hist_bucket(len: u64) -> usize {
    (63 - u64::leading_zeros(len.max(1)) as usize).min(WINDOW_HIST_BUCKETS - 1)
}

impl WindowStats {
    /// Total cycles the three regimes account for. The accounting
    /// invariant — asserted by `simulate_windowed`, the crosscheck
    /// suites, and `perf_report` — is that this equals the run's
    /// `total_cycles`: every simulated cycle lands in exactly one
    /// regime (the halting cycle, which `total_cycles` excludes, is
    /// counted by none).
    pub fn simulated(&self) -> u64 {
        self.busy_cycles + self.idle_cycles + self.stepped_cycles
    }

    /// Record one completed busy window of `len` cycles.
    pub fn record_busy(&mut self, len: u64) {
        self.busy_windows += 1;
        self.busy_cycles += len;
        self.busy_len_hist[hist_bucket(len)] += 1;
    }

    /// Record one idle skip of `len` cycles.
    pub fn record_idle(&mut self, len: u64) {
        self.idle_skips += 1;
        self.idle_cycles += len;
        self.idle_len_hist[hist_bucket(len)] += 1;
    }

    /// Merge another run's window statistics into this one (used by
    /// `perf_report` to aggregate a whole workload suite into one row).
    pub fn merge(&mut self, other: &WindowStats) {
        self.busy_windows += other.busy_windows;
        self.busy_cycles += other.busy_cycles;
        self.idle_skips += other.idle_skips;
        self.idle_cycles += other.idle_cycles;
        self.stepped_cycles += other.stepped_cycles;
        for i in 0..WINDOW_HIST_BUCKETS {
            self.busy_len_hist[i] += other.busy_len_hist[i];
            self.idle_len_hist[i] += other.idle_len_hist[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_stats_record_and_rate() {
        let mut s = LoadStats::default();
        s.record(HitWhere::L1);
        s.record(HitWhere::Mem);
        s.record(HitWhere::MemPartial);
        s.record(HitWhere::L2);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.l1_misses(), 3);
        assert!((s.l1_miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total() {
        let b =
            CycleBreakdown { l3_miss: 1, l2_miss: 2, l1_miss: 3, cache_exec: 4, exec: 5, other: 6 };
        assert_eq!(b.total(), 21);
    }

    #[test]
    fn speedup_ratio() {
        let base = SimResult { cycles: 200, ..Default::default() };
        let new = SimResult { cycles: 100, ..Default::default() };
        assert!((speedup(&base, &new) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_hist_buckets_are_pow2() {
        let mut w = WindowStats::default();
        w.record_busy(1); // bucket 0
        w.record_busy(3); // bucket 1
        w.record_busy(4); // bucket 2
        w.record_idle(1 << 30); // clamps into the last bucket
        assert_eq!(w.busy_windows, 3);
        assert_eq!(w.busy_cycles, 8);
        assert_eq!(w.busy_len_hist[0], 1);
        assert_eq!(w.busy_len_hist[1], 1);
        assert_eq!(w.busy_len_hist[2], 1);
        assert_eq!(w.idle_len_hist[WINDOW_HIST_BUCKETS - 1], 1);
        assert_eq!(w.idle_cycles, 1 << 30);
    }

    #[test]
    fn window_stats_merge_is_fieldwise() {
        let mut a = WindowStats::default();
        a.record_busy(4);
        a.record_idle(2);
        let mut b = WindowStats::default();
        b.record_busy(1);
        b.stepped_cycles = 10;
        a.merge(&b);
        assert_eq!(a.busy_windows, 2);
        assert_eq!(a.busy_cycles, 5);
        assert_eq!(a.idle_skips, 1);
        assert_eq!(a.stepped_cycles, 10);
        assert_eq!(a.busy_len_hist[0], 1);
        assert_eq!(a.busy_len_hist[2], 1);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = LoadStats { accesses: 2, l1: 1, mem: 1, ..Default::default() };
        let b = LoadStats { accesses: 3, l2: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.accesses, 5);
        assert_eq!(a.l2, 3);
        assert_eq!(a.l1_misses(), 4);
    }
}
