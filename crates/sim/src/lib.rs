//! A cycle-stepped SMT research-Itanium simulator, reproducing the
//! SMTSIM/IPFsim infrastructure the paper evaluates on (§4.1).
//!
//! The simulator is execution driven: it runs [`ssp_ir`] programs
//! functionally while a timing model decides when results become
//! available. Two machine models are provided, both with four hardware
//! thread contexts and the Table-1 memory hierarchy:
//!
//! * [`MachineConfig::in_order`] — the 12-stage two-bundle-wide in-order
//!   pipeline;
//! * [`MachineConfig::out_of_order`] — the 16-stage OOO pipeline with a
//!   per-thread 255-entry ROB and 18-entry reservation station.
//!
//! Besides timed simulation ([`simulate`]) the crate offers the fast
//! profiling pass ([`profile()`]) that feeds the post-pass tool: per-load
//! cache profiles, block/edge frequencies, and the dynamic call graph.
//!
//! # Example
//!
//! ```
//! use ssp_ir::{ProgramBuilder, Reg, CmpKind};
//! use ssp_sim::{simulate, MachineConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let e = f.entry_block();
//! let body = f.new_block();
//! let exit = f.new_block();
//! f.at(e).movi(Reg(1), 0).br(body);
//! f.at(body)
//!     .add(Reg(1), Reg(1), 1)
//!     .cmp(CmpKind::Lt, Reg(2), Reg(1), 100)
//!     .br_cond(Reg(2), body, exit);
//! f.at(exit).halt();
//! let main = f.finish();
//! let prog = pb.finish_with(main);
//!
//! let result = simulate(&prog, &MachineConfig::in_order());
//! assert!(result.halted);
//! assert!(result.cycles > 0);
//! ```
//!
//! For observability, [`simulate_traced`] additionally returns a
//! [`ssp_trace::SimTrace`] classifying every speculative prefetch as
//! early / timely / late / useless relative to its consuming load.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod decode;
pub mod engine;
pub mod exec;
pub mod mem;
pub mod profile;
pub mod snapshot;
pub mod stats;
pub mod stride;
mod telemetry;
mod window;

pub use cache::{AccessResult, Hierarchy, HitWhere};
pub use config::{CacheConfig, MachineConfig, MemoryMode, PipelineKind};
pub use decode::{DecodedInst, DecodedProgram};
pub use engine::{
    simulate, simulate_crosschecked, simulate_reference, simulate_snapshot,
    simulate_snapshot_stepped, simulate_stepped, simulate_traced, simulate_traced_stepped,
    simulate_windowed, Engine,
};
pub use exec::{RegFile, Scoreboard};
pub use mem::{LiveInBuffer, Memory, LIB_NO_SLOT};
pub use profile::{profile, LoadProfile, Profile};
pub use snapshot::{ArchSnapshot, TrapKind};
pub use ssp_trace::{SimTrace, Timeliness, TimelinessCounts};
pub use stats::{speedup, CycleBreakdown, LoadStats, SimResult, WindowStats, WINDOW_HIST_BUCKETS};
pub use stride::StridePrefetcher;
