//! Allocation-free prefetch-timeliness telemetry for the engine.
//!
//! When tracing is requested ([`crate::simulate_traced`]) the engine
//! carries a [`Telemetry`] collector that classifies every speculative
//! prefetch as early / timely / late / useless relative to the
//! main-thread load that consumes the prefetched line (the paper's
//! Fig. 9 vocabulary). Everything the collector touches inside the
//! cycle loop is pre-allocated, extending the PR-1 side-table pattern:
//!
//! * dense per-tag arrays sized by [`Program::next_tag`] map a
//!   prefetching instruction to the delinquent load it targets and hold
//!   per-load histograms;
//! * outstanding prefetches live in a fixed-capacity open-addressing
//!   hash table keyed by cache-line address, with linear probing, a
//!   bounded probe window, and deterministic eviction (so parallel runs
//!   stay byte-identical to serial ones).
//!
//! Classification rules, applied in simulation order:
//!
//! * a speculative access that hits L1 or an in-flight fill, or whose
//!   line is already being tracked, did no new work → **useless**;
//! * a main-thread ROI load that finds its line in the table consumes
//!   the prefetch: L1 hit → **timely**, partial hit (line in transit)
//!   → **late**, anything deeper → **early** (the prefetched line was
//!   displaced before use);
//! * entries still in the table when the run ends were never consumed
//!   → **useless**.
//!
//! Early/timely/late are credited to the *consuming* load's tag;
//! useless prefetches are credited to the delinquent load the slice
//! targets (via the `targets` map from
//! `ssp_core::prefetch_targets`), falling back to the prefetching
//! instruction's own tag for untargeted speculative accesses.

use crate::cache::HitWhere;
use crate::config::MachineConfig;
use crate::stats::SimResult;
use ssp_ir::{InstTag, Program};
use ssp_trace::{SimTrace, Timeliness, TimelinessCounts};

/// Slots in the outstanding-prefetch table. Sized far above the fill
/// buffer depth (16) times the number of speculative contexts, so
/// overflow evictions ([`SimTrace::prefetch_table_evictions`]) indicate
/// a pathological run rather than routine operation.
const TABLE_SLOTS: usize = 8192;
/// Linear-probe window; a full window forces a deterministic eviction.
const PROBE_LIMIT: usize = 32;

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Full,
    /// Tombstone: removed, but probes must continue past it.
    Dead,
}

#[derive(Clone, Copy)]
struct Slot {
    state: SlotState,
    /// Cache-line address of the outstanding prefetch.
    line: u64,
    /// Cycle the prefetched fill completes.
    ready_at: u64,
    /// Raw tag value the prefetch is attributed to if it goes unused.
    target: u32,
}

const EMPTY_SLOT: Slot = Slot { state: SlotState::Empty, line: 0, ready_at: 0, target: 0 };

/// The engine-side collector. All storage is allocated in
/// [`Telemetry::new`]; the per-event paths never allocate.
pub(crate) struct Telemetry {
    line_mask: u64,
    /// Tag value → targeted delinquent load's tag value + 1 (0 = none).
    target_of: Vec<u32>,
    /// Dense per-tag histograms; compacted into a sparse sorted vec by
    /// [`Telemetry::finish`].
    per_load: Vec<TimelinessCounts>,
    table: Vec<Slot>,
    /// Event counters the engine increments directly.
    pub live_in_copies: u64,
    pub slices_killed: u64,
    pub prefetches_dropped: u64,
    prefetches_issued: u64,
    prefetches_completed: u64,
    evictions: u64,
}

impl Telemetry {
    /// Build a collector for `prog`. `targets` maps prefetching
    /// instruction tags (slice loads and `lfetch`es) to the delinquent
    /// load each slice targets.
    pub(crate) fn new(prog: &Program, cfg: &MachineConfig, targets: &[(InstTag, InstTag)]) -> Self {
        let n = prog.next_tag as usize;
        let mut target_of = vec![0u32; n];
        for &(pf, root) in targets {
            if let Some(t) = target_of.get_mut(pf.0 as usize) {
                *t = root.0 + 1;
            }
        }
        Telemetry {
            line_mask: !(cfg.l1d.line as u64 - 1),
            target_of,
            per_load: vec![TimelinessCounts::default(); n],
            table: vec![EMPTY_SLOT; TABLE_SLOTS],
            live_in_copies: 0,
            slices_killed: 0,
            prefetches_dropped: 0,
            prefetches_issued: 0,
            prefetches_completed: 0,
            evictions: 0,
        }
    }

    fn classify(&mut self, tag_value: u32, class: Timeliness) {
        if let Some(h) = self.per_load.get_mut(tag_value as usize) {
            h.record(class);
        }
    }

    fn home(&self, line: u64) -> usize {
        // Fibonacci hashing of the line address; TABLE_SLOTS is a power
        // of two, so masking keeps the distribution.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (TABLE_SLOTS - 1)
    }

    /// A speculative thread issued a prefetching access (`lfetch` or a
    /// slice load) that the hierarchy accepted.
    pub(crate) fn record_prefetch(
        &mut self,
        tag: InstTag,
        addr: u64,
        ready_at: u64,
        hit: HitWhere,
    ) {
        self.prefetches_issued += 1;
        let target = match self.target_of.get(tag.0 as usize) {
            Some(&t) if t != 0 => t - 1,
            _ => tag.0,
        };
        // The line was already resident (L1) or in transit (partial):
        // the prefetch did no new work.
        if !matches!(hit, HitWhere::L2 | HitWhere::L3 | HitWhere::Mem) {
            self.classify(target, Timeliness::Useless);
            return;
        }
        let line = addr & self.line_mask;
        let home = self.home(line);
        let mut insert_at = None;
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & (TABLE_SLOTS - 1);
            let s = &self.table[idx];
            match s.state {
                SlotState::Full if s.line == line => {
                    // Duplicate prefetch of a tracked line: useless.
                    self.classify(target, Timeliness::Useless);
                    return;
                }
                SlotState::Full => {}
                SlotState::Empty => {
                    insert_at = insert_at.or(Some(idx));
                    break;
                }
                SlotState::Dead => insert_at = insert_at.or(Some(idx)),
            }
        }
        let idx = match insert_at {
            Some(i) => i,
            None => {
                // Probe window full: deterministically evict the entry
                // with the earliest completion (ties broken by slot
                // order), counting the victim as useless.
                let mut victim = home & (TABLE_SLOTS - 1);
                let mut best = u64::MAX;
                for i in 0..PROBE_LIMIT {
                    let idx = (home + i) & (TABLE_SLOTS - 1);
                    if self.table[idx].ready_at < best {
                        best = self.table[idx].ready_at;
                        victim = idx;
                    }
                }
                let old_target = self.table[victim].target;
                self.classify(old_target, Timeliness::Useless);
                self.evictions += 1;
                victim
            }
        };
        self.table[idx] = Slot { state: SlotState::Full, line, ready_at, target };
    }

    /// The main thread executed a demand load inside the ROI.
    pub(crate) fn record_demand(&mut self, tag: InstTag, addr: u64, hit: HitWhere, now: u64) {
        let line = addr & self.line_mask;
        let home = self.home(line);
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & (TABLE_SLOTS - 1);
            match self.table[idx].state {
                SlotState::Empty => return,
                SlotState::Dead => {}
                SlotState::Full if self.table[idx].line != line => {}
                SlotState::Full => {
                    if self.table[idx].ready_at <= now {
                        self.prefetches_completed += 1;
                    }
                    self.table[idx].state = SlotState::Dead;
                    let class = match hit {
                        HitWhere::L1 => Timeliness::Timely,
                        HitWhere::L2Partial | HitWhere::L3Partial | HitWhere::MemPartial => {
                            Timeliness::Late
                        }
                        HitWhere::L2 | HitWhere::L3 | HitWhere::Mem => Timeliness::Early,
                    };
                    self.classify(tag.0, class);
                    return;
                }
            }
        }
    }

    /// Drain the table (unconsumed prefetches are useless), fold in the
    /// engine counters, and produce the final trace.
    pub(crate) fn finish(mut self, result: &SimResult, end_cycle: u64) -> SimTrace {
        for idx in 0..TABLE_SLOTS {
            if self.table[idx].state == SlotState::Full {
                let target = self.table[idx].target;
                if self.table[idx].ready_at <= end_cycle {
                    self.prefetches_completed += 1;
                }
                self.table[idx].state = SlotState::Dead;
                self.classify(target, Timeliness::Useless);
            }
        }
        let per_load: Vec<(u32, TimelinessCounts)> = self
            .per_load
            .iter()
            .enumerate()
            .filter(|(_, h)| h.total() > 0)
            .map(|(i, h)| (i as u32, *h))
            .collect();
        SimTrace {
            triggers_fired: result.spawns_fired,
            triggers_suppressed: result.spawns_suppressed,
            slices_spawned: result.threads_spawned,
            slices_killed: self.slices_killed,
            live_in_copies: self.live_in_copies,
            prefetches_issued: self.prefetches_issued,
            prefetches_dropped: self.prefetches_dropped,
            prefetches_completed: self.prefetches_completed,
            prefetch_table_evictions: self.evictions,
            per_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, ProgramBuilder, Reg};

    fn tiny_prog() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        // Enough instructions that tags 0..8 exist.
        f.at(e)
            .movi(Reg(1), 0)
            .movi(Reg(2), 0)
            .ld(Reg(3), Reg(1), 0)
            .ld(Reg(4), Reg(1), 8)
            .cmp(CmpKind::Lt, Reg(5), Reg(1), 1)
            .ld(Reg(6), Reg(1), 16)
            .ld(Reg(7), Reg(1), 24)
            .ld(Reg(8), Reg(1), 32)
            .halt();
        let main = f.finish();
        pb.finish_with(main)
    }

    fn tel(targets: &[(InstTag, InstTag)]) -> Telemetry {
        let prog = tiny_prog();
        let cfg = MachineConfig::in_order();
        Telemetry::new(&prog, &cfg, targets)
    }

    const PF: InstTag = InstTag(5); // the "slice load" tag
    const ROOT: InstTag = InstTag(2); // the delinquent load it targets
    const CONSUMER: InstTag = InstTag(3); // main-thread load consuming the line

    #[test]
    fn timely_when_demand_hits_l1() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        t.record_demand(CONSUMER, 0x1008, HitWhere::L1, 500);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(CONSUMER.0).timely, 1);
        assert_eq!(trace.totals().total(), 1);
        assert_eq!(trace.prefetches_issued, 1);
        assert_eq!(trace.prefetches_completed, 1);
    }

    #[test]
    fn late_when_line_still_in_transit() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        // Demand arrives at cycle 100 < 230: partial hit.
        t.record_demand(CONSUMER, 0x1000, HitWhere::MemPartial, 100);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(CONSUMER.0).late, 1);
        // The fill had not completed at consumption time.
        assert_eq!(trace.prefetches_completed, 0);
    }

    #[test]
    fn early_when_line_was_displaced_before_use() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        // By the time the demand load runs, the line fell out of L1.
        t.record_demand(CONSUMER, 0x1000, HitWhere::L2, 90_000);
        let trace = t.finish(&SimResult::default(), 100_000);
        assert_eq!(trace.histogram(CONSUMER.0).early, 1);
    }

    #[test]
    fn useless_when_never_consumed_credits_root() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(ROOT.0).useless, 1);
        assert_eq!(trace.histogram(CONSUMER.0).total(), 0);
    }

    #[test]
    fn useless_when_prefetch_was_redundant() {
        let mut t = tel(&[(PF, ROOT)]);
        // The line was already in L1: no work done.
        t.record_prefetch(PF, 0x1000, 2, HitWhere::L1);
        // The line was already in transit: no work done either.
        t.record_prefetch(PF, 0x2000, 50, HitWhere::MemPartial);
        // Tracked-line duplicate: first insert works, second is useless.
        t.record_prefetch(PF, 0x3000, 230, HitWhere::Mem);
        t.record_prefetch(PF, 0x3008, 230, HitWhere::Mem);
        let trace = t.finish(&SimResult::default(), 1000);
        // 3 immediate useless + 1 unconsumed at finish.
        assert_eq!(trace.histogram(ROOT.0).useless, 4);
        assert_eq!(trace.prefetches_issued, 4);
    }

    #[test]
    fn completion_exactly_at_the_consuming_cycle_counts_completed() {
        // Boundary of the `ready_at <= now` comparison: the fill lands
        // on the very cycle the consuming load executes. That is still
        // a completed prefetch, and an L1 hit there is timely.
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        t.record_demand(CONSUMER, 0x1000, HitWhere::L1, 230);
        // One cycle earlier the same fill is still in flight.
        t.record_prefetch(PF, 0x2000, 230, HitWhere::Mem);
        t.record_demand(CONSUMER, 0x2000, HitWhere::MemPartial, 229);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(CONSUMER.0).timely, 1);
        assert_eq!(trace.histogram(CONSUMER.0).late, 1);
        assert_eq!(trace.prefetches_completed, 1);
    }

    #[test]
    fn table_evicted_line_is_gone_for_later_demands() {
        // Overflow the probe window so the earliest-completing entry
        // (the victim) is displaced, then demand the victim's line: the
        // consuming load must find nothing — the eviction already
        // settled that prefetch as useless.
        let mut t = tel(&[(PF, ROOT)]);
        let mut lines = Vec::new();
        let home0 = t.home(0);
        let mut cand = 0u64;
        while lines.len() < PROBE_LIMIT + 1 {
            if t.home(cand << 6) == home0 {
                lines.push(cand << 6);
            }
            cand += 1;
        }
        // Ascending ready_at: the first inserted line is the victim.
        for (i, &l) in lines.iter().enumerate() {
            t.record_prefetch(PF, l, 100 + i as u64, HitWhere::Mem);
        }
        t.record_demand(CONSUMER, lines[0], HitWhere::L1, 5000);
        let trace = t.finish(&SimResult::default(), 10_000);
        assert_eq!(trace.prefetch_table_evictions, 1);
        assert_eq!(trace.histogram(CONSUMER.0).total(), 0);
        // Victim + the rest drained at finish; nothing double-counted.
        assert_eq!(trace.totals().total(), (PROBE_LIMIT + 1) as u64);
        assert_eq!(trace.histogram(ROOT.0).useless, (PROBE_LIMIT + 1) as u64);
    }

    #[test]
    fn double_prefetch_keeps_the_first_entry_consumable() {
        // A duplicate prefetch of an already-tracked line is useless on
        // the spot but must not clobber the original entry — the
        // eventual demand load still consumes it as timely.
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        t.record_prefetch(PF, 0x1008, 400, HitWhere::Mem);
        let trace_mid_useless = 1; // settled immediately for the duplicate
        t.record_demand(CONSUMER, 0x1000, HitWhere::L1, 500);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(ROOT.0).useless, trace_mid_useless);
        assert_eq!(trace.histogram(CONSUMER.0).timely, 1);
        assert_eq!(trace.prefetches_issued, 2);
        // Only the surviving (first) entry's fill completed before use.
        assert_eq!(trace.prefetches_completed, 1);
    }

    #[test]
    fn untargeted_prefetch_credits_its_own_tag() {
        let mut t = tel(&[]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.histogram(PF.0).useless, 1);
    }

    #[test]
    fn demand_on_untracked_line_is_ignored() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_demand(CONSUMER, 0x9000, HitWhere::Mem, 10);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.totals().total(), 0);
    }

    #[test]
    fn consumed_line_is_not_double_counted() {
        let mut t = tel(&[(PF, ROOT)]);
        t.record_prefetch(PF, 0x1000, 230, HitWhere::Mem);
        t.record_demand(CONSUMER, 0x1000, HitWhere::L1, 500);
        t.record_demand(CONSUMER, 0x1000, HitWhere::L1, 501);
        let trace = t.finish(&SimResult::default(), 1000);
        assert_eq!(trace.totals().total(), 1);
    }

    #[test]
    fn probe_window_overflow_evicts_deterministically() {
        let mut t = tel(&[(PF, ROOT)]);
        // Brute-force search for PROBE_LIMIT+1 distinct lines sharing
        // one home slot, so the probe window must overflow.
        let mut lines = Vec::new();
        let home0 = t.home(0);
        let mut cand = 0u64;
        while lines.len() < PROBE_LIMIT + 1 {
            if t.home(cand << 6) == home0 {
                lines.push(cand << 6);
            }
            cand += 1;
        }
        for (i, &l) in lines.iter().enumerate() {
            t.record_prefetch(PF, l, 100 + i as u64, HitWhere::Mem);
        }
        let trace = t.finish(&SimResult::default(), 10_000);
        assert_eq!(trace.prefetch_table_evictions, 1);
        assert_eq!(trace.prefetches_issued, (PROBE_LIMIT + 1) as u64);
        // Evicted + drained-at-finish all land in useless.
        assert_eq!(trace.histogram(ROOT.0).useless, (PROBE_LIMIT + 1) as u64);
    }
}
