//! A minimal, fully offline property-testing shim exposing the subset of
//! the `proptest` crate's API this workspace uses.
//!
//! The real `proptest` cannot be resolved without network access, so this
//! in-tree stand-in keeps the property tests runnable (behind each crate's
//! default-off `heavy-tests` feature) with zero external dependencies.
//! It generates random values from deterministic per-test xorshift64*
//! streams and runs the test body for `ProptestConfig::cases` cases.
//! Strategies have no value trees, so a failing `proptest!` case panics
//! with the generated inputs left to the assertion message; seeded
//! fuzzers that describe each case by scalar knobs can instead minimize
//! failures with the [`shrink`] module's driver.

pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec` — strategy for vectors with a length range.
pub mod collection {
    use crate::strategy::{SBox, Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length in `len`.
    pub fn vec<S: Strategy + 'static>(element: S, len: Range<usize>) -> VecStrategy<S::Value>
    where
        S::Value: 'static,
    {
        VecStrategy { element: SBox::new(element), len }
    }
}

/// `prop::sample::select` — pick uniformly from a fixed list.
pub mod sample {
    use crate::strategy::Select;

    /// A strategy selecting one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// `prop::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy for an unbiased boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = bool::Any;
    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::Range<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()`, etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, SBox, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Build a strategy choosing uniformly between the listed strategies
/// (all must share one `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::SBox::new($s)),+])
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0usize..1), &mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        let s = crate::collection::vec(0u8..5, 2..9);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let s = prop_oneof![(0u64..4).prop_map(|x| x * 2), (10u64..12).prop_map(|x| x + 1)];
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v < 8 || (11..13).contains(&v));
            low |= v < 8;
            high |= v >= 11;
        }
        assert!(low && high, "both arms exercised");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)] // Leaf's payload only matters for Debug output
        enum T {
            Leaf(u8),
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..4).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::deterministic("rec");
        for _ in 0..100 {
            let t = Strategy::generate(&s, &mut rng);
            assert!(depth(&t) <= 4, "depth bounded by the recursion budget: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(
            a in 0u32..10,
            b in prop::sample::select(vec![1u64, 2, 3]),
            flip in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            let _ = flip;
        }
    }
}
