//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy simply produces a value from the test's RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// inner levels and wraps it one level deeper, up to `depth` levels.
    /// (`_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> SBox<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(SBox<Self::Value>) -> R,
    {
        let leaf: SBox<Self::Value> = SBox::new(self);
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = SBox::new(recurse(level));
            // Mix the leaf back in at every level so generated values
            // cover all depths, not just the maximum.
            level = SBox::new(OneOf::new(vec![leaf.clone(), deeper]));
        }
        level
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> SBox<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        SBox::new(self)
    }
}

/// A shared, type-erased strategy (the shim's `BoxedStrategy`).
pub struct SBox<T>(Rc<dyn Strategy<Value = T>>);

impl<T> SBox<T> {
    /// Box a strategy.
    pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        SBox(Rc::new(s))
    }
}

impl<T> Clone for SBox<T> {
    fn clone(&self) -> Self {
        SBox(Rc::clone(&self.0))
    }
}

impl<T> Strategy for SBox<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<SBox<T>>,
}

impl<T> OneOf<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<SBox<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Uniform choice from a fixed list (`prop::sample::select`).
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Vectors of an element strategy (`prop::collection::vec`).
pub struct VecStrategy<T> {
    pub(crate) element: SBox<T>,
    pub(crate) len: Range<usize>,
}

impl<T> Strategy for VecStrategy<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
