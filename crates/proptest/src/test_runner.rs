//! Test configuration and the deterministic RNG driving generation.

/// Number-of-cases configuration (`ProptestConfig::with_cases`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many generated cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic xorshift64* stream, seeded from the test's name so
/// every run of a given test sees the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (e.g. the test's module path).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h } }
    }

    /// Seed from a caller-chosen numeric seed (fuzzers use this to make
    /// every case reproducible from a `--seed` flag; seed 0 is remapped
    /// since xorshift has a zero fixed point).
    pub fn from_seed(seed: u64) -> Self {
        // One splitmix64 round so nearby seeds (1, 2, 3, ...) land in
        // unrelated parts of the xorshift state space.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng { state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`), by rejection sampling so the
    /// distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn from_seed_is_deterministic_and_spreads() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        let mut c = TestRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "adjacent seeds give unrelated streams");
        let _ = TestRng::from_seed(0).next_u64(); // zero seed is usable
    }

    #[test]
    fn below_covers_range() {
        let mut r = TestRng::deterministic("below");
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
