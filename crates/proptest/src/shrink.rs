//! Minimal shrinking support.
//!
//! The shim's strategies have no value trees, so shrinking works on the
//! *case description* instead: a failing case is re-derived from a small
//! set of scalar knobs (a seed plus size parameters), and [`minimize`]
//! drives those knobs toward their minima while the failure persists.
//! That is exactly what seeded fuzzers need — the shrunk knobs stay
//! reproducible, unlike a shrunk opaque value.

/// Candidate smaller values for one scalar knob: its minimum first, then
/// binary steps from `min` toward `value`, then `value - 1`. Empty when
/// the knob is already minimal.
///
/// The ordering matters: [`minimize`] tries candidates in order and
/// restarts on the first that still fails, so putting the most aggressive
/// reductions first gives the classic "try zero, then halve the distance"
/// shrink schedule in O(log n) rounds.
pub fn scalar_candidates(value: u64, min: u64) -> Vec<u64> {
    if value <= min {
        return Vec::new();
    }
    let mut out = vec![min];
    let mut delta = (value - min) / 2;
    while delta > 0 {
        let c = value - delta;
        if c != min && out.last() != Some(&c) {
            out.push(c);
        }
        delta /= 2;
    }
    if out.last() != Some(&(value - 1)) && value - 1 != min {
        out.push(value - 1);
    }
    out
}

/// Greedy fixed-point shrink driver.
///
/// Starting from a value known to fail (`fails(&start)` must be true),
/// repeatedly asks `candidates` for simpler variants and moves to the
/// first one that still fails, until no candidate fails. `candidates`
/// should return variants ordered most-aggressive-first (see
/// [`scalar_candidates`]).
///
/// Returns the minimized value together with the number of `fails`
/// evaluations spent (useful for reporting and for capping shrink cost
/// upstream: `candidates` can return fewer options as the count grows).
pub fn minimize<T, C, F>(start: T, candidates: C, mut fails: F) -> (T, u64)
where
    C: Fn(&T) -> Vec<T>,
    F: FnMut(&T) -> bool,
{
    let mut cur = start;
    let mut evals = 0u64;
    'outer: loop {
        for cand in candidates(&cur) {
            evals += 1;
            if fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        return (cur, evals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_candidates_shrink_toward_min() {
        assert_eq!(scalar_candidates(5, 5), Vec::<u64>::new());
        let c = scalar_candidates(100, 2);
        assert_eq!(c[0], 2, "minimum is tried first");
        assert!(c.windows(2).all(|w| w[0] < w[1]), "monotone schedule: {c:?}");
        assert_eq!(*c.last().unwrap(), 99, "off-by-one is tried last");
        assert!(c.iter().all(|&v| (2..100).contains(&v)));
    }

    #[test]
    fn minimize_finds_smallest_failing_scalar() {
        // Failure iff value >= 37; minimization from 1000 must land on 37.
        let (min, evals) = minimize(1000u64, |&v| scalar_candidates(v, 0), |&v| v >= 37);
        assert_eq!(min, 37);
        assert!(evals < 200, "log-ish number of probes, got {evals}");
    }

    #[test]
    fn minimize_handles_multi_knob_values() {
        // Two knobs; failure needs a >= 3 regardless of b. Shrinking must
        // zero out b and reduce a to 3.
        let cands = |&(a, b): &(u64, u64)| {
            let mut out: Vec<(u64, u64)> =
                scalar_candidates(a, 0).into_iter().map(|x| (x, b)).collect();
            out.extend(scalar_candidates(b, 0).into_iter().map(|x| (a, x)));
            out
        };
        let ((a, b), _) = minimize((9, 14), cands, |&(a, _)| a >= 3);
        assert_eq!((a, b), (3, 0));
    }
}
