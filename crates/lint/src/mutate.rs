//! Defect seeding for mutation-testing the linter.
//!
//! Each mutator takes a *correctly* adapted program plus the plan of one
//! of its slices and plants a specific, realistic bug — the kind a
//! regression in the emitter or scheduler would introduce. The test
//! suite asserts that [`crate::lint`] kills every mutant with the
//! expected diagnostic, which is the evidence that each check actually
//! checks something.
//!
//! Mutators panic when the program does not have the shape they expect
//! to corrupt (they are test helpers; a panic means the fixture, not the
//! linter, is wrong).

use crate::PlanView;
use ssp_ir::reg::conv;
use ssp_ir::{AluKind, BlockId, Inst, Op, Program, Reg};

/// Remove the first live-in copy (`lib_st`) from the stub, so the
/// spawned slice reads a buffer word nobody wrote.
/// Expected diagnostic: `live-in-copy-missing`.
pub fn drop_stub_copy(prog: &mut Program, plan: &PlanView) {
    let insts = &mut prog.func_mut(plan.trigger.func).block_mut(plan.stub).insts;
    let pos = insts
        .iter()
        .position(|i| matches!(i.op, Op::LibSt { .. }))
        .expect("stub has a live-in copy to drop");
    insts.remove(pos);
}

/// Append a copy of a live-in word the slice never loads.
/// Expected diagnostic: `dead-live-in-copy`.
pub fn add_dead_stub_copy(prog: &mut Program, plan: &PlanView) {
    let tag = prog.fresh_tag();
    let insts = &mut prog.func_mut(plan.trigger.func).block_mut(plan.stub).insts;
    let slot = match insts.first().map(|i| &i.op) {
        Some(&Op::LibAlloc { dst }) => dst,
        other => panic!("stub does not start with lib_alloc: {other:?}"),
    };
    let pos =
        insts.iter().position(|i| matches!(i.op, Op::Spawn { .. })).expect("stub has a spawn");
    insts.insert(pos, Inst::new(tag, Op::LibSt { slot, idx: 15, src: conv::ZERO }));
}

/// Plant a second `chk.c` for the same stub at the top of the trigger
/// block, so hot paths fire the trigger twice.
/// Expected diagnostics: `multi-trigger` (and `trigger-dup-path`).
pub fn duplicate_trigger(prog: &mut Program, plan: &PlanView) {
    let tag = prog.fresh_tag();
    let block = prog.func_mut(plan.trigger.func).block_mut(plan.trigger.block);
    block.insts.insert(0, Inst::new(tag, Op::ChkC { stub: plan.stub }));
}

/// Insert a store to memory at the head of the slice body — the defining
/// violation of p-slice hygiene (a speculative thread must never commit
/// state).
/// Expected diagnostic: `store-in-slice`.
pub fn insert_store(prog: &mut Program, plan: &PlanView) {
    let tag = prog.fresh_tag();
    let block = prog.func_mut(plan.trigger.func).block_mut(plan.slice_entry);
    block.insts.insert(0, Inst::new(tag, Op::St { src: conv::ZERO, base: conv::SP, off: 0 }));
}

/// Replace the first `kill_thread` in the slice with `halt`, unbalancing
/// spawn/kill: a spawned thread now exits without releasing its context.
/// Expected diagnostic: `slice-exit-not-kill`.
pub fn unbalance_spawn(prog: &mut Program, plan: &PlanView) {
    let func = prog.func_mut(plan.trigger.func);
    for b in plan.slice_entry.0..=plan.stub.0 {
        for inst in &mut func.block_mut(BlockId(b)).insts {
            if matches!(inst.op, Op::KillThread) {
                inst.op = Op::Halt;
                return;
            }
        }
    }
    panic!("slice has no kill_thread to unbalance");
}

/// Flip the chain-budget decrement into an increment, so the chaining
/// slice re-spawns forever.
/// Expected diagnostic: `chain-unbounded`.
pub fn unbound_chain(prog: &mut Program, plan: &PlanView) {
    let func = prog.func_mut(plan.trigger.func);
    for b in plan.slice_entry.0..=plan.stub.0 {
        for inst in &mut func.block_mut(BlockId(b)).insts {
            if let Op::Alu { kind: kind @ AluKind::Sub, .. } = &mut inst.op {
                *kind = AluKind::Add;
                return;
            }
        }
    }
    panic!("slice has no budget decrement to flip");
}

/// Make the stub overwrite a register the main thread still reads after
/// resuming from the trigger.
/// Expected diagnostic: `stub-clobbers-live`.
pub fn clobber_live_reg(prog: &mut Program, plan: &PlanView, reg: Reg) {
    let tag = prog.fresh_tag();
    let insts = &mut prog.func_mut(plan.trigger.func).block_mut(plan.stub).insts;
    insts.insert(1, Inst::new(tag, Op::Movi { dst: reg, imm: 0 }));
}

/// Remove the first live-in load from the slice entry, so the slice body
/// reads a register the child context never initializes.
/// Expected diagnostics: `upward-exposed` (and `live-in-layout`).
pub fn drop_entry_copy(prog: &mut Program, plan: &PlanView) {
    let insts = &mut prog.func_mut(plan.trigger.func).block_mut(plan.slice_entry).insts;
    let pos = insts
        .iter()
        .position(|i| matches!(i.op, Op::LibLd { .. }))
        .expect("slice entry has a live-in load to drop");
    insts.remove(pos);
}
