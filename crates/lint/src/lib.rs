//! Static verification of SSP-adapted binaries.
//!
//! The adaptation's correctness argument (paper §3.3–§3.4) rests on
//! structural invariants of the rewritten binary. The fuzz oracle checks
//! them *dynamically* — run the binary, watch for violations — which
//! only covers programs the generator reaches. [`lint`] proves (or
//! reports typed [`Diagnostic`]s against) the same invariants
//! *statically*, without simulation:
//!
//! * **Trigger-path coverage** — on the profile-hot sub-CFG, every
//!   acyclic path from the function entry to each delinquent load
//!   crosses its slice's trigger `chk.c` exactly once, established with
//!   dominator-ordered path counting ([`ssp_ir::paths`]).
//! * **Live-in completeness** — backward dataflow over the slice body
//!   ([`ssp_ir::dataflow::upward_exposed_uses`]) proves every
//!   upward-exposed register is written by the live-in copy prefix, the
//!   copy prefix matches the plan's live-in layout, every spawn site
//!   stores exactly the words the slice reads, and no copy is dead.
//! * **Slice hygiene** — slices are store-free, every slice exit is a
//!   `KillThread` (a speculative thread may never `Ret` or `Halt`), a
//!   basic slice spawns nothing, and a chaining slice's single re-spawn
//!   is gated on a strictly decremented chain budget, which bounds
//!   runahead by the spawn counter.
//! * **Stub/slice well-formedness** — attachment layout, stub shape
//!   (alloc → copies → spawn → resume), trigger fallthrough consistency,
//!   fresh tags on every synthesized instruction, and no stub write to a
//!   register the main thread still reads at the resume point.
//!
//! The pipeline runs the linter as a post-emit gate (see
//! `ssp_codegen::adapt`), the `lint` binary in `ssp-bench` reports over
//! the workload suite as deterministic JSON, and the fuzz oracle
//! cross-checks static verdicts against dynamic violations. [`mutate`]
//! seeds known defects into adapted programs so tests can prove each
//! check actually kills its mutant class.

#![warn(missing_docs)]

pub mod mutate;

use ssp_ir::cfg::Cfg;
use ssp_ir::dataflow::upward_exposed_uses;
use ssp_ir::dom::DomTree;
use ssp_ir::loops::LoopForest;
use ssp_ir::paths::{PathClasses, PathCounts};
use ssp_ir::reg::conv;
use ssp_ir::{AluKind, BlockId, CmpKind, FuncId, InstTag, Op, Operand, Program, Reg};
use ssp_sched::SpModel;
use ssp_sim::Profile;
use ssp_trigger::TriggerPoint;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The linter's view of one emitted slice — the adaptation-plan facts it
/// verifies the binary against. Mirrors `ssp_codegen::EmittedSlice`
/// (re-stated here so the code generator can depend on the linter).
#[derive(Clone, Debug)]
pub struct PlanView {
    /// Tags of the delinquent loads the slice covers.
    pub root_tags: Vec<InstTag>,
    /// Where the trigger was placed (original-program coordinates; the
    /// block id is stable across the trigger split).
    pub trigger: TriggerPoint,
    /// Stub block id in the adapted program.
    pub stub: BlockId,
    /// Slice entry block id in the adapted program.
    pub slice_entry: BlockId,
    /// Precomputation model.
    pub model: SpModel,
    /// Live-in registers in buffer-slot order.
    pub live_ins: Vec<Reg>,
}

/// One statically detected invariant violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DiagKind {
    /// No `chk.c` names the plan's stub block.
    TriggerNotFound,
    /// More than one `chk.c` names the same stub block.
    MultiTrigger {
        /// How many triggers target the stub.
        count: usize,
    },
    /// The trigger site does not match Figure 7's layout (`chk.c`
    /// followed by the fallthrough branch the stub resumes at).
    TriggerMalformed {
        /// What is wrong.
        reason: String,
    },
    /// A profile-hot acyclic path reaches a delinquent load without
    /// crossing the slice's trigger.
    TriggerMissPath {
        /// The uncovered delinquent load.
        root: InstTag,
        /// Number of trigger-free hot paths (saturating).
        paths: u64,
    },
    /// A profile-hot acyclic path crosses the slice's trigger more than
    /// once before reaching the load.
    TriggerDupPath {
        /// The over-covered delinquent load.
        root: InstTag,
        /// Number of multiply-covered hot paths (saturating).
        paths: u64,
    },
    /// A block in the emitted stub/slice range is not marked as an
    /// attachment block.
    NotAttachment {
        /// The offending block.
        block: BlockId,
    },
    /// A synthesized instruction carries an original-program tag (or an
    /// attachment block contains a stale instruction).
    StaleTag {
        /// The stale tag.
        tag: InstTag,
        /// The block holding it.
        block: BlockId,
    },
    /// The stub block does not match the emitted shape
    /// (alloc → live-in copies → spawn → resume branch).
    StubMalformed {
        /// What is wrong.
        reason: String,
    },
    /// The stub writes a register the main thread still reads at the
    /// trigger's resume point.
    StubClobbersLive {
        /// The clobbered register.
        reg: Reg,
    },
    /// The slice entry's live-in copy prefix disagrees with the plan's
    /// live-in layout.
    LiveInLayout {
        /// What is wrong.
        reason: String,
    },
    /// The slice body reads a register no live-in copy (or in-slice
    /// definition) writes — the child context starts zeroed, so the
    /// slice would compute addresses from garbage.
    UpwardExposed {
        /// The exposed register.
        reg: Reg,
    },
    /// A spawn site does not store a live-in word the slice reads.
    CopyMissing {
        /// The missing buffer index.
        idx: u8,
        /// The spawn site's block.
        spawn_block: BlockId,
    },
    /// A spawn site stores a live-in word the slice never reads.
    DeadCopy {
        /// The dead buffer index.
        idx: u8,
        /// The spawn site's block.
        spawn_block: BlockId,
    },
    /// A store instruction inside the speculative slice.
    StoreInSlice {
        /// Block containing the store.
        block: BlockId,
        /// Instruction index within the block.
        idx: usize,
    },
    /// A slice exit terminator other than `KillThread`.
    SliceExitNotKill {
        /// The offending block.
        block: BlockId,
    },
    /// No path through the slice reaches a `KillThread`.
    SliceNeverKills,
    /// A basic-model slice contains an in-slice spawn.
    SpawnInBasicSlice {
        /// Block containing the spawn.
        block: BlockId,
    },
    /// A chaining slice's spawn structure is broken (wrong spawn count,
    /// wrong target, or no buffer allocation at a spawn site).
    ChainMalformed {
        /// What is wrong.
        reason: String,
    },
    /// A chaining slice's re-spawn is not provably bounded by a strictly
    /// decremented chain budget.
    ChainUnbounded {
        /// What is wrong.
        reason: String,
    },
}

impl DiagKind {
    /// Stable machine-readable code for this diagnostic.
    pub fn code(&self) -> &'static str {
        match self {
            DiagKind::TriggerNotFound => "trigger-not-found",
            DiagKind::MultiTrigger { .. } => "multi-trigger",
            DiagKind::TriggerMalformed { .. } => "trigger-malformed",
            DiagKind::TriggerMissPath { .. } => "trigger-miss-path",
            DiagKind::TriggerDupPath { .. } => "trigger-dup-path",
            DiagKind::NotAttachment { .. } => "not-attachment",
            DiagKind::StaleTag { .. } => "stale-tag",
            DiagKind::StubMalformed { .. } => "stub-malformed",
            DiagKind::StubClobbersLive { .. } => "stub-clobbers-live",
            DiagKind::LiveInLayout { .. } => "live-in-layout",
            DiagKind::UpwardExposed { .. } => "upward-exposed",
            DiagKind::CopyMissing { .. } => "live-in-copy-missing",
            DiagKind::DeadCopy { .. } => "dead-live-in-copy",
            DiagKind::StoreInSlice { .. } => "store-in-slice",
            DiagKind::SliceExitNotKill { .. } => "slice-exit-not-kill",
            DiagKind::SliceNeverKills => "slice-never-kills",
            DiagKind::SpawnInBasicSlice { .. } => "spawn-in-basic-slice",
            DiagKind::ChainMalformed { .. } => "chain-malformed",
            DiagKind::ChainUnbounded { .. } => "chain-unbounded",
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagKind::TriggerNotFound => write!(f, "no chk.c targets the stub"),
            DiagKind::MultiTrigger { count } => {
                write!(f, "{count} chk.c instructions target the stub")
            }
            DiagKind::TriggerMalformed { reason } => write!(f, "trigger site malformed: {reason}"),
            DiagKind::TriggerMissPath { root, paths } => {
                write!(f, "{paths} hot path(s) reach load {root} without firing the trigger")
            }
            DiagKind::TriggerDupPath { root, paths } => {
                write!(f, "{paths} hot path(s) fire the trigger more than once before load {root}")
            }
            DiagKind::NotAttachment { block } => {
                write!(f, "emitted block {block} is not marked as an attachment")
            }
            DiagKind::StaleTag { tag, block } => {
                write!(f, "instruction in attachment block {block} reuses original tag {tag}")
            }
            DiagKind::StubMalformed { reason } => write!(f, "stub malformed: {reason}"),
            DiagKind::StubClobbersLive { reg } => {
                write!(f, "stub writes {reg}, which the main thread reads after resuming")
            }
            DiagKind::LiveInLayout { reason } => write!(f, "live-in layout mismatch: {reason}"),
            DiagKind::UpwardExposed { reg } => {
                write!(f, "slice reads {reg} before any definition (not a copied live-in)")
            }
            DiagKind::CopyMissing { idx, spawn_block } => {
                write!(f, "spawn in {spawn_block} never stores live-in word {idx}")
            }
            DiagKind::DeadCopy { idx, spawn_block } => {
                write!(f, "spawn in {spawn_block} stores word {idx}, which the slice never reads")
            }
            DiagKind::StoreInSlice { block, idx } => {
                write!(f, "store at {block}[{idx}] inside a speculative slice")
            }
            DiagKind::SliceExitNotKill { block } => {
                write!(f, "slice exit {block} does not end in kill_thread")
            }
            DiagKind::SliceNeverKills => write!(f, "no slice path reaches a kill_thread"),
            DiagKind::SpawnInBasicSlice { block } => {
                write!(f, "basic-model slice spawns a thread in {block}")
            }
            DiagKind::ChainMalformed { reason } => write!(f, "chain spawn malformed: {reason}"),
            DiagKind::ChainUnbounded { reason } => {
                write!(f, "chain not provably bounded: {reason}")
            }
        }
    }
}

/// One diagnostic, attributed to the slice plan that failed the check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Index of the offending slice in the plan list passed to [`lint`].
    pub slice: usize,
    /// Function the slice lives in.
    pub func: FuncId,
    /// What went wrong.
    pub kind: DiagKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice {} in {}: [{}] {}", self.slice, self.func, self.kind.code(), self.kind)
    }
}

/// Everything the linter found. Empty means all invariants are proved.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct LintReport {
    /// All diagnostics, in slice order then check order (deterministic).
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether the report is empty (alias of [`LintReport::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether any diagnostic carries the given stable code.
    pub fn has(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.kind.code() == code)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diags.is_empty() {
            return write!(f, "clean");
        }
        write!(f, "{} diagnostic(s)", self.diags.len())?;
        for d in &self.diags {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

/// Per-function context shared by all of a function's slice checks.
struct FuncCtx {
    cfg: Cfg,
    loops: LoopForest,
    /// Raw upward-exposed registers at each block entry over the
    /// main-thread (entry-reachable) subgraph, computed lazily.
    exposed_main: HashMap<BlockId, Vec<Reg>>,
}

/// Statically verify the SSP invariants of `adapted` against its plan.
///
/// `original` supplies the tag bound (tags at or above
/// `original.next_tag` are synthesized) and the pre-adaptation block
/// counts used to separate profiled blocks from split continuations;
/// `profile` defines the hot sub-CFG for trigger-path coverage.
pub fn lint(
    original: &Program,
    adapted: &Program,
    profile: &Profile,
    plans: &[PlanView],
) -> LintReport {
    let mut report = LintReport::default();
    let tag_bound = original.next_tag;
    let index = adapted.tag_index();
    let mut ctxs: HashMap<FuncId, FuncCtx> = HashMap::new();

    for (si, plan) in plans.iter().enumerate() {
        let fid = plan.trigger.func;
        let diag = |kind: DiagKind| Diagnostic { slice: si, func: fid, kind };
        let func = adapted.func(fid);
        let nb = func.blocks.len();
        if plan.stub.index() >= nb
            || plan.slice_entry.index() >= nb
            || plan.slice_entry.index() > plan.stub.index()
        {
            report.diags.push(diag(DiagKind::StubMalformed {
                reason: format!(
                    "slice range {}..={} out of bounds ({nb} blocks)",
                    plan.slice_entry, plan.stub
                ),
            }));
            continue;
        }
        let ctx = ctxs.entry(fid).or_insert_with(|| {
            let cfg = Cfg::new(func);
            let dom = DomTree::dominators(func, &cfg);
            let loops = LoopForest::new(func, &cfg, &dom);
            FuncCtx { cfg, loops, exposed_main: HashMap::new() }
        });

        // ---- (d) Layout, tags, trigger/stub shape ----
        for b in plan.slice_entry.0..=plan.stub.0 {
            let bid = BlockId(b);
            if !func.block(bid).attachment {
                report.diags.push(diag(DiagKind::NotAttachment { block: bid }));
            }
            for inst in &func.block(bid).insts {
                if inst.tag.0 < tag_bound {
                    report.diags.push(diag(DiagKind::StaleTag { tag: inst.tag, block: bid }));
                }
            }
        }

        // Every chk.c naming this stub, anywhere in the function.
        let mut sites: Vec<(BlockId, usize)> = Vec::new();
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if inst.op == (Op::ChkC { stub: plan.stub }) {
                    sites.push((bid, i));
                }
            }
        }
        if sites.is_empty() {
            report.diags.push(diag(DiagKind::TriggerNotFound));
        } else if sites.len() > 1 {
            report.diags.push(diag(DiagKind::MultiTrigger { count: sites.len() }));
        }

        // The primary trigger site must be `chk.c; br resume` and the
        // stub must resume at the same fallthrough block.
        let resume = sites.first().and_then(|&(bid, i)| {
            match func.block(bid).insts.get(i + 1).map(|inst| &inst.op) {
                Some(&Op::Br { target }) => Some(target),
                _ => {
                    report.diags.push(diag(DiagKind::TriggerMalformed {
                        reason: format!("chk.c at {bid}[{i}] is not followed by its resume branch"),
                    }));
                    None
                }
            }
        });
        let stub_resume = check_stub_shape(func, plan, &mut report, si);
        if let (Some(r), Some(sr)) = (resume, stub_resume) {
            if r != sr {
                report.diags.push(diag(DiagKind::TriggerMalformed {
                    reason: format!("stub resumes at {sr} but the trigger falls through to {r}"),
                }));
            }
        }

        // ---- (a) Trigger-path coverage on the hot sub-CFG ----
        if !sites.is_empty() {
            let site = sites[0].0;
            let orig_nb = original.funcs.get(fid.0 as usize).map_or(0, |f| f.blocks.len()) as u32;
            let hot = |b: BlockId| b.0 >= orig_nb || profile.block_count(fid, b) > 0;
            let marks = |b: BlockId| sites.iter().filter(|&&(sb, _)| sb == b).count() as u32;
            let roots_at: Vec<(InstTag, BlockId)> = plan
                .root_tags
                .iter()
                .filter_map(|&root| {
                    let at = *index.get(&root)?;
                    (at.func == fid).then_some((root, at.block))
                })
                .collect();
            if let Some(lid) = ctx.loops.innermost(site) {
                // The trigger sits inside a loop and re-fires every time
                // around it, so the first iteration's entry prefix
                // legitimately precedes the trigger (the fired slice
                // prefetches for the *next* iteration). The invariant is
                // per iteration: every hot path of one full trip —
                // header to latch, back edges removed — crosses the
                // trigger exactly once, for every latch.
                let l = ctx.loops.get(lid);
                let counts =
                    PathCounts::from_source(&ctx.cfg, l.header, |b| l.contains(b) && hot(b), marks);
                // A trigger behind the load (the latch-resident
                // induction-update case) is crossed by every iteration
                // and prefetches the *next* iteration's instances; one
                // ahead of the load must be crossed by every in-iteration
                // path that reaches the load. Either discharges coverage.
                let latch_classes: Vec<PathClasses> =
                    l.latches.iter().filter_map(|&b| counts.at(b)).collect();
                let latch_miss: u64 = latch_classes.iter().map(|c| c.zero).sum();
                let latch_dup: u64 = latch_classes.iter().map(|c| c.many).sum();
                for &(root, at) in &roots_at {
                    if !l.contains(at) {
                        // A load the looping trigger can never cover.
                        report.diags.push(diag(DiagKind::TriggerMissPath { root, paths: 1 }));
                        continue;
                    }
                    let root_classes = counts.at(at);
                    let root_miss = root_classes.map_or(0, |c| c.zero);
                    if latch_miss > 0 && root_miss > 0 {
                        report.diags.push(diag(DiagKind::TriggerMissPath {
                            root,
                            paths: latch_miss.min(root_miss),
                        }));
                    }
                    let dup = latch_dup.max(root_classes.map_or(0, |c| c.many));
                    if dup > 0 {
                        report.diags.push(diag(DiagKind::TriggerDupPath { root, paths: dup }));
                    }
                }
            } else {
                // A straight-line trigger must lie on every hot acyclic
                // path from the function entry to each covered load.
                let counts = PathCounts::new(&ctx.cfg, hot, marks);
                for &(root, at) in &roots_at {
                    let Some(classes) = counts.at(at) else { continue };
                    if classes.zero > 0 {
                        report
                            .diags
                            .push(diag(DiagKind::TriggerMissPath { root, paths: classes.zero }));
                    }
                    if classes.many > 0 {
                        report
                            .diags
                            .push(diag(DiagKind::TriggerDupPath { root, paths: classes.many }));
                    }
                }
            }
        }

        // ---- Slice subgraph ----
        let slice_blocks = reachable_from(func, plan.slice_entry);

        // ---- (b) Live-in completeness ----
        let copy_prefix = entry_copy_prefix(func, plan.slice_entry);
        check_live_in_layout(plan, &copy_prefix, &mut report, si);
        let needed: BTreeSet<u8> = copy_prefix.iter().map(|&(idx, _)| idx).collect();

        for &r in &upward_exposed_uses(func, plan.slice_entry, &slice_blocks) {
            if r != conv::SLOT && r != conv::ZERO {
                report.diags.push(diag(DiagKind::UpwardExposed { reg: r }));
            }
        }

        // Every spawn site targeting this slice must store exactly the
        // buffer words the entry prefix reads.
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Op::Spawn { entry, slot } = inst.op else { continue };
                if entry != plan.slice_entry {
                    continue;
                }
                let stored: BTreeSet<u8> = block.insts[..i]
                    .iter()
                    .filter_map(|x| match x.op {
                        Op::LibSt { slot: s, idx, .. } if s == slot => Some(idx),
                        _ => None,
                    })
                    .collect();
                let allocated = block.insts[..i]
                    .iter()
                    .any(|x| matches!(x.op, Op::LibAlloc { dst } if dst == slot));
                if !allocated {
                    report.diags.push(diag(DiagKind::ChainMalformed {
                        reason: format!("spawn in {bid} passes {slot} with no lib_alloc before it"),
                    }));
                }
                for &idx in needed.difference(&stored) {
                    report.diags.push(diag(DiagKind::CopyMissing { idx, spawn_block: bid }));
                }
                for &idx in stored.difference(&needed) {
                    report.diags.push(diag(DiagKind::DeadCopy { idx, spawn_block: bid }));
                }
            }
        }

        // ---- (c) Slice hygiene ----
        let mut kills = 0usize;
        let mut in_slice_spawns: Vec<(BlockId, Reg)> = Vec::new();
        for &bid in &slice_blocks {
            let block = func.block(bid);
            for (i, inst) in block.insts.iter().enumerate() {
                match inst.op {
                    Op::St { .. } => {
                        report.diags.push(diag(DiagKind::StoreInSlice { block: bid, idx: i }));
                    }
                    Op::Spawn { slot, .. } => in_slice_spawns.push((bid, slot)),
                    Op::KillThread => kills += 1,
                    _ => {}
                }
            }
            let term = block.terminator();
            if term.branch_targets().is_empty() && !matches!(term, Op::KillThread) {
                report.diags.push(diag(DiagKind::SliceExitNotKill { block: bid }));
            }
        }
        if kills == 0 {
            report.diags.push(diag(DiagKind::SliceNeverKills));
        }
        match plan.model {
            SpModel::Basic => {
                for &(bid, _) in &in_slice_spawns {
                    report.diags.push(diag(DiagKind::SpawnInBasicSlice { block: bid }));
                }
            }
            SpModel::Chaining => {
                if in_slice_spawns.len() != 1 {
                    report.diags.push(diag(DiagKind::ChainMalformed {
                        reason: format!(
                            "chaining slice has {} in-slice spawns (want 1)",
                            in_slice_spawns.len()
                        ),
                    }));
                } else {
                    check_chain_bounded(
                        func,
                        plan,
                        &copy_prefix,
                        in_slice_spawns[0].0,
                        &mut report,
                        si,
                    );
                }
            }
        }

        // ---- Stub scratch vs main-thread liveness ----
        if let Some(resume) = stub_resume {
            let main_blocks: Vec<BlockId> = ctx.cfg.rpo().to_vec();
            let exposed = ctx
                .exposed_main
                .entry(resume)
                .or_insert_with(|| upward_exposed_uses(func, resume, &main_blocks));
            for inst in &func.block(plan.stub).insts {
                if let Some(d) = inst.op.def() {
                    if exposed.contains(&d) {
                        report.diags.push(Diagnostic {
                            slice: si,
                            func: fid,
                            kind: DiagKind::StubClobbersLive { reg: d },
                        });
                    }
                }
            }
        }
    }
    report
}

/// Blocks reachable from `entry` through terminator edges (`ChkC` and
/// `Spawn` are not control-flow edges), ascending.
fn reachable_from(func: &ssp_ir::Function, entry: BlockId) -> Vec<BlockId> {
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![entry];
    seen[entry.index()] = true;
    while let Some(b) = stack.pop() {
        for t in func.block(b).terminator().branch_targets() {
            if t.index() < seen.len() && !seen[t.index()] {
                seen[t.index()] = true;
                stack.push(t);
            }
        }
    }
    (0..func.blocks.len() as u32).map(BlockId).filter(|b| seen[b.index()]).collect()
}

/// The slice entry's live-in copy prefix: leading `lib_ld`s from the
/// child's slot register, as `(buffer index, destination)` pairs.
fn entry_copy_prefix(func: &ssp_ir::Function, entry: BlockId) -> Vec<(u8, Reg)> {
    let mut out = Vec::new();
    for inst in &func.block(entry).insts {
        match inst.op {
            Op::LibLd { dst, slot, idx } if slot == conv::SLOT => out.push((idx, dst)),
            _ => break,
        }
    }
    out
}

/// Check the copy prefix against the plan's live-in layout: word `i`
/// loads `live_ins[i]`, chaining adds exactly one budget word after.
fn check_live_in_layout(plan: &PlanView, prefix: &[(u8, Reg)], report: &mut LintReport, si: usize) {
    let n = plan.live_ins.len();
    let expect_len = n + usize::from(plan.model == SpModel::Chaining);
    let mut problem: Option<String> = None;
    if prefix.len() != expect_len {
        problem = Some(format!("{} copies for {} planned words", prefix.len(), expect_len));
    } else {
        for (i, &r) in plan.live_ins.iter().enumerate() {
            let (idx, dst) = prefix[i];
            if idx != i as u8 || dst != r {
                problem = Some(format!("word {i} loads index {idx} into {dst}, plan wants {r}"));
                break;
            }
        }
        if problem.is_none() && plan.model == SpModel::Chaining && prefix[n].0 != n as u8 {
            problem = Some(format!("budget word loads index {} (want {n})", prefix[n].0));
        }
    }
    if let Some(reason) = problem {
        report.diags.push(Diagnostic {
            slice: si,
            func: plan.trigger.func,
            kind: DiagKind::LiveInLayout { reason },
        });
    }
}

/// Stub shape per Figure 7: `lib_alloc` first, `lib_st`s into that slot,
/// the spawn of the slice entry second-to-last, and the resume branch
/// last. Returns the resume target when the tail is intact.
fn check_stub_shape(
    func: &ssp_ir::Function,
    plan: &PlanView,
    report: &mut LintReport,
    si: usize,
) -> Option<BlockId> {
    let fid = plan.trigger.func;
    let mut fail = |reason: String| {
        report.diags.push(Diagnostic {
            slice: si,
            func: fid,
            kind: DiagKind::StubMalformed { reason },
        });
    };
    let insts = &func.block(plan.stub).insts;
    let Some(Op::LibAlloc { dst: slot }) = insts.first().map(|i| &i.op) else {
        fail("stub does not start with lib_alloc".to_owned());
        return None;
    };
    for inst in insts.iter() {
        if let Op::LibSt { slot: s, .. } = inst.op {
            if s != *slot {
                fail(format!("stub stores into {s} instead of the allocated {slot}"));
            }
        }
    }
    let n = insts.len();
    if n < 3 {
        fail(format!("stub has only {n} instructions"));
        return None;
    }
    match (&insts[n - 2].op, &insts[n - 1].op) {
        (&Op::Spawn { entry, slot: s }, &Op::Br { target }) => {
            if entry != plan.slice_entry {
                fail(format!("stub spawns {entry} instead of the slice entry"));
            }
            if s != *slot {
                fail(format!("stub spawn passes {s} instead of the allocated {slot}"));
            }
            Some(target)
        }
        _ => {
            fail("stub does not end with spawn + resume branch".to_owned());
            None
        }
    }
}

/// Prove the chaining re-spawn is bounded: the entry loads a budget
/// counter, the spawn block is only entered when a `cmp.gt counter, 0`
/// result (conjunctively) holds, and the re-spawned budget is the
/// counter strictly decremented. Together with the child reloading the
/// stored word this bounds runahead by the spawn counter.
fn check_chain_bounded(
    func: &ssp_ir::Function,
    plan: &PlanView,
    copy_prefix: &[(u8, Reg)],
    spawn_block: BlockId,
    report: &mut LintReport,
    si: usize,
) {
    let mut fail = |reason: String| {
        report.diags.push(Diagnostic {
            slice: si,
            func: plan.trigger.func,
            kind: DiagKind::ChainUnbounded { reason },
        });
    };
    let budget_idx = plan.live_ins.len() as u8;
    let Some(&(_, counter)) = copy_prefix.iter().find(|&&(idx, _)| idx == budget_idx) else {
        // Already reported as a live-in layout mismatch.
        return;
    };

    // The slice entry must gate the spawn block on its terminator...
    let entry_insts = &func.block(plan.slice_entry).insts;
    let Some(&Op::BrCond { pred, if_true, .. }) = entry_insts.last().map(|i| &i.op) else {
        fail("slice entry does not end in the spawn gate branch".to_owned());
        return;
    };
    if if_true != spawn_block {
        fail(format!("spawn block {spawn_block} is not the gate's taken target"));
        return;
    }
    // ...and the gate predicate must conjunctively include `counter > 0`:
    // walking the entry backwards, the predicate may be and-combined or
    // re-derived, but some `cmp.gt counter, 0` must feed it.
    let mut needed: BTreeSet<Reg> = BTreeSet::from([pred]);
    let mut guarded = false;
    for inst in entry_insts.iter().rev() {
        let Some(d) = inst.op.def() else { continue };
        if !needed.remove(&d) {
            continue;
        }
        match inst.op {
            Op::Alu { kind: AluKind::And, a, b, .. } => {
                needed.insert(a);
                if let Operand::Reg(r) = b {
                    needed.insert(r);
                }
            }
            Op::Cmp { kind: CmpKind::Gt, a, b: Operand::Imm(0), .. } if a == counter => {
                guarded = true;
            }
            Op::Cmp { kind: CmpKind::Eq, a, b: Operand::Imm(0), .. } => {
                // Inverted latch polarity folded into the gate.
                needed.insert(a);
            }
            _ => {}
        }
    }
    if !guarded {
        fail(format!("spawn gate does not test the chain budget {counter} > 0"));
    }

    // The re-spawned budget word must be `counter - k`, k >= 1.
    let spawn_insts = &func.block(spawn_block).insts;
    let stored = spawn_insts.iter().find_map(|inst| match inst.op {
        Op::LibSt { idx, src, .. } if idx == budget_idx => Some(src),
        _ => None,
    });
    let Some(stored) = stored else {
        // Already reported as a missing live-in copy.
        return;
    };
    let decremented = spawn_insts.iter().any(|inst| {
        matches!(inst.op,
            Op::Alu { kind: AluKind::Sub, dst, a, b: Operand::Imm(k) }
                if dst == stored && a == counter && k >= 1)
    });
    if !decremented {
        fail(format!("re-spawned budget {stored} is not {counter} strictly decremented"));
    }
}
