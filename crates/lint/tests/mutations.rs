//! Mutation tests: the linter must kill every seeded defect class.
//!
//! Each test adapts the same pointer-chasing fixture with the real
//! pipeline (so the binaries under test are genuine emitter output,
//! linted clean by the `adapt` gate), plants one defect with
//! [`ssp_lint::mutate`], and asserts the linter reports exactly the
//! diagnostic that check exists to produce. A mutant that survives —
//! a clean report on a corrupted binary — fails its test.

use ssp_codegen::{adapt, AdaptOptions};
use ssp_ir::{CmpKind, Operand, Program, ProgramBuilder, Reg};
use ssp_lint::{lint, mutate, LintReport, PlanView};
use ssp_sim::{MachineConfig, Profile};

/// Pointer chase over scattered nodes: adapts to one chaining slice.
fn pointer_chase(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        let perm = (i * 7919) % n;
        pb.data_word(0x0100_0000 + 64 * i, 0x0800_0000 + 64 * perm);
        pb.data_word(0x0800_0000 + 64 * perm, perm);
    }
    let mut f = pb.function("main");
    let e = f.entry_block();
    let body = f.new_block();
    let exit = f.new_block();
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, 0x0100_0000).movi(k, 0x0100_0000 + (64 * n) as i64).movi(sum, 0).br(body);
    f.at(body)
        .mov(t, arc)
        .ld(u, t, 0)
        .ld(v, u, 0)
        .add(sum, sum, Operand::Reg(v))
        .add(arc, t, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    pb.finish_with(main)
}

struct Fixture {
    original: Program,
    profile: Profile,
    adapted: Program,
    plans: Vec<PlanView>,
}

fn fixture() -> Fixture {
    let original = pointer_chase(300);
    let mc = MachineConfig::in_order();
    let profile = ssp_sim::profile(&original, &mc);
    let (adapted, report) =
        adapt(&original, &profile, &mc, &AdaptOptions::default()).expect("fixture adapts clean");
    assert!(report.slice_count() >= 1, "fixture emits a slice");
    let plans = ssp_codegen::lint_views(&report);
    Fixture { original, profile, adapted, plans }
}

impl Fixture {
    fn relint(&self, mutated: &Program) -> LintReport {
        lint(&self.original, mutated, &self.profile, &self.plans)
    }

    /// Apply one mutation to the first slice and assert the linter
    /// reports the expected diagnostic code.
    fn kills(&self, mutator: impl FnOnce(&mut Program, &PlanView), code: &str) {
        let mut mutated = self.adapted.clone();
        mutator(&mut mutated, &self.plans[0]);
        let report = self.relint(&mutated);
        assert!(report.has(code), "mutant must die with `{code}`, got: {report}",);
    }
}

#[test]
fn unmutated_fixture_lints_clean() {
    let fx = fixture();
    let report = fx.relint(&fx.adapted);
    assert!(report.is_clean(), "genuine pipeline output is clean: {report}");
}

#[test]
fn dropped_stub_copy_is_killed() {
    let fx = fixture();
    fx.kills(mutate::drop_stub_copy, "live-in-copy-missing");
}

#[test]
fn dead_stub_copy_is_killed() {
    let fx = fixture();
    fx.kills(mutate::add_dead_stub_copy, "dead-live-in-copy");
}

#[test]
fn duplicated_trigger_is_killed() {
    let fx = fixture();
    fx.kills(mutate::duplicate_trigger, "multi-trigger");
    // And the path counter independently sees the double fire.
    fx.kills(mutate::duplicate_trigger, "trigger-dup-path");
}

#[test]
fn store_in_slice_is_killed() {
    let fx = fixture();
    fx.kills(mutate::insert_store, "store-in-slice");
}

#[test]
fn unbalanced_spawn_is_killed() {
    let fx = fixture();
    fx.kills(mutate::unbalance_spawn, "slice-exit-not-kill");
}

#[test]
fn unbounded_chain_is_killed() {
    let fx = fixture();
    fx.kills(mutate::unbound_chain, "chain-unbounded");
}

#[test]
fn live_register_clobber_is_killed() {
    let fx = fixture();
    // Reg(65) holds the loop bound, which the main thread still compares
    // against after resuming from the trigger.
    fx.kills(|p, plan| mutate::clobber_live_reg(p, plan, Reg(65)), "stub-clobbers-live");
}

#[test]
fn dropped_entry_copy_is_killed() {
    let fx = fixture();
    fx.kills(mutate::drop_entry_copy, "upward-exposed");
}
