//! The optimal trigger-placement formulation (§3.3): finding the minimum
//! frequency-weighted cut between the program entry and the delinquent
//! load, "by representing cost as capacity" and running max-flow.
//!
//! We use Dinic's algorithm (polynomial, as the paper requires of the
//! Goldberg–Tarjan mapping) on the CFG with edge capacity
//! `frequency(edge) × trigger_cost`. Infrequent edges are filtered in a
//! pre-pass by flooring their capacity to zero — they then join the cut
//! for free, which is exactly "filtered out": paths through them get a
//! (never-firing) trigger at no cost.

use ssp_ir::cfg::Cfg;
use ssp_ir::{BlockId, FuncId};
use ssp_sim::Profile;
use std::collections::HashMap;

/// A directed flow network on block ids.
#[derive(Clone, Debug, Default)]
struct FlowNet {
    /// adjacency: node -> list of edge indices
    adj: HashMap<u32, Vec<usize>>,
    /// edges: (from, to, residual capacity); reverse edges interleaved.
    edges: Vec<(u32, u32, u64)>,
}

impl FlowNet {
    fn add_edge(&mut self, from: u32, to: u32, cap: u64) {
        let i = self.edges.len();
        self.edges.push((from, to, cap));
        self.edges.push((to, from, 0));
        self.adj.entry(from).or_default().push(i);
        self.adj.entry(to).or_default().push(i + 1);
    }

    /// Dinic max-flow from `s` to `t`; returns the flow value.
    fn max_flow(&mut self, s: u32, t: u32) -> u64 {
        let mut total = 0u64;
        loop {
            // BFS levels on the residual graph.
            let mut level: HashMap<u32, u32> = HashMap::new();
            level.insert(s, 0);
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &ei in self.adj.get(&v).into_iter().flatten() {
                    let (_, to, residual) = self.edges[ei];
                    if residual > 0 && !level.contains_key(&to) {
                        level.insert(to, level[&v] + 1);
                        queue.push_back(to);
                    }
                }
            }
            if !level.contains_key(&t) {
                return total;
            }
            // DFS blocking flow.
            let mut iter: HashMap<u32, usize> = HashMap::new();
            loop {
                let pushed = self.dfs(s, t, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(
        &mut self,
        v: u32,
        t: u32,
        limit: u64,
        level: &HashMap<u32, u32>,
        iter: &mut HashMap<u32, usize>,
    ) -> u64 {
        if v == t {
            return limit;
        }
        let edges_here = self.adj.get(&v).cloned().unwrap_or_default();
        let start = *iter.entry(v).or_insert(0);
        for (pos, &ei) in edges_here.iter().enumerate().skip(start) {
            iter.insert(v, pos);
            let (_, to, residual) = self.edges[ei];
            if residual == 0 {
                continue;
            }
            let (Some(&lv), Some(&lt)) = (level.get(&v), level.get(&to)) else { continue };
            if lt != lv + 1 {
                continue;
            }
            let pushed = self.dfs(to, t, limit.min(residual), level, iter);
            if pushed > 0 {
                self.edges[ei].2 -= pushed;
                self.edges[ei ^ 1].2 += pushed;
                return pushed;
            }
        }
        iter.insert(v, edges_here.len());
        0
    }
}

/// Result of the min-cut formulation: CFG edges to place triggers on and
/// the total weighted cost of the cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCutTriggers {
    /// Cut edges `(from, to)`: a trigger belongs on each.
    pub edges: Vec<(BlockId, BlockId)>,
    /// Σ frequency × cost over the cut.
    pub cost: u64,
}

/// Compute the minimum-cost trigger cut between the function entry and
/// `load_block`, with per-edge cost `frequency × trigger_cost`. Edges
/// executed fewer than `min_edge_freq` times are filtered (cuttable for
/// free). Self-loops into `load_block` (the loop back edge) are included
/// as paths: a trigger on the back edge fires once per iteration.
pub fn min_cut_triggers(
    func: FuncId,
    cfg: &Cfg,
    entry: BlockId,
    load_block: BlockId,
    profile: &Profile,
    trigger_cost: u64,
    min_edge_freq: u64,
) -> MinCutTriggers {
    // Split the load block into (in = sink, out): paths around a loop
    // back edge re-reach the load, so edges leaving the load block start
    // from its `out` twin and the back edge becomes a genuine s-t edge.
    const OUT: u32 = 0x8000_0000;
    let from_id = |b: BlockId| if b == load_block { b.0 | OUT } else { b.0 };
    let mut net = FlowNet::default();
    for &b in cfg.rpo() {
        for &s in cfg.succs(b) {
            let freq = profile.edge_freq.get(&(func, b, s)).copied().unwrap_or(0);
            let cap = if freq < min_edge_freq { 0 } else { freq.saturating_mul(trigger_cost) };
            net.add_edge(from_id(b), s.0, cap);
        }
    }
    // Execution continues past the load and may reach it again (loop
    // back edges), so the post-load point is a second source: every
    // cyclic path to the load must carry a trigger too. A super source
    // feeds both the entry and the load block's `out` twin.
    const SUPER: u32 = 0xFFFF_FFF0;
    net.add_edge(SUPER, entry.0, u64::MAX / 4);
    net.add_edge(SUPER, load_block.0 | OUT, u64::MAX / 4);
    let cost = net.max_flow(SUPER, load_block.0);
    // Source side of the residual graph.
    let mut reach = std::collections::HashSet::new();
    reach.insert(SUPER);
    let mut queue = std::collections::VecDeque::from([SUPER]);
    while let Some(v) = queue.pop_front() {
        for &ei in net.adj.get(&v).into_iter().flatten() {
            let (_, to, residual) = net.edges[ei];
            if residual > 0 && reach.insert(to) {
                queue.push_back(to);
            }
        }
    }
    let mut edges: Vec<(BlockId, BlockId)> = net
        .edges
        .iter()
        .step_by(2) // skip reverse edges
        .filter(|&&(f, t, _)| f != SUPER && reach.contains(&f) && !reach.contains(&t))
        .map(|&(f, t, _)| (BlockId(f & !OUT), BlockId(t & !OUT)))
        .collect();
    edges.sort();
    edges.dedup();
    MinCutTriggers { edges, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, ProgramBuilder, Reg};

    /// entry -> a -> load_block; entry -> b -> load_block; a hot, b cold.
    #[test]
    fn cut_prefers_cold_side_free_and_cheapest_hot_edges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let a = f.new_block();
        let b = f.new_block();
        let l = f.new_block();
        f.at(e).cmp(CmpKind::Lt, Reg(1), Reg(2), 1).br_cond(Reg(1), a, b);
        f.at(a).br(l);
        f.at(b).br(l);
        f.at(l).ld(Reg(3), Reg(4), 0).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));

        let mut profile = Profile::default();
        let fid = prog.entry;
        profile.edge_freq.insert((fid, e, a), 90);
        profile.edge_freq.insert((fid, e, b), 2); // cold: filtered
        profile.edge_freq.insert((fid, a, l), 90);
        profile.edge_freq.insert((fid, b, l), 2);

        let cut = min_cut_triggers(fid, &cfg, e, l, &profile, 10, 5);
        // The cold path's edges have zero capacity, so the min cut takes
        // e->b (or b->l) for free plus one of the 90-frequency edges.
        assert_eq!(cut.cost, 900);
        assert_eq!(cut.edges.len(), 2);
        assert!(
            cut.edges.contains(&(e, a)) || cut.edges.contains(&(a, l)),
            "one hot edge is cut: {:?}",
            cut.edges
        );
        assert!(
            cut.edges.contains(&(e, b)) || cut.edges.contains(&(b, l)),
            "cold path cut for free: {:?}",
            cut.edges
        );
    }

    /// Diamond where one intermediate block has lower total frequency:
    /// the cut should go through the narrow waist.
    #[test]
    fn cut_finds_narrow_waist() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.new_block();
        let y = f.new_block();
        let w = f.new_block(); // waist
        let l = f.new_block();
        f.at(e).cmp(CmpKind::Lt, Reg(1), Reg(2), 1).br_cond(Reg(1), x, y);
        f.at(x).br(w);
        f.at(y).br(w);
        f.at(w).br(l);
        f.at(l).ld(Reg(3), Reg(4), 0).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));
        let fid = prog.entry;
        let mut profile = Profile::default();
        profile.edge_freq.insert((fid, e, x), 70);
        profile.edge_freq.insert((fid, e, y), 70);
        profile.edge_freq.insert((fid, x, w), 70);
        profile.edge_freq.insert((fid, y, w), 70);
        profile.edge_freq.insert((fid, w, l), 100);

        let cut = min_cut_triggers(fid, &cfg, e, l, &profile, 1, 1);
        assert_eq!(cut.edges, vec![(w, l)], "single trigger at the waist");
        assert_eq!(cut.cost, 100);
    }

    #[test]
    fn loop_back_edge_participates() {
        // entry -> body; body -> body | exit; load in body. The cut
        // between entry and body must include the back edge (otherwise
        // iterations 2.. have no trigger on their path).
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(e).br(body);
        f.at(body)
            .ld(Reg(3), Reg(4), 0)
            .add(Reg(4), Reg(4), 64)
            .cmp(CmpKind::Lt, Reg(1), Reg(4), 1000)
            .br_cond(Reg(1), body, exit);
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let cfg = Cfg::new(prog.func(prog.entry));
        let fid = prog.entry;
        let mut profile = Profile::default();
        profile.edge_freq.insert((fid, e, body), 1);
        profile.edge_freq.insert((fid, body, body), 99);
        profile.edge_freq.insert((fid, body, exit), 1);

        let cut = min_cut_triggers(fid, &cfg, e, body, &profile, 1, 1);
        assert!(cut.edges.contains(&(e, body)));
        assert!(
            cut.edges.contains(&(body, body)),
            "back edge needs its own trigger: {:?}",
            cut.edges
        );
    }
}
