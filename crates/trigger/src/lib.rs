//! Trigger placement for speculative precomputation (§3.3).
//!
//! Triggers are `chk.c` instructions in the main thread's code that spawn
//! a p-slice when a hardware context is free. The set of triggers must
//! form a cut on the control-flow graph so each execution path reaching
//! the delinquent load carries one trigger, while the communication
//! (live-in copying) stays minimal.
//!
//! Two placers are provided:
//! * [`placement::place_trigger`] — the paper's conservative dominator
//!   heuristic (the default in the tool);
//! * [`mincut::min_cut_triggers`] — the optimal frequency-weighted cut
//!   via max-flow, for comparison and ablation.

#![warn(missing_docs)]

pub mod mincut;
pub mod placement;

pub use mincut::{min_cut_triggers, MinCutTriggers};
pub use placement::{combine_triggers, place_trigger, TriggerPoint, TriggerStyle};
