//! The conservative dominator-based trigger placement (§3.3).
//!
//! "We only consider the nodes that control-dominate the delinquent loads
//! as potential trigger points … the tool would first place the trigger
//! after the instruction that produces the last live-in to the slice, and
//! then move the trigger points to the immediate control dominant nodes
//! if the slack value of the immediate dominant node remains the same.
//! By moving the triggers to a control dominance point, several triggers
//! may be combined and thus reduce the number of trigger placements."
//!
//! Minimizing live-in copying takes precedence over increasing slack: the
//! chosen point always postdates every live-in producer, so the stub can
//! copy values straight from registers.

use ssp_ir::{BlockId, FuncId, InstRef, Program, Reg};
use ssp_sim::Profile;
use ssp_slicing::{FuncAnalyses, Slice};

/// Where a `chk.c` trigger should be inserted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TriggerPoint {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Insert after this instruction index; `None` = at block start.
    pub after: Option<usize>,
}

/// How live-in values are consumed, which decides where the trigger may
/// sit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerStyle {
    /// Chaining SP: each fired trigger seeds one chain link with the main
    /// thread's *current* values, so in-region producers are fair game —
    /// the trigger re-fires each iteration (suppressed while the chain
    /// keeps the contexts busy).
    PerIteration,
    /// Basic SP: the slice is a loop that starts from the region-entry
    /// values, so only producers outside the region qualify and the
    /// trigger fires once per region entry.
    PerRegionEntry,
}

/// Choose the trigger point for `slice` using the dominator heuristic.
///
/// The point is the latest live-in-producing instruction compatible with
/// `style` (see [`TriggerStyle`]); with no eligible producer the load
/// block's start is used. The point is then hoisted to immediate
/// dominators while the hoist keeps the execution frequency — our
/// stand-in for "the slack value remains the same" — and stays below
/// every live-in producer.
pub fn place_trigger(
    prog: &Program,
    fa: &FuncAnalyses,
    profile: &Profile,
    slice: &Slice,
    style: TriggerStyle,
) -> TriggerPoint {
    let fid = slice.func;
    let load = slice.root;
    let depth = |b: BlockId| fa.dom.ancestors(b).len();
    let in_region = |b: BlockId| slice.region.contains(&b);

    // The region's loop skeleton: its header is the region block that
    // dominates all the others, its latches the region blocks that
    // branch back to the header. A block dominating every latch lies on
    // every iteration of the region loop.
    let header = slice
        .region
        .iter()
        .copied()
        .find(|&h| slice.region.iter().all(|&b| fa.dom.dominates(h, b)));
    let latches: Vec<BlockId> = header
        .map(|h| {
            slice
                .region
                .iter()
                .copied()
                .filter(|&b| prog.func(fid).block(b).terminator().branch_targets().contains(&h))
                .collect()
        })
        .unwrap_or_default();
    let every_iteration =
        |b: BlockId| !latches.is_empty() && latches.iter().all(|&l| fa.dom.dominates(b, l));

    // Candidate producers: defs of live-in registers that reach the load.
    let mut best: Option<InstRef> = None;
    for &r in &slice.live_ins {
        for d in defs_reaching_root(fa, load, r) {
            let eligible = match style {
                // Only points that control-dominate the loads qualify
                // (§3.3) — with the per-iteration refinement that a
                // point crossed by *every* iteration of the region loop
                // (it dominates all latches, e.g. the induction update
                // in a single latch) also covers the loads: it fires for
                // the next iteration's instances. A producer in a
                // conditional arm or deeper loop satisfies neither, and
                // would leave hot paths to the loads uncovered.
                TriggerStyle::PerIteration => {
                    d.block == load.block
                        || fa.dom.dominates(d.block, load.block)
                        || (in_region(d.block) && every_iteration(d.block))
                }
                // Outside the region, dominating the load: the values the
                // basic slice loops from.
                TriggerStyle::PerRegionEntry => {
                    !in_region(d.block) && fa.dom.dominates(d.block, load.block)
                }
            };
            if !eligible {
                continue;
            }
            let better = match best {
                None => true,
                Some(cur) => {
                    // Prefer in-region producers for per-iteration
                    // triggers, then dominator depth, then block position.
                    let (ir_c, ir_d) = (in_region(cur.block), in_region(d.block));
                    if style == TriggerStyle::PerIteration && ir_c != ir_d {
                        ir_d
                    } else {
                        let (dc, db) = (depth(cur.block), depth(d.block));
                        db > dc || (db == dc && d.block == cur.block && d.idx > cur.idx)
                    }
                }
            };
            if better {
                best = Some(d);
            }
        }
    }

    let (mut block, after) = match best {
        Some(d) => (d.block, Some(d.idx)),
        None => match style {
            TriggerStyle::PerIteration => (load.block, None),
            // No outside producer: fall back to the nearest dominator
            // outside the region (the region-entry point).
            TriggerStyle::PerRegionEntry => {
                let mut b = load.block;
                while in_region(b) {
                    match fa.dom.idom(b) {
                        Some(p) => b = p,
                        None => break,
                    }
                }
                (b, None)
            }
        },
    };

    // Hoist block-start triggers up the dominator tree while frequency is
    // unchanged (same-slack hoist) — this is what lets several loads'
    // triggers combine at one dominance point.
    if after.is_none() {
        while let Some(up) = fa.dom.idom(block) {
            if profile.block_count(fid, up) != profile.block_count(fid, block) {
                break;
            }
            // Never hoist above a live-in producer.
            let producers_ok = slice.live_ins.iter().all(|&r| {
                defs_reaching_root(fa, load, r).iter().all(|d| {
                    d.block != up && fa.dom.dominates(d.block, up) || d.block == load.block
                })
            });
            if !producers_ok {
                break;
            }
            block = up;
        }
    }
    TriggerPoint { func: fid, block, after }
}

/// Definitions of `r` reaching the slice root.
fn defs_reaching_root(fa: &FuncAnalyses, load: InstRef, r: Reg) -> Vec<InstRef> {
    fa.rd.reaching(load.block, load.idx, r).into_iter().map(|d| d.at).collect()
}

/// Combine trigger points: deduplicate identical locations (several
/// slices hoisted to the same dominance point share one trigger site;
/// codegen still emits one `chk.c` per slice, back to back).
///
/// The result is sorted by an explicit program-order key — function,
/// then block, then instruction position (block start before any
/// `after` index) — so the emitted trigger order never depends on the
/// order slices were selected in. Downstream emission and the lint
/// report both inherit this determinism.
pub fn combine_triggers(mut points: Vec<TriggerPoint>) -> Vec<TriggerPoint> {
    points.sort_by_key(|p| (p.func, p.block, p.after.map_or(-1i64, |i| i as i64)));
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};
    use ssp_sim::MachineConfig;
    use ssp_slicing::{Analyses, SliceOptions, Slicer};

    /// The mcf-like loop; the trigger must land right after `arc`'s
    /// in-loop update (the last live-in producer), i.e. per iteration.
    #[test]
    fn trigger_after_last_live_in_producer_in_loop() {
        let mut pb = ProgramBuilder::new();
        for i in 0..64u64 {
            pb.data_word(0x1000 + 64 * i, 0x9000 + 64 * i);
        }
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(70));
        f.at(e).movi(arc, 0x1000).movi(k, 0x1000 + 64 * 64).br(body);
        f.at(body)
            .mov(t, arc) // 0
            .ld(u, t, 0) // 1
            .ld(v, u, 0) // 2 root
            .add(arc, t, 64) // 3  <- last live-in (arc) producer
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // 4
            .br_cond(p, body, exit); // 5
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let profile = ssp_sim::profile(&prog, &MachineConfig::in_order());
        let root = InstRef { func: prog.entry, block: body, idx: 2 };
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let slice = slicer.slice_in_region(root, &[body]).unwrap();
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let tp = place_trigger(&prog, fa, &profile, &slice, TriggerStyle::PerIteration);
        assert_eq!(tp.block, body, "trigger stays in the loop (refires per iteration)");
        assert_eq!(tp.after, Some(3), "right after the arc update");
        // Basic SP wants region-entry values instead: the trigger moves
        // out of the loop, after the outside producer of `arc`.
        let tp = place_trigger(&prog, fa, &profile, &slice, TriggerStyle::PerRegionEntry);
        assert_eq!(tp.block, ssp_ir::BlockId(0));
        assert_eq!(tp.after, Some(1), "after `movi k`, the last outside producer");
    }

    /// A straight-line region: live-ins defined in the entry; trigger
    /// after the last producer there.
    #[test]
    fn trigger_in_dominating_block_for_straightline_load() {
        let mut pb = ProgramBuilder::new();
        pb.data_word(0x2000, 0x3000);
        let mut f = pb.function("main");
        let e = f.entry_block();
        let mid = f.new_block();
        let (a, b, u) = (Reg(64), Reg(65), Reg(66));
        f.at(e).movi(a, 0x2000).movi(b, 8).br(mid);
        f.at(mid)
            .ld(u, a, 0) // root: needs a only
            .add(Reg(67), u, Operand::Reg(b))
            .halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let profile = ssp_sim::profile(&prog, &MachineConfig::in_order());
        let root = InstRef { func: prog.entry, block: mid, idx: 0 };
        let mut slicer = Slicer::new(&prog, &profile, SliceOptions::default());
        let slice = slicer.slice_in_region(root, &[mid]).unwrap();
        assert!(slice.live_ins.contains(&a));
        let mut an = Analyses::new();
        let fa = an.get(&prog, prog.entry);
        let tp = place_trigger(&prog, fa, &profile, &slice, TriggerStyle::PerIteration);
        assert_eq!(tp.block, e);
        assert_eq!(tp.after, Some(0), "after `movi a` — the only producer of a live-in");
    }

    #[test]
    fn combine_dedups_shared_points() {
        let p1 = TriggerPoint { func: FuncId(0), block: BlockId(1), after: None };
        let p2 = TriggerPoint { func: FuncId(0), block: BlockId(1), after: None };
        let p3 = TriggerPoint { func: FuncId(0), block: BlockId(2), after: Some(3) };
        let combined = combine_triggers(vec![p1, p2, p3]);
        assert_eq!(combined.len(), 2);
    }

    /// The combined order is a function of the point set, not of the
    /// order slice selection produced it in: every input permutation
    /// yields the same program-ordered result, with block-start points
    /// ahead of any in-block position.
    #[test]
    fn combine_is_permutation_stable() {
        let pts = [
            TriggerPoint { func: FuncId(1), block: BlockId(0), after: None },
            TriggerPoint { func: FuncId(0), block: BlockId(2), after: Some(3) },
            TriggerPoint { func: FuncId(0), block: BlockId(2), after: None },
            TriggerPoint { func: FuncId(0), block: BlockId(1), after: Some(5) },
            TriggerPoint { func: FuncId(0), block: BlockId(2), after: Some(1) },
        ];
        let expected = combine_triggers(pts.to_vec());
        assert_eq!(
            expected,
            vec![pts[3], pts[2], pts[4], pts[1], pts[0]],
            "program order: func, block, block-start before in-block indices"
        );
        // Exhaust all 120 permutations of the 5 points.
        let mut idx = [0usize, 1, 2, 3, 4];
        let mut perms = vec![idx];
        // Heap's algorithm, iterative.
        let mut c = [0usize; 5];
        let mut i = 0;
        while i < 5 {
            if c[i] < i {
                if i % 2 == 0 {
                    idx.swap(0, i);
                } else {
                    idx.swap(c[i], i);
                }
                perms.push(idx);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        assert_eq!(perms.len(), 120);
        for perm in perms {
            let shuffled: Vec<_> = perm.iter().map(|&j| pts[j]).collect();
            assert_eq!(combine_triggers(shuffled), expected);
        }
    }
}
