//! `em3d` — electromagnetic wave propagation on a bipartite graph
//! (Olden). E-nodes form a linked list; each holds `K` pointers to
//! scattered H-nodes plus coefficients, and the compute phase does
//! `value -= other->value * coeff` per dependency. The dependency value
//! loads and the list chase are delinquent.

use crate::layout::{rng_for, Scatter, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

/// Dependencies per node.
const K: u64 = 8;
/// E-node slot: next(+0), value(+8), count(+16), ptrs(+24..), coeffs.
const ENODE_SLOT: u64 = 192;

/// Build the workload.
pub fn build(seed: u64) -> Workload {
    let e_nodes: usize = 300;
    let h_nodes: usize = 1200;
    let iters: i64 = 2;

    let mut rng = rng_for("em3d", seed);
    let mut pb = ProgramBuilder::new();

    // H-nodes: 64-byte slots in the low half of the heap.
    let mut hs = Scatter::new(HEAP, 8 << 20, 64, h_nodes, &mut rng);
    let h_addrs: Vec<u64> = (0..h_nodes).map(|_| hs.alloc()).collect();
    for (i, &a) in h_addrs.iter().enumerate() {
        pb.data_word(a, f64::from(i as u32).to_bits());
    }
    // E-nodes: 192-byte slots in the high half, linked in shuffled order.
    let mut es = Scatter::new(HEAP + (8 << 20), 8 << 20, ENODE_SLOT, e_nodes, &mut rng);
    let e_addrs: Vec<u64> = (0..e_nodes).map(|_| es.alloc()).collect();
    for (i, &a) in e_addrs.iter().enumerate() {
        let next = if i + 1 < e_nodes { e_addrs[i + 1] } else { 0 };
        pb.data_word(a, next);
        pb.data_word(a + 8, 1000.0f64.to_bits());
        pb.data_word(a + 16, K);
        for j in 0..K {
            let dep = h_addrs[rng.gen_range(0..h_nodes)];
            pb.data_word(a + 24 + 8 * j, dep);
            pb.data_word(a + 24 + 8 * K + 8 * j, 0.5f64.to_bits());
        }
    }
    pb.data_word(GLOBALS, e_addrs[0]); // list root

    let mut f = pb.function("em3d_compute");
    let e = f.entry_block();
    let outer = f.new_block();
    let nloop = f.new_block();
    let jloop = f.new_block();
    let nnext = f.new_block();
    let iter_end = f.new_block();
    let exit = f.new_block();

    let (root, it, node, val, j, dep, dv, cf, t, p) =
        (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70), Reg(71), Reg(72), Reg(73));
    f.at(e).movi(Reg(80), GLOBALS as i64).ld(root, Reg(80), 0).movi(it, 0).br(outer);
    f.at(outer).mov(node, root).br(nloop);
    f.at(nloop).ld(val, node, 8).movi(j, 0).br(jloop);
    f.at(jloop)
        .shl(t, j, 3)
        .add(t, t, Operand::Reg(node))
        .ld(dep, t, 24) // dependency pointer (within the e-node's lines)
        .ld(dv, dep, 0) // delinquent: scattered H-node value
        .ld(cf, t, 24 + 8 * K as i64) // coefficient
        .falu(ssp_ir::FAluKind::Mul, dv, dv, cf)
        .falu(ssp_ir::FAluKind::Sub, val, val, dv)
        .add(j, j, 1)
        .cmp(CmpKind::Lt, p, j, K as i64)
        .br_cond(p, jloop, nnext);
    f.at(nnext)
        .st(val, node, 8)
        .ld(node, node, 0) // delinquent: list chase
        .cmp(CmpKind::Ne, p, node, 0)
        .br_cond(p, nloop, iter_end);
    f.at(iter_end).add(it, it, 1).cmp(CmpKind::SLt, p, it, iters).br_cond(p, outer, exit);
    f.at(exit).halt();

    let main = f.finish();
    Workload { name: "em3d", seed, program: pb.finish_with(main) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn runs_and_is_memory_bound() {
        let w = build(1);
        ssp_ir::verify::verify(&w.program).unwrap();
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.halted);
        // 300 nodes x 8 deps x 2 iterations of dependency-value loads.
        let agg = r.load_stats_all();
        assert!(agg.accesses >= 300 * 8 * 2);
        assert!(agg.l1_miss_rate() > 0.2, "miss rate {}", agg.l1_miss_rate());
    }

    #[test]
    fn inner_loop_dominates_dynamic_instructions() {
        let w = build(1);
        let r = simulate(&w.program, &MachineConfig::in_order());
        // 10 instructions per inner iteration x 8 x 300 x 2 = 48000 plus
        // outer overhead: the total must be in that ballpark.
        assert!(r.main_insts > 45_000 && r.main_insts < 60_000, "{}", r.main_insts);
    }
}
