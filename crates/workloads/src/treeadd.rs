//! `treeadd` — balanced binary-tree reduction (Olden), in the paper's two
//! variants: `treeadd.df` (depth-first, recursive) and `treeadd.bf`
//! (breadth-first over an explicit queue). Nodes are scattered over an
//! 8 MB heap; the child-pointer and value loads are delinquent.

use crate::layout::{rng_for, Scatter, ARRAYS, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::reg::conv;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

/// Node layout: left(+0), right(+8), value(+16). One line per node.
const DEPTH: u32 = 11; // 2^11 - 1 = 2047 nodes

fn build_tree(pb: &mut ProgramBuilder, seed: u64, name: &str) -> u64 {
    let mut rng = rng_for(name, seed);
    let count = (1usize << DEPTH) - 1;
    let mut scatter = Scatter::new(HEAP, 8 << 20, 64, count, &mut rng);
    let addrs: Vec<u64> = (0..count).map(|_| scatter.alloc()).collect();
    // Heap-index tree: node i has children 2i+1, 2i+2.
    for (i, &a) in addrs.iter().enumerate() {
        let l = if 2 * i + 1 < count { addrs[2 * i + 1] } else { 0 };
        let r = if 2 * i + 2 < count { addrs[2 * i + 2] } else { 0 };
        pb.data_word(a, l);
        pb.data_word(a + 8, r);
        pb.data_word(a + 16, i as u64 + 1);
    }
    addrs[0]
}

/// The expected sum of values (for semantic checking by tests).
pub fn expected_sum() -> u64 {
    let count = (1u64 << DEPTH) - 1;
    count * (count + 1) / 2
}

/// Depth-first (recursive) variant.
pub fn build_df(seed: u64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let root = build_tree(&mut pb, seed, "treeadd");

    let main_id = pb.declare();
    let sum_id = pb.declare();

    // main: r8 = sum(root); store to globals; halt.
    let mut m = pb.define(main_id, "main");
    let e = m.entry_block();
    m.at(e)
        .movi(conv::arg(0), root as i64)
        .call(sum_id, 1)
        .movi(Reg(80), GLOBALS as i64)
        .st(conv::RV, Reg(80), 0)
        .halt();
    let m = m.finish();

    // sum(n): if n == 0 return 0;
    //         return n.value + sum(n.left) + sum(n.right)
    // Locals in callee-saved registers, spilled around calls.
    let mut s = pb.define(sum_id, "treeadd_sum");
    let e = s.entry_block();
    let zero = s.new_block();
    let rec = s.new_block();
    let (n, acc, p) = (Reg(64), Reg(65), Reg(20));
    s.at(e).cmp(CmpKind::Eq, p, conv::arg(0), 0).br_cond(p, zero, rec);
    s.at(zero).movi(conv::RV, 0).ret();
    s.at(rec)
        // prologue: save n, acc
        .sub(conv::SP, conv::SP, 16)
        .st(n, conv::SP, 0)
        .st(acc, conv::SP, 8)
        .mov(n, conv::arg(0))
        .ld(acc, n, 16) // delinquent: n.value
        .ld(conv::arg(0), n, 0) // delinquent: n.left
        .call(sum_id, 1)
        .add(acc, acc, Operand::Reg(conv::RV))
        .ld(conv::arg(0), n, 8) // n.right
        .call(sum_id, 1)
        .add(acc, acc, Operand::Reg(conv::RV))
        .mov(conv::RV, acc)
        // epilogue
        .ld(n, conv::SP, 0)
        .ld(acc, conv::SP, 8)
        .add(conv::SP, conv::SP, 16)
        .ret();
    let s = s.finish();

    pb.install(m);
    pb.install(s);
    Workload { name: "treeadd.df", seed, program: pb.finish(main_id) }
}

/// Breadth-first variant: an explicit FIFO queue of node pointers.
pub fn build_bf(seed: u64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let root = build_tree(&mut pb, seed, "treeadd");

    let mut f = pb.function("main");
    let e = f.entry_block();
    let loop_b = f.new_block();
    let pushl = f.new_block();
    let afterl = f.new_block();
    let pushr = f.new_block();
    let afterr = f.new_block();
    let exit = f.new_block();

    let (headp, tailp, node, val, l, r, sum, p) =
        (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70), Reg(71));
    // Queue of node pointers at ARRAYS; head/tail are byte cursors.
    f.at(e)
        .movi(headp, ARRAYS as i64)
        .movi(tailp, ARRAYS as i64)
        .movi(Reg(72), root as i64)
        .st(Reg(72), tailp, 0)
        .add(tailp, tailp, 8)
        .movi(sum, 0)
        .br(loop_b);
    f.at(loop_b).cmp(CmpKind::Eq, p, headp, Operand::Reg(tailp)).br_cond(p, exit, pushl);
    // Process the head node.
    f.at(pushl)
        .ld(node, headp, 0) // queue slot (sequential)
        .add(headp, headp, 8)
        .ld(val, node, 16) // delinquent: node value
        .add(sum, sum, Operand::Reg(val))
        .ld(l, node, 0) // delinquent: left child
        .cmp(CmpKind::Eq, p, l, 0)
        .br_cond(p, pushr, afterl);
    f.at(afterl).st(l, tailp, 0).add(tailp, tailp, 8).br(pushr);
    f.at(pushr)
        .ld(r, node, 8) // right child
        .cmp(CmpKind::Eq, p, r, 0)
        .br_cond(p, loop_b, afterr);
    f.at(afterr).st(r, tailp, 0).add(tailp, tailp, 8).br(loop_b);
    f.at(exit).movi(Reg(80), GLOBALS as i64).st(sum, Reg(80), 0).halt();

    let main = f.finish();
    Workload { name: "treeadd.bf", seed, program: pb.finish_with(main) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn df_and_bf_visit_every_node() {
        let df = build_df(5);
        let bf = build_bf(5);
        ssp_ir::verify::verify(&df.program).unwrap();
        ssp_ir::verify::verify(&bf.program).unwrap();
        let count = (1u64 << DEPTH) - 1;
        let rdf = simulate(&df.program, &MachineConfig::in_order());
        let rbf = simulate(&bf.program, &MachineConfig::in_order());
        assert!(rdf.halted && rbf.halted);
        // Every node's value load runs exactly once in each variant.
        let df_val_loads: u64 = rdf.loads.values().map(|s| s.accesses).sum();
        assert!(df_val_loads >= count * 3, "left+right+value per node");
        let bf_val_loads: u64 = rbf.loads.values().map(|s| s.accesses).sum();
        assert!(bf_val_loads >= count * 3);
    }

    #[test]
    fn both_variants_are_memory_bound() {
        for w in [build_df(1), build_bf(1)] {
            let r = simulate(&w.program, &MachineConfig::in_order());
            let agg = r.load_stats_all();
            assert!(agg.l1_miss_rate() > 0.2, "{} miss rate {}", w.name, agg.l1_miss_rate());
            assert!(r.halted);
        }
    }

    #[test]
    fn recursion_preserves_callee_saved_state() {
        // If the prologue/epilogue were wrong the df variant would lose
        // its accumulator and execute wildly different instruction
        // counts; pin the exact dynamic instruction count instead.
        let w = build_df(2);
        let r = simulate(&w.program, &MachineConfig::in_order());
        let nodes = (1u64 << DEPTH) - 1; // calls on real nodes
        let null_calls = nodes + 1;
        // main: 5; per call: entry cmp+branch (2); real node: 16-inst rec
        // block; null call: 2-inst zero block.
        let expected = 5 + (nodes + null_calls) * 2 + nodes * 16 + null_calls * 2;
        assert_eq!(r.main_insts, expected);
    }
}
