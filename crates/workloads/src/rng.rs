//! A small deterministic xorshift64* PRNG.
//!
//! The workload builders only need reproducible layout scattering — a
//! seeded stream, uniform integers in a range, and a Fisher–Yates
//! shuffle — so this in-tree generator replaces the external `rand`
//! dependency and keeps the workspace building fully offline. Streams
//! are stable across platforms and releases: layouts are part of the
//! experiment definition (see `layout::rng_for`).

use std::ops::Range;

/// A deterministic xorshift64* random-number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. A zero seed is remapped to a fixed non-zero
    /// constant (xorshift has an all-zero fixed point).
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`), via rejection sampling so the
    /// distribution is exactly uniform.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform value in `range` (half-open, must be non-empty).
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer types `Rng::gen_range` can sample.
pub trait RangeSample: Sized {
    /// Sample uniformly from the half-open `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_sample!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds_and_covering() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
            let v = r.gen_range(5u64..8);
            assert!((5..8).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "not the identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }
}
