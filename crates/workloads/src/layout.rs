//! Heap-layout helpers for the synthetic benchmarks.
//!
//! The benchmarks' pointer targets are placed at pseudo-randomly shuffled
//! slots across a multi-megabyte span, so (a) dependent loads defeat any
//! stride pattern, and (b) working sets exceed the 3 MB L3 — the
//! properties that make the original Olden/SPEC programs miss-bound.

use crate::rng::Rng;

/// Base of the globals area (roots, counts).
pub const GLOBALS: u64 = 0x0001_0000;
/// Base of the sequential-arrays region (arc arrays, queues, key arrays).
pub const ARRAYS: u64 = 0x0010_0000;
/// Base of the scattered heap.
pub const HEAP: u64 = 0x1000_0000;

/// A shuffled slot allocator: `count` addresses of `slot_size` bytes
/// scattered across `span` bytes starting at `base`.
#[derive(Debug)]
pub struct Scatter {
    slots: Vec<u64>,
    next: usize,
}

impl Scatter {
    /// Create the allocator.
    ///
    /// # Panics
    ///
    /// Panics if the span cannot hold `count` slots or `slot_size` is not
    /// a multiple of 8.
    pub fn new(base: u64, span: u64, slot_size: u64, count: usize, rng: &mut Rng) -> Self {
        assert_eq!(slot_size % 8, 0, "slot size must be word aligned");
        let capacity = (span / slot_size) as usize;
        assert!(capacity >= count, "span too small: {capacity} slots < {count}");
        let mut idx: Vec<usize> = (0..capacity).collect();
        rng.shuffle(&mut idx);
        let slots = idx.into_iter().take(count).map(|i| base + i as u64 * slot_size).collect();
        Scatter { slots, next: 0 }
    }

    /// Allocate the next scattered slot.
    ///
    /// # Panics
    ///
    /// Panics when slots are exhausted.
    pub fn alloc(&mut self) -> u64 {
        let a = self.slots[self.next];
        self.next += 1;
        a
    }

    /// Remaining slots.
    pub fn remaining(&self) -> usize {
        self.slots.len() - self.next
    }
}

/// A deterministic RNG for workload `name` and `seed`.
pub fn rng_for(name: &str, seed: u64) -> Rng {
    let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    Rng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scatter_unique_aligned_in_range() {
        let mut rng = rng_for("test", 1);
        let mut s = Scatter::new(HEAP, 1 << 20, 64, 1000, &mut rng);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let a = s.alloc();
            assert!((HEAP..HEAP + (1 << 20)).contains(&a));
            assert_eq!(a % 64, 0);
            assert!(seen.insert(a), "no duplicates");
        }
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn scatter_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = rng_for("x", 7);
            let mut s = Scatter::new(HEAP, 1 << 16, 64, 10, &mut rng);
            (0..10).map(|_| s.alloc()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = rng_for("x", 7);
            let mut s = Scatter::new(HEAP, 1 << 16, 64, 10, &mut rng);
            (0..10).map(|_| s.alloc()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = rng_for("x", 8);
            let mut s = Scatter::new(HEAP, 1 << 16, 64, 10, &mut rng);
            (0..10).map(|_| s.alloc()).collect()
        };
        assert_ne!(a, c, "different seed, different layout");
    }

    #[test]
    #[should_panic(expected = "span too small")]
    fn scatter_rejects_tiny_span() {
        let mut rng = rng_for("y", 1);
        let _ = Scatter::new(HEAP, 640, 64, 100, &mut rng);
    }
}
