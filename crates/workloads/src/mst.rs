//! `mst` — minimum-spanning-tree (Olden), dominated by hash-table
//! lookups: each probe hashes a key to a bucket and walks the bucket's
//! collision chain. Chain entries are scattered across the heap; the
//! entry key/next loads are delinquent.

use crate::layout::{rng_for, Scatter, ARRAYS, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::reg::conv;
use ssp_ir::{AluKind, CmpKind, Operand, ProgramBuilder, Reg};

/// Build the workload.
pub fn build(seed: u64) -> Workload {
    let buckets: u64 = 1024; // power of two
    let entries: usize = 2048;
    let lookups: u64 = 900;

    let mut rng = rng_for("mst", seed);
    let mut pb = ProgramBuilder::new();

    // Entries scattered: next(+0), key(+8), weight(+16).
    let mut sc = Scatter::new(HEAP, 8 << 20, 64, entries, &mut rng);
    let addrs: Vec<u64> = (0..entries).map(|_| sc.alloc()).collect();
    // Chain per bucket; bucket heads array lives right after the key
    // array. Insert each entry at its bucket's head.
    let heads_base = ARRAYS + lookups * 8;
    let mut heads = vec![0u64; buckets as usize];
    let mut keys = Vec::with_capacity(entries);
    for (i, &a) in addrs.iter().enumerate() {
        let key = rng.gen_range(1..u32::MAX as u64);
        let b = (key & (buckets - 1)) as usize;
        pb.data_word(a, heads[b]); // next = old head
        pb.data_word(a + 8, key);
        pb.data_word(a + 16, (i as u64 % 97) + 1);
        heads[b] = a;
        keys.push(key);
    }
    for (b, &h) in heads.iter().enumerate() {
        pb.data_word(heads_base + 8 * b as u64, h);
    }
    // Lookup sequence: mostly existing keys.
    for i in 0..lookups {
        let key = keys[rng.gen_range(0..entries)];
        pb.data_word(ARRAYS + 8 * i, key);
    }
    pb.data_word(GLOBALS, heads_base);

    let main_id = pb.declare();
    let hash_id = pb.declare();
    let mut f = pb.define(main_id, "mst_lookup");
    let e = f.entry_block();
    let lloop = f.new_block();
    let chain = f.new_block();
    let step = f.new_block();
    let found = f.new_block();
    let miss = f.new_block();
    let next_l = f.new_block();
    let exit = f.new_block();

    let (kp, kend, heads_r, key, b, entry, k2, w, sum, p) =
        (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70), Reg(71), Reg(72), Reg(73));
    f.at(e)
        .movi(kp, ARRAYS as i64)
        .movi(kend, (ARRAYS + lookups * 8) as i64)
        .movi(Reg(80), GLOBALS as i64)
        .ld(heads_r, Reg(80), 0)
        .movi(sum, 0)
        .br(lloop);
    // The bucket address comes from a small helper, like mst's HashLookup
    // — the slicer must descend into it, producing an interprocedural
    // slice (Table 2 reports one for mst).
    f.at(lloop)
        .ld(key, kp, 0) // key (sequential array)
        .mov(conv::arg(0), key)
        .mov(conv::arg(1), heads_r)
        .call(hash_id, 2)
        .mov(b, conv::RV)
        .ld(entry, b, 0) // bucket head (32 KB array)
        .br(chain);
    f.at(chain).cmp(CmpKind::Eq, p, entry, 0).br_cond(p, miss, step);
    let advance = f.new_block();
    f.at(step)
        .ld(k2, entry, 8) // delinquent: entry key
        .cmp(CmpKind::Eq, p, k2, Operand::Reg(key))
        .br_cond(p, found, advance);
    // Chain advance: entry = entry->next.
    f.at(advance).ld(entry, entry, 0).br(chain);
    f.at(found).ld(w, entry, 16).add(sum, sum, Operand::Reg(w)).br(next_l);
    f.at(miss).br(next_l);
    f.at(next_l).add(kp, kp, 8).cmp(CmpKind::Lt, p, kp, Operand::Reg(kend)).br_cond(p, lloop, exit);
    f.at(exit).movi(Reg(80), GLOBALS as i64).st(sum, Reg(80), 8).halt();
    let main = f.finish();

    // hash_addr(key, heads) = heads + 8 * (key & mask)
    let mut h = pb.define(hash_id, "hash_addr");
    let he = h.entry_block();
    h.at(he)
        .alu(AluKind::And, conv::RV, conv::arg(0), Operand::Imm((buckets - 1) as i64))
        .shl(conv::RV, conv::RV, 3)
        .add(conv::RV, conv::RV, Operand::Reg(conv::arg(1)))
        .ret();
    let h = h.finish();

    pb.install(main);
    pb.install(h);
    Workload { name: "mst", seed, program: pb.finish(main_id) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn runs_and_is_memory_bound() {
        let w = build(1);
        ssp_ir::verify::verify(&w.program).unwrap();
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.halted);
        let agg = r.load_stats_all();
        assert!(agg.accesses >= 900 * 3, "at least key + head + one entry per lookup");
        assert!(agg.l1_miss_rate() > 0.15, "miss rate {}", agg.l1_miss_rate());
    }

    #[test]
    fn every_lookup_terminates() {
        // 900 lookups, each walking a finite chain: bounded instructions.
        let w = build(2);
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.main_insts > 900 * 10);
        assert!(r.main_insts < 900 * 60, "chains stay short: {}", r.main_insts);
    }
}
